"""Differential guarantees of the parallel experiment runner.

The load-bearing claim: for every suite, the assembled table is a pure
function of the grid — byte-identical whether cells run serially,
across a process pool, with the artifact cache cold, warm, or disabled.
These tests execute the same suites under those configurations and
compare the rendered bytes, then pin the merge order, the metrics
composition, and the ``repro bench`` CLI surface.
"""

import json
import multiprocessing
import os

import pytest

from repro.cli import main
from repro.congest import CongestMetrics
from repro.runner import SUITES, run_suite, suite_names

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()


# ----------------------------------------------------------------------
# Grid structure
# ----------------------------------------------------------------------

def test_suite_registry_well_formed():
    assert set(suite_names()) >= {"E01", "E03", "E10"}
    for name in suite_names():
        cells = SUITES[name].cells()
        assert [c.index for c in cells] == list(range(len(cells)))
        assert len({c.label for c in cells}) == len(cells)


def test_unknown_suite_raises():
    with pytest.raises(KeyError):
        run_suite("E99")


def test_limit_takes_grid_prefix(tmp_path):
    run = run_suite("E10", limit=2, cache_root=str(tmp_path / "c"))
    assert [r.index for r in run.results] == [0, 1]


# ----------------------------------------------------------------------
# Serial / parallel / cache equivalence (the acceptance criterion)
# ----------------------------------------------------------------------

@pytest.mark.parametrize(
    "name,limit",
    [("E01", 4), ("E03", None), ("E10", 4)],
)
def test_parallel_tables_byte_identical_to_serial(name, limit, tmp_path):
    root = str(tmp_path / "cache")
    serial_nocache = run_suite(name, jobs=1, use_cache=False, limit=limit)
    serial_cold = run_suite(name, jobs=1, cache_root=root, limit=limit)
    parallel_warm = run_suite(name, jobs=2, cache_root=root, limit=limit)
    parallel_nocache = run_suite(name, jobs=2, use_cache=False, limit=limit)

    reference = serial_nocache.render_table()
    assert serial_cold.render_table() == reference
    assert parallel_warm.render_table() == reference
    assert parallel_nocache.render_table() == reference
    # The warm run actually hit the cache (cells memoized by the cold run).
    warm_stats = parallel_warm.cache_stats()
    assert warm_stats["disk_hits"] + warm_stats["memory_hits"] > 0


@pytest.mark.skipif(not HAVE_FORK, reason="fork start method unavailable")
def test_spawn_and_fork_agree(tmp_path):
    root = str(tmp_path / "cache")
    forked = run_suite("E10", jobs=2, limit=3, cache_root=root,
                       mp_start="fork")
    spawned = run_suite("E10", jobs=2, limit=3, cache_root=root,
                        mp_start="spawn")
    assert forked.render_table() == spawned.render_table()


def test_results_sorted_by_index_not_completion(tmp_path):
    run = run_suite("E01", jobs=2, limit=6,
                    cache_root=str(tmp_path / "c"))
    assert [r.index for r in run.results] == sorted(
        r.index for r in run.results
    )


# ----------------------------------------------------------------------
# Metrics, traces, stats
# ----------------------------------------------------------------------

def test_merged_metrics_compose_parallel(tmp_path):
    run = run_suite("E10", limit=2, cache_root=str(tmp_path / "c"))
    merged = run.merged_metrics()
    parts = [CongestMetrics.from_dict(r.metrics) for r in run.results]
    assert merged.rounds == max(p.rounds for p in parts)
    assert merged.total_messages == sum(p.total_messages for p in parts)
    assert run.compute_seconds() >= 0.0


def test_metrics_round_trip_dict():
    a = CongestMetrics()
    a.record_round({("u", "v"): 3}, 5, 80)
    a.record_round({("u", "w"): 1}, 3, 40)
    a.record_message(17)
    b = CongestMetrics.from_dict(a.to_dict(include_per_round=True))
    assert b.summary() == a.summary()
    assert b.messages_per_round == a.messages_per_round


def test_trace_collection_in_cell_order(tmp_path):
    run = run_suite("E10", limit=2, jobs=2, trace=True,
                    cache_root=str(tmp_path / "c"))
    lines = run.trace_lines()
    assert lines, "traced run produced no trace lines"
    labels = [json.loads(line)["sim"] for line in lines]
    # Every recorder is tagged with its cell label; cells appear in order.
    first_cell = run.results[0].label
    second_cell = run.results[1].label
    assert any(label.startswith(first_cell) for label in labels)
    boundary = max(
        i for i, label in enumerate(labels)
        if label.startswith(first_cell)
    )
    assert all(
        label.startswith(second_cell) for label in labels[boundary + 1:]
    )


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------

def test_cli_bench_smoke(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    out_dir = str(tmp_path / "out")
    stats_path = str(tmp_path / "stats.json")
    code = main([
        "bench", "--suite", "E10", "--limit", "2", "--jobs", "2",
        "--cache-dir", cache_dir, "--out", out_dir,
        "--stats-json", stats_path,
    ])
    assert code == 0
    captured = capsys.readouterr()
    # Result tables stay on stdout; the cache/cells line is a
    # diagnostic and goes to stderr through the `repro` logger.
    assert "E10" in captured.out
    assert "cache:" in captured.err

    with open(stats_path) as handle:
        stats = json.load(handle)
    assert stats["suites"][0]["suite"] == "E10"
    assert stats["suites"][0]["cells"] == 2
    assert stats["jobs"] == 2 and stats["cache_enabled"] is True

    table_path = os.path.join(out_dir, "E10.txt")
    with open(table_path) as handle:
        written = handle.read()
    # Byte-identity of the persisted table (footer included) against
    # an in-process run.
    serial = run_suite("E10", limit=2, use_cache=False)
    expected = serial.render_table() + "\n" + serial.footer()
    assert written.strip() == expected.strip()
    # The status footer also reaches stdout beneath the table.
    assert serial.footer() in captured.out


def test_footer_counts_quarantined_and_stalled():
    run = run_suite("E15", jobs=1, use_cache=False, limit=4)
    assert run.footer() == (
        f"E15: {len(run.results)} cell(s), 0 quarantined, 0 stalled"
    )
    assert run.summary()["stalled"] == 0
    # Flip one cell's graded verdict to stalled: every surface that
    # reports the count (method, footer, --stats-json summary) follows.
    run.results[0].extra["verdict"]["status"] = "stalled"
    assert run.stalled_cells() == 1
    assert run.footer().endswith("1 stalled")
    assert run.summary()["stalled"] == 1


def test_cli_bench_no_cache(tmp_path, capsys):
    code = main([
        "bench", "--suite", "E10", "--limit", "1", "--no-cache",
    ])
    assert code == 0
    # Cache statistics are diagnostics: logger -> stderr.
    assert "misses" in capsys.readouterr().err
