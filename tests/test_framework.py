"""Tests for the Theorem 2.6 framework (partition + gather + solve)."""

import pytest

from repro.congest import CongestMetrics
from repro.core import (
    degree_condition_holds,
    diameter_within,
    parallel_merge,
    partition_minor_free,
    run_framework,
    singletonize_failed_clusters,
)
from repro.core.failure import diameter_bound
from repro.errors import GraphError
from repro.generators import (
    complete_graph,
    delaunay_planar_graph,
    grid_graph,
    hypercube_graph,
    k_tree,
)
from repro.graph import Graph


def degree_solver(sub, leader, notes):
    return {v: sub.degree(v) for v in sub.vertices()}


class TestPartition:
    def test_inter_cluster_budget_theorem_2_6(self):
        g = delaunay_planar_graph(80, seed=1)
        result = partition_minor_free(g, 0.3, seed=0)
        assert result.inter_cluster_edges() <= 0.3 * min(g.n, g.m)

    def test_every_cluster_has_leader_with_topology(self):
        g = grid_graph(7, 7)
        result = partition_minor_free(g, 0.3, seed=0)
        assert result.all_succeeded
        for run in result.clusters:
            sub = g.subgraph(run.vertices)
            assert run.gather.topology_complete(sub)
            assert sub.degree(run.leader) == sub.max_degree()

    def test_clusters_partition_vertex_set(self):
        g = k_tree(60, 3, seed=2)
        result = partition_minor_free(g, 0.25, seed=0)
        seen = set()
        for run in result.clusters:
            assert not (seen & run.vertices)
            seen |= run.vertices
        assert seen == set(g.vertices())

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            partition_minor_free(Graph(), 0.3)

    def test_max_cluster_size_forwarded(self):
        g = delaunay_planar_graph(100, seed=3)
        result = partition_minor_free(
            g, 0.4, seed=0, max_cluster_size=30, phi=0.02,
            enforce_budget=False,
        )
        assert all(len(run.vertices) <= 30 for run in result.clusters)


class TestRunFramework:
    def test_answers_are_correct_and_complete(self):
        g = delaunay_planar_graph(60, seed=4)
        result = run_framework(g, 0.3, solver=degree_solver, seed=0)
        for run in result.clusters:
            sub = g.subgraph(run.vertices)
            for v in run.vertices:
                assert result.answers[v] == sub.degree(v)

    def test_requires_solver(self):
        with pytest.raises(GraphError):
            run_framework(grid_graph(3, 3), 0.3, solver=None)

    def test_message_budget_never_exceeded(self):
        from repro.congest.message import MessageBudget

        g = delaunay_planar_graph(70, seed=5)
        result = run_framework(g, 0.3, solver=degree_solver, seed=0)
        assert result.metrics.max_message_bits <= MessageBudget(g.n).bits

    def test_deterministic_given_seed(self):
        g = grid_graph(5, 5)
        a = run_framework(g, 0.3, solver=degree_solver, seed=11)
        b = run_framework(g, 0.3, solver=degree_solver, seed=11)
        assert a.answers == b.answers
        assert a.metrics.summary() == b.metrics.summary()

    def test_tree_transport_also_works(self):
        g = grid_graph(5, 5)
        result = run_framework(
            g, 0.3, solver=degree_solver, seed=0, transport="tree"
        )
        assert result.all_succeeded
        assert result.answers == {
            v: g.subgraph(
                next(r.vertices for r in result.clusters if v in r.vertices)
            ).degree(v)
            for v in g.vertices()
        }


class TestFailureSemantics:
    def test_degree_condition_holds_on_minor_free_clusters(self):
        g = delaunay_planar_graph(90, seed=6)
        result = partition_minor_free(g, 0.3, seed=0)
        assert all(run.degree_condition_ok for run in result.clusters)

    def test_degree_condition_fails_on_expanders(self):
        # A hypercube treated as if it were minor-free: its clusters
        # have no high-degree vertex relative to phi^2 * |E_i|.
        g = hypercube_graph(6)
        assert not degree_condition_holds(g, phi=0.5)

    def test_degree_condition_trivial_cases(self):
        g = Graph()
        g.add_vertex(0)
        assert degree_condition_holds(g, phi=0.9)

    def test_diameter_within(self):
        g = grid_graph(4, 4)
        assert diameter_within(g, 6)
        assert not diameter_within(g, 3)

    def test_diameter_bound_scales(self):
        assert diameter_bound(0.1, 100) > diameter_bound(0.5, 100)
        assert diameter_bound(0.0, 50) == 50

    def test_singletonize_failed_clusters(self):
        clusters = [{1, 2, 3}, {4, 5}, {6}]
        fixed = singletonize_failed_clusters(clusters, failed=[1])
        assert {frozenset(c) for c in fixed} == {
            frozenset({1, 2, 3}),
            frozenset({4}),
            frozenset({5}),
            frozenset({6}),
        }

    def test_parallel_merge_semantics(self):
        a = CongestMetrics(
            rounds=10,
            effective_rounds=12,
            total_messages=100,
            total_bits=1000,
            max_message_bits=30,
            max_edge_congestion=3,
        )
        b = CongestMetrics(
            rounds=7,
            effective_rounds=20,
            total_messages=50,
            total_bits=500,
            max_message_bits=40,
            max_edge_congestion=2,
        )
        merged = parallel_merge([a, b])
        assert merged.rounds == 10
        assert merged.effective_rounds == 20
        assert merged.total_messages == 150
        assert merged.max_message_bits == 40
