"""Tests for the from-scratch Left-Right planarity test.

networkx's independent implementation is the oracle; agreement is
checked on deterministic families, structured non-planar instances, and
randomized + hypothesis-generated graphs.
"""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators import (
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    delaunay_planar_graph,
    gnp_random_graph,
    grid_graph,
    hypercube_graph,
    maximal_outerplanar_graph,
    path_graph,
    random_tree,
    toroidal_grid_graph,
)
from repro.graph import Graph
from repro.minors import is_planar


def random_edge_graphs():
    return st.lists(
        st.tuples(st.integers(0, 11), st.integers(0, 11)).filter(
            lambda e: e[0] != e[1]
        ),
        max_size=36,
    ).map(Graph.from_edges)


class TestKnownPlanar:
    @pytest.mark.parametrize(
        "graph",
        [
            path_graph(10),
            cycle_graph(12),
            grid_graph(7, 9),
            complete_graph(4),
            random_tree(40, seed=3),
            maximal_outerplanar_graph(20, seed=1),
        ],
        ids=["path", "cycle", "grid", "K4", "tree", "outerplanar"],
    )
    def test_planar_families(self, graph):
        assert is_planar(graph)

    def test_delaunay_is_planar(self):
        assert is_planar(delaunay_planar_graph(300, seed=0))

    def test_empty_and_tiny(self):
        assert is_planar(Graph())
        assert is_planar(complete_graph(1))
        assert is_planar(complete_graph(4))

    def test_disconnected_planar(self):
        g = Graph.from_edges([(0, 1), (2, 3), (4, 5)])
        assert is_planar(g)


class TestKnownNonPlanar:
    @pytest.mark.parametrize(
        "graph",
        [
            complete_graph(5),
            complete_graph(6),
            complete_bipartite_graph(3, 3),
            complete_bipartite_graph(3, 4),
            hypercube_graph(4),
        ],
        ids=["K5", "K6", "K33", "K34", "Q4"],
    )
    def test_nonplanar_families(self, graph):
        assert not is_planar(graph)

    def test_k5_subdivision(self):
        # Subdivide every edge of K5: still non-planar (Kuratowski).
        k5 = complete_graph(5)
        g = Graph()
        next_vertex = 5
        for u, v in k5.edges():
            g.add_edge(u, next_vertex)
            g.add_edge(next_vertex, v)
            next_vertex += 1
        assert not is_planar(g)

    def test_toroidal_grid_nonplanar(self):
        assert not is_planar(toroidal_grid_graph(5, 5))

    def test_planar_plus_crossing_edges(self):
        g = grid_graph(5, 5)
        # Connect far-apart grid vertices until the Euler bound breaks.
        extra = [(0, 24), (4, 20), (2, 22), (10, 14), (1, 23), (3, 21)]
        for u, v in extra:
            g.add_edge(u, v)
        assert is_planar(g) == nx.check_planarity(g.to_networkx())[0]


class TestAgainstNetworkx:
    @given(random_edge_graphs())
    @settings(max_examples=120, deadline=None)
    def test_agrees_with_networkx(self, g):
        expected = nx.check_planarity(g.to_networkx())[0]
        assert is_planar(g) == expected

    @pytest.mark.parametrize("seed", range(12))
    def test_agrees_on_gnp_near_threshold(self, seed):
        # Density near 3n - 6 is the hard regime for planarity tests.
        g = gnp_random_graph(12, 0.42, seed=seed)
        assert is_planar(g) == nx.check_planarity(g.to_networkx())[0]
