"""Tests for the Pivot baseline and disagreement objective."""

import pytest

from repro.correlation import (
    agreement_score,
    disagreement_score,
    exact_correlation,
    pivot_clustering,
)
from repro.generators import (
    cycle_graph,
    delaunay_planar_graph,
    grid_graph,
    planted_signs,
    random_signs,
)
from repro.graph import edge_key


class TestDisagreementScore:
    def test_complement_of_agreement(self):
        g = grid_graph(4, 4)
        signs = random_signs(g, 0.5, seed=1)
        labels = {v: 0 for v in g.vertices()}
        assert (
            agreement_score(g, signs, labels)
            + disagreement_score(g, signs, labels)
            == g.m
        )

    def test_exact_minimizes_disagreements_too(self):
        # Equivalence of the two objectives for exact solutions (§1.1).
        g = cycle_graph(6)
        signs = random_signs(g, 0.5, seed=2)
        labels, _ = exact_correlation(g, signs)
        best_disagreement = disagreement_score(g, signs, labels)
        singletons = {v: v for v in g.vertices()}
        assert best_disagreement <= disagreement_score(g, signs, singletons)


class TestPivot:
    def test_valid_clustering(self):
        g = delaunay_planar_graph(60, seed=3)
        signs, _ = planted_signs(g, 3, noise=0.1, seed=4)
        labels, score = pivot_clustering(g, signs, seed=5)
        assert set(labels) == set(g.vertices())
        assert 0 <= score <= g.m

    def test_all_positive_graph(self):
        g = cycle_graph(8)
        signs = {edge_key(u, v): 1 for u, v in g.edges()}
        labels, score = pivot_clustering(g, signs, seed=6)
        # Pivot groups pivots with positive neighbors; on a cycle with
        # all-positive edges it can't be perfect, but must beat half.
        assert score >= g.m / 2 - 2

    def test_all_negative_graph_is_perfect(self):
        g = cycle_graph(8)
        signs = {edge_key(u, v): -1 for u, v in g.edges()}
        labels, score = pivot_clustering(g, signs, seed=7)
        assert score == g.m  # singletons everywhere

    def test_dominated_by_exact_on_small(self):
        import random

        rnd = random.Random(8)
        from repro.generators import gnp_random_graph

        for _ in range(15):
            g = gnp_random_graph(rnd.randint(2, 9), 0.5, seed=rnd.getrandbits(32))
            signs = random_signs(g, 0.5, seed=rnd.getrandbits(32))
            _, opt = exact_correlation(g, signs)
            _, piv = pivot_clustering(g, signs, seed=rnd.getrandbits(32))
            assert piv <= opt

    def test_framework_beats_pivot_on_planted(self):
        from repro.correlation import distributed_correlation_clustering

        g = delaunay_planar_graph(70, seed=9)
        signs, _ = planted_signs(g, 3, noise=0.1, seed=10)
        framework = distributed_correlation_clustering(g, signs, 0.3, seed=11)
        _, pivot = pivot_clustering(g, signs, seed=12)
        assert framework.score >= pivot
