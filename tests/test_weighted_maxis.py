"""Tests for the weighted MAXIS extension."""

import random
from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SolverError
from repro.generators import (
    cycle_graph,
    delaunay_planar_graph,
    gnp_random_graph,
    grid_graph,
    star_graph,
)
from repro.graph import Graph
from repro.independent_set import (
    distributed_weighted_maxis,
    exact_weighted_maxis,
    greedy_weighted_is,
    solve_weighted_maxis,
)


def brute_force_weighted(g, weights):
    best = 0.0
    vertices = g.vertices()
    for size in range(len(vertices) + 1):
        for combo in combinations(vertices, size):
            s = set(combo)
            if all(not (u in s and v in s) for u, v in g.edges()):
                best = max(best, sum(weights.get(v, 0) for v in s))
    return best


def random_weights(g, rnd, max_w=10):
    return {v: rnd.randint(0, max_w) for v in g.vertices()}


def is_independent(g, s):
    return all(not (u in s and v in s) for u, v in g.edges())


class TestExactWeighted:
    def test_heavy_center_star(self):
        g = star_graph(6)
        weights = {0: 100, **{v: 1 for v in range(1, 7)}}
        result = exact_weighted_maxis(g, weights)
        assert result == {0}

    def test_light_center_star(self):
        g = star_graph(6)
        weights = {0: 2, **{v: 1 for v in range(1, 7)}}
        result = exact_weighted_maxis(g, weights)
        assert result == set(range(1, 7))

    def test_zero_weight_vertices_excluded(self):
        g = cycle_graph(4)
        weights = {0: 5, 1: 0, 2: 5, 3: 0}
        result = exact_weighted_maxis(g, weights)
        assert result == {0, 2}

    @pytest.mark.parametrize("trial", range(25))
    def test_against_brute_force(self, trial):
        rnd = random.Random(trial)
        g = gnp_random_graph(rnd.randint(1, 10), 0.4, seed=rnd.getrandbits(32))
        weights = random_weights(g, rnd)
        result = exact_weighted_maxis(g, weights)
        assert is_independent(g, result)
        got = sum(weights.get(v, 0) for v in result)
        assert got == brute_force_weighted(g, weights)

    def test_budget_raises(self):
        rnd = random.Random(0)
        g = gnp_random_graph(40, 0.5, seed=1)
        with pytest.raises(SolverError):
            exact_weighted_maxis(g, random_weights(g, rnd), node_budget=3)


class TestGreedyAndSolve:
    def test_greedy_valid(self):
        rnd = random.Random(1)
        for _ in range(10):
            g = gnp_random_graph(rnd.randint(2, 15), 0.3, seed=rnd.getrandbits(32))
            s = greedy_weighted_is(g, random_weights(g, rnd))
            assert is_independent(g, s)

    def test_solve_fallback_valid(self):
        rnd = random.Random(2)
        g = gnp_random_graph(40, 0.4, seed=3)
        s = solve_weighted_maxis(g, random_weights(g, rnd), node_budget=3)
        assert is_independent(g, s)


class TestDistributedWeighted:
    def test_ratio_on_planar(self):
        rnd = random.Random(4)
        g = delaunay_planar_graph(60, seed=5)
        weights = {v: rnd.randint(1, 20) for v in g.vertices()}
        result = distributed_weighted_maxis(g, weights, 0.3, seed=6)
        assert is_independent(g, result.independent_set)
        opt = sum(
            weights[v] for v in exact_weighted_maxis(g, weights)
        )
        assert result.weight >= 0.7 * opt

    def test_uniform_weights_match_unweighted(self):
        from repro.independent_set import exact_maxis

        g = grid_graph(5, 5)
        weights = {v: 1 for v in g.vertices()}
        result = distributed_weighted_maxis(g, weights, 0.3, seed=7)
        assert result.weight >= 0.7 * len(exact_maxis(g))

    def test_rejects_negative_weights(self):
        g = cycle_graph(4)
        with pytest.raises(SolverError):
            distributed_weighted_maxis(g, {0: -1}, 0.3)

    def test_rejects_bad_epsilon(self):
        g = cycle_graph(4)
        with pytest.raises(SolverError):
            distributed_weighted_maxis(g, {v: 1 for v in g.vertices()}, 0.0)
