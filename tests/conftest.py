"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.generators import (
    delaunay_planar_graph,
    grid_graph,
    k_tree,
    triangulated_grid_graph,
)
from repro.graph import Graph


@pytest.fixture
def grid8():
    """An 8x8 grid: the canonical small planar instance."""
    return grid_graph(8, 8)


@pytest.fixture
def small_planar():
    """A 60-vertex random planar triangulation."""
    return delaunay_or_skip(60, seed=1234)


def delaunay_or_skip(n, seed=None):
    """A Delaunay triangulation, or a skip where scipy is missing.

    The no-NumPy CI leg (``ci/no_numpy_stub``) runs the congest-core
    suite without the scientific stack; random planar instances are
    the only generator family that genuinely needs it.
    """
    from repro.generators import planar

    if planar.Delaunay is None:
        pytest.skip("delaunay generators require numpy/scipy")
    return delaunay_planar_graph(n, seed=seed)


@pytest.fixture
def small_ktree():
    """A 50-vertex 3-tree: bounded treewidth, non-planar."""
    return k_tree(50, 3, seed=99)


@pytest.fixture
def rng():
    return random.Random(20220725)  # PODC'22 started July 25


def triangle_with_tail() -> Graph:
    """K_3 with a pendant path: exercises both cycles and leaves."""
    g = Graph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)])
    return g
