"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.generators import (
    delaunay_planar_graph,
    grid_graph,
    k_tree,
    triangulated_grid_graph,
)
from repro.graph import Graph


@pytest.fixture
def grid8():
    """An 8x8 grid: the canonical small planar instance."""
    return grid_graph(8, 8)


@pytest.fixture
def small_planar():
    """A 60-vertex random planar triangulation."""
    return delaunay_planar_graph(60, seed=1234)


@pytest.fixture
def small_ktree():
    """A 50-vertex 3-tree: bounded treewidth, non-planar."""
    return k_tree(50, 3, seed=99)


@pytest.fixture
def rng():
    return random.Random(20220725)  # PODC'22 started July 25


def triangle_with_tail() -> Graph:
    """K_3 with a pendant path: exercises both cycles and leaves."""
    g = Graph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)])
    return g
