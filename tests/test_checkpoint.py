"""Checkpoint/restore: the bit-identical-resume invariant.

The core claim (see :mod:`repro.congest.checkpoint`): stopping a
simulation at any round boundary, serializing the checkpoint through
its wire format, and resuming — on either engine — produces outputs,
metrics, traces, and crash sets identical to the run that never
stopped.  The differential grid below pins that for every fault class
(fault-free, drop, duplicate, corrupt, crash, crash + rejoin) crossed
with every capture-engine/resume-engine pair, including cross-engine.
"""

import dataclasses
import json
import os
import random

import pytest

from repro.congest import (
    CHECKPOINT_SCHEMA_VERSION,
    CongestSimulator,
    FaultPlan,
    MessageBudget,
    SimulationCheckpoint,
    TraceRecorder,
    graph_fingerprint,
    resume_simulation,
)
from repro.errors import CheckpointError
from repro.graph import Graph
from repro.storage import DiskFaultPlan, use_disk_faults

from tests._checkpoint_fixture import FixtureFlood, FixtureWalker

FIXTURES = os.path.join(os.path.dirname(__file__), "data")

PLANS = {
    "none": FaultPlan(),
    "drop": FaultPlan(seed=11, drop=0.15),
    "duplicate": FaultPlan(seed=12, duplicate=0.2),
    "corrupt": FaultPlan(seed=13, corrupt=0.1),
    "crash": FaultPlan(seed=14, crashes=((2, 2), (7, 3))),
    "churn": FaultPlan(
        seed=15,
        crashes=((2, 2), (7, 2)),
        rejoins=((2, 5), (7, 6)),
        checkpoint_interval=2,
    ),
}

ENGINE_PAIRS = [
    ("fast", "fast"),
    ("reference", "reference"),
    ("fast", "reference"),
    ("reference", "fast"),
]


def _graph(n=20, extra=14, seed=5):
    rng = random.Random(seed)
    edges = [(i, i + 1) for i in range(n - 1)]
    for _ in range(extra):
        u, w = rng.randrange(n), rng.randrange(n)
        if u != w:
            edges.append((u, w))
    return Graph.from_edges(edges)


def _fingerprint(result, recorder):
    return (
        result.outputs,
        result.metrics.to_dict(include_per_round=True),
        result.halted,
        set(result.crashed),
        [r.to_dict() for r in recorder.rounds],
    )


def _run_uninterrupted(graph, factory, plan, engine, max_rounds=300):
    recorder = TraceRecorder("baseline")
    sim = CongestSimulator(
        graph, factory, seed=3, faults=plan, trace=recorder, engine=engine
    )
    return _fingerprint(sim.run(max_rounds), recorder)


def _capture_first(graph, factory, plan, engine, every=4, max_rounds=300):
    captured = []
    sim = CongestSimulator(
        graph, factory, seed=3, faults=plan,
        trace=TraceRecorder("capture"), engine=engine,
    )
    sim.run(
        max_rounds,
        checkpoint_every=every,
        on_checkpoint=lambda cp: captured.append(cp),
    )
    assert captured, "simulation ended before the first checkpoint fired"
    return captured[0]


# ----------------------------------------------------------------------
# The differential grid
# ----------------------------------------------------------------------


@pytest.mark.parametrize("capture_engine,resume_engine", ENGINE_PAIRS)
@pytest.mark.parametrize("plan_name", sorted(PLANS))
def test_resume_is_bit_identical(plan_name, capture_engine, resume_engine):
    graph = _graph()
    plan = PLANS[plan_name]
    baseline = _run_uninterrupted(graph, FixtureFlood, plan, resume_engine)

    checkpoint = _capture_first(graph, FixtureFlood, plan, capture_engine)
    # Round-trip through the wire format: resuming a deserialized
    # checkpoint must be as good as resuming the live object.
    checkpoint = SimulationCheckpoint.from_dict(
        json.loads(json.dumps(checkpoint.to_dict()))
    )

    recorder = TraceRecorder("resumed")
    sim = resume_simulation(
        graph, FixtureFlood, checkpoint,
        engine=resume_engine, trace=recorder,
    )
    assert _fingerprint(sim.run(300), recorder) == baseline


@pytest.mark.parametrize("engine", ["fast", "reference"])
def test_resume_preserves_rng_streams(engine):
    """A checkpointed random walk continues on the exact same path."""
    graph = _graph()
    baseline = _run_uninterrupted(
        graph, FixtureWalker, FaultPlan(), engine, max_rounds=60
    )
    checkpoint = _capture_first(
        graph, FixtureWalker, FaultPlan(), engine, every=7, max_rounds=60
    )
    recorder = TraceRecorder("resumed")
    sim = resume_simulation(
        graph, FixtureWalker, checkpoint, engine=engine, trace=recorder
    )
    assert _fingerprint(sim.run(60), recorder) == baseline


@pytest.mark.parametrize("engine", ["fast", "reference"])
def test_checkpoint_before_run_resumes_from_round_zero(engine):
    graph = _graph()
    baseline = _run_uninterrupted(graph, FixtureFlood, FaultPlan(), engine)

    sim = CongestSimulator(
        graph, FixtureFlood, seed=3,
        trace=TraceRecorder("pre"), engine=engine,
    )
    checkpoint = sim.checkpoint()  # before run(): round 0, uninitialized
    assert checkpoint.round == 0

    recorder = TraceRecorder("resumed")
    resumed = resume_simulation(
        graph, FixtureFlood, checkpoint, engine=engine, trace=recorder
    )
    assert _fingerprint(resumed.run(300), recorder) == baseline


def test_every_checkpoint_boundary_resumes_identically():
    """Not just the first boundary: every captured round is resumable."""
    graph = _graph()
    plan = PLANS["drop"]
    baseline = _run_uninterrupted(graph, FixtureFlood, plan, "fast")

    captured = []
    sim = CongestSimulator(
        graph, FixtureFlood, seed=3, faults=plan,
        trace=TraceRecorder("capture"), engine="fast",
    )
    sim.run(300, checkpoint_every=2, on_checkpoint=captured.append)
    assert len(captured) >= 2
    for checkpoint in captured:
        recorder = TraceRecorder("resumed")
        resumed = resume_simulation(
            graph, FixtureFlood, checkpoint, trace=recorder
        )
        assert _fingerprint(resumed.run(300), recorder) == baseline


# ----------------------------------------------------------------------
# Crash-recovery semantics
# ----------------------------------------------------------------------


@pytest.mark.parametrize("engine", ["fast", "reference"])
def test_rejoined_vertices_count_and_answer(engine):
    graph = _graph()
    plan = PLANS["churn"]
    recorder = TraceRecorder("churn")
    sim = CongestSimulator(
        graph, FixtureFlood, seed=3, faults=plan,
        trace=recorder, engine=engine,
    )
    result = sim.run(300)
    summary = result.metrics.fault_summary()
    assert summary["vertices_crashed"] == 2
    assert summary["vertices_rejoined"] == 2
    assert recorder.total_faults()["rejoined"] == 2
    # Rejoined vertices are live again: not crashed, real outputs.
    assert not result.crashed
    assert result.outputs[2] is not None
    assert result.outputs[7] is not None


@pytest.mark.parametrize("engine", ["fast", "reference"])
def test_rejoin_beyond_horizon_stays_crashed(engine):
    graph = _graph()
    plan = FaultPlan(seed=14, crashes=((2, 2),), rejoins=((2, 500),))
    sim = CongestSimulator(graph, FixtureFlood, seed=3, faults=plan,
                           engine=engine)
    result = sim.run(50)
    assert result.crashed == frozenset({2})
    assert result.outputs[2] is None
    assert result.metrics.fault_summary()["vertices_rejoined"] == 0


@pytest.mark.parametrize("engine", ["fast", "reference"])
def test_snapshot_restore_keeps_learned_state(engine):
    """With an interval, a rejoined vertex resumes from its snapshot
    (pre-crash knowledge kept); without one it re-initializes fresh."""
    graph = _graph()

    def run(interval):
        plan = FaultPlan(
            seed=16, crashes=((7, 3),), rejoins=((7, 6),),
            checkpoint_interval=interval,
        )
        sim = CongestSimulator(graph, FixtureFlood, seed=3, faults=plan,
                               engine=engine)
        return sim.run(300)

    snap = run(1)
    fresh = run(None)
    assert snap.metrics.fault_summary()["vertices_rejoined"] == 1
    assert fresh.metrics.fault_summary()["vertices_rejoined"] == 1
    # The snapshot restore must preserve the minimum the vertex had
    # already learned before crashing; the global minimum 0 floods to
    # it within two rounds, so its answer survives the churn.
    assert snap.outputs[7] == 0


# ----------------------------------------------------------------------
# Wire format and validation
# ----------------------------------------------------------------------


def test_checkpoint_serialization_round_trips():
    graph = _graph()
    checkpoint = _capture_first(graph, FixtureFlood, PLANS["churn"], "fast")
    data = json.loads(json.dumps(checkpoint.to_dict(), sort_keys=True))
    back = SimulationCheckpoint.from_dict(data)
    assert back == checkpoint
    assert back.schema == CHECKPOINT_SCHEMA_VERSION


def test_checkpoint_save_and_load(tmp_path):
    graph = _graph()
    checkpoint = _capture_first(graph, FixtureFlood, FaultPlan(), "fast")
    path = str(tmp_path / "sub" / "cp.json")
    checkpoint.save(path)
    assert SimulationCheckpoint.load(path) == checkpoint
    # Saving is atomic: no temporary droppings next to the file.
    assert os.listdir(tmp_path / "sub") == ["cp.json"]


def test_load_failures_raise_checkpoint_error(tmp_path):
    with pytest.raises(CheckpointError):
        SimulationCheckpoint.load(str(tmp_path / "missing.json"))
    bad = tmp_path / "bad.json"
    bad.write_text("{ not json")
    with pytest.raises(CheckpointError):
        SimulationCheckpoint.load(str(bad))


@pytest.mark.parametrize(
    "mangle",
    [
        lambda d: "not a dict",
        lambda d: {**d, "schema": None},
        lambda d: {**d, "schema": 0},
        lambda d: {**d, "schema": CHECKPOINT_SCHEMA_VERSION + 1},
        lambda d: {k: v for k, v in d.items() if k != "state"},
        lambda d: {k: v for k, v in d.items() if k != "round"},
        lambda d: {**d, "budget": {}},
    ],
)
def test_malformed_payloads_rejected(mangle):
    graph = _graph()
    checkpoint = _capture_first(graph, FixtureFlood, FaultPlan(), "fast")
    with pytest.raises(CheckpointError):
        SimulationCheckpoint.from_dict(mangle(checkpoint.to_dict()))


def test_restore_refuses_mismatched_target():
    graph = _graph()
    other = _graph(seed=6)  # same n, different edges
    checkpoint = _capture_first(graph, FixtureFlood, FaultPlan(), "fast")
    assert graph_fingerprint(graph) != graph_fingerprint(other)

    # The graph is the caller's responsibility, so resume_simulation()
    # itself can catch a wrong one via the fingerprint.
    with pytest.raises(CheckpointError):
        resume_simulation(other, FixtureFlood, checkpoint)
    # resume_simulation() rebuilds the simulator from the checkpoint's
    # own configuration, so strict/budget/fault-plan mismatches can
    # only arise on a direct engine restore — the guard refuses them
    # there.
    for kwargs in (
        {"strict": True},
        {"budget": MessageBudget(checkpoint.budget_n, 99)},
        {"faults": FaultPlan(seed=1, drop=0.5)},
    ):
        mismatched = CongestSimulator(graph, FixtureFlood, seed=3, **kwargs)
        with pytest.raises(CheckpointError):
            mismatched._engine.restore_checkpoint(checkpoint)
    # A doctored checkpoint field trips the same guard from the facade.
    with pytest.raises(CheckpointError):
        resume_simulation(
            graph, FixtureFlood,
            dataclasses.replace(checkpoint, n=checkpoint.n + 1),
        )


def test_resume_ignores_ambient_fault_plan():
    """The checkpoint's plan is authoritative; an ambient use_faults()
    region around the resume must not leak into the resumed run."""
    from repro.congest import use_faults

    graph = _graph()
    baseline = _run_uninterrupted(graph, FixtureFlood, FaultPlan(), "fast")
    checkpoint = _capture_first(graph, FixtureFlood, FaultPlan(), "fast")
    recorder = TraceRecorder("resumed")
    with use_faults(FaultPlan(seed=9, drop=0.9)):
        sim = resume_simulation(
            graph, FixtureFlood, checkpoint, trace=recorder
        )
        result = sim.run(300)
    assert _fingerprint(result, recorder) == baseline


# ----------------------------------------------------------------------
# Corrupted envelopes refuse loudly (never unpickle garbage)
# ----------------------------------------------------------------------


def _saved_checkpoint(tmp_path):
    graph = _graph()
    checkpoint = _capture_first(graph, FixtureFlood, FaultPlan(), "fast")
    path = str(tmp_path / "ck.json")
    checkpoint.save(path)
    return path


def test_truncated_checkpoint_refuses_loudly(tmp_path):
    path = _saved_checkpoint(tmp_path)
    with open(path, "rb") as handle:
        data = handle.read()
    with open(path, "wb") as handle:
        handle.write(data[: len(data) // 2])
    with pytest.raises(CheckpointError, match="not valid JSON"):
        SimulationCheckpoint.load(path)


def test_bit_flipped_state_blob_refuses_before_unpickling(tmp_path):
    """A single corrupted character inside the base64 state blob fails
    the envelope checksum — caught *before* base64 decode or pickle
    ever see the blob, which is the whole point of the checksum."""
    path = _saved_checkpoint(tmp_path)
    with open(path) as handle:
        data = json.loads(handle.read())
    state = data["state"]
    pos = len(state) // 2
    data["state"] = (
        state[:pos] + ("A" if state[pos] != "A" else "B") + state[pos + 1:]
    )
    with open(path, "w") as handle:
        handle.write(json.dumps(data, sort_keys=True))
    with pytest.raises(CheckpointError, match="refusing to unpickle"):
        SimulationCheckpoint.load(path)


def test_tampered_metadata_refuses_loudly(tmp_path):
    path = _saved_checkpoint(tmp_path)
    with open(path) as handle:
        data = json.loads(handle.read())
    data["round"] += 1  # checksum now stale
    with open(path, "w") as handle:
        handle.write(json.dumps(data, sort_keys=True))
    with pytest.raises(CheckpointError, match="checksum"):
        SimulationCheckpoint.load(path)


def test_torn_checkpoint_save_is_caught_at_load(tmp_path):
    """End to end through the storage layer: a save whose write tears
    mid-file leaves a checkpoint that refuses to load — never one that
    silently resumes from half a state blob."""
    graph = _graph()
    checkpoint = _capture_first(graph, FixtureFlood, FaultPlan(), "fast")
    path = str(tmp_path / "ck.json")
    with use_disk_faults(DiskFaultPlan(seed=0, torn_write=1.0)):
        checkpoint.save(path)
    with pytest.raises(CheckpointError):
        SimulationCheckpoint.load(path)


# ----------------------------------------------------------------------
# The pinned v1 fixture (forward compatibility)
# ----------------------------------------------------------------------


def test_v1_fixture_loads_and_resumes():
    """A checkpoint file produced at schema 1 must keep loading (and
    finishing) on every future version of this code."""
    path = os.path.join(FIXTURES, "checkpoint_v1.json")
    checkpoint = SimulationCheckpoint.load(path)
    assert checkpoint.schema == 1
    graph = _graph()  # the fixture was captured over this exact graph
    assert checkpoint.graph == graph_fingerprint(graph)

    baseline = _run_uninterrupted(graph, FixtureFlood, FaultPlan(), "fast")
    recorder = TraceRecorder("resumed")
    sim = resume_simulation(graph, FixtureFlood, checkpoint, trace=recorder)
    assert _fingerprint(sim.run(300), recorder) == baseline
