"""Tests for the (epsilon, phi) expander decomposition (Theorems 2.1/2.2)."""

import pytest

from repro.decomposition import (
    expander_decomposition,
    phi_for_epsilon,
    verify_expander_decomposition,
)
from repro.errors import DecompositionError
from repro.generators import (
    complete_graph,
    cycle_graph,
    delaunay_planar_graph,
    grid_graph,
    hypercube_graph,
    k_tree,
    random_tree,
    toroidal_grid_graph,
)
from repro.graph import Graph
from repro.spectral import conductance_lower_bound


class TestBasics:
    def test_phi_for_epsilon_monotone(self):
        assert phi_for_epsilon(0.4, 100) > phi_for_epsilon(0.1, 100)
        assert phi_for_epsilon(0.2, 100) > phi_for_epsilon(0.2, 10_000)

    def test_invalid_epsilon(self):
        with pytest.raises(DecompositionError):
            expander_decomposition(grid_graph(3, 3), 1.5)
        with pytest.raises(DecompositionError):
            phi_for_epsilon(0.0, 10)

    def test_complete_graph_single_cluster(self):
        dec = expander_decomposition(complete_graph(10), 0.2, seed=0)
        assert dec.k == 1
        assert dec.cut_fraction() == 0.0

    def test_singletons_for_isolated_vertices(self):
        g = Graph.from_edges([(0, 1)])
        g.add_vertex(5)
        dec = expander_decomposition(g, 0.5, seed=0)
        assert {frozenset(c) for c in dec.clusters} == {
            frozenset({0, 1}),
            frozenset({5}),
        }


class TestGuarantees:
    @pytest.mark.parametrize("epsilon", [0.1, 0.2, 0.4])
    @pytest.mark.parametrize(
        "make",
        [
            lambda: grid_graph(8, 8),
            lambda: delaunay_planar_graph(100, seed=1),
            lambda: k_tree(80, 3, seed=2),
            lambda: toroidal_grid_graph(6, 6),
            lambda: random_tree(80, seed=3),
        ],
        ids=["grid", "delaunay", "ktree", "torus", "tree"],
    )
    def test_budget_and_certificates(self, make, epsilon):
        g = make()
        dec = expander_decomposition(g, epsilon, seed=0)
        report = verify_expander_decomposition(dec)
        assert report["cut_fraction"] <= epsilon
        assert report["min_certificate"] >= dec.phi

    def test_explicit_phi_gives_smaller_clusters(self):
        g = delaunay_planar_graph(120, seed=4)
        coarse = expander_decomposition(g, 0.3, seed=0)
        fine = expander_decomposition(
            g, 0.3, phi=0.05, seed=0, enforce_budget=False
        )
        assert max(len(c) for c in fine.clusters) <= max(
            len(c) for c in coarse.clusters
        )
        assert fine.k >= coarse.k

    def test_max_cluster_size_respected(self):
        g = delaunay_planar_graph(150, seed=5)
        dec = expander_decomposition(
            g, 0.3, seed=0, enforce_budget=False, max_cluster_size=40
        )
        assert all(len(c) <= 40 for c in dec.clusters)

    def test_budget_violation_raises(self):
        # phi far above the feasible trade-off must blow the budget.
        g = grid_graph(10, 10)
        with pytest.raises(DecompositionError):
            expander_decomposition(g, 0.05, phi=0.5, seed=0)

    def test_clusters_partition_vertices(self):
        g = k_tree(60, 2, seed=6)
        dec = expander_decomposition(g, 0.3, phi=0.08, seed=0,
                                     enforce_budget=False)
        seen = set()
        for cluster in dec.clusters:
            assert not (seen & cluster)
            seen |= cluster
        assert seen == set(g.vertices())

    def test_certificates_are_true_lower_bounds(self):
        g = delaunay_planar_graph(90, seed=7)
        dec = expander_decomposition(g, 0.25, phi=0.04, seed=0,
                                     enforce_budget=False)
        for cluster, cert in zip(dec.clusters, dec.certificates):
            sub = g.subgraph(cluster)
            if sub.n > 2:
                assert conductance_lower_bound(sub) >= min(cert, dec.phi) - 1e-9


class TestHypercubeTightness:
    """The Section 2 remark: hypercubes pin phi = O(1/log n)."""

    def test_hypercube_clusters_have_low_conductance_certificates(self):
        g = hypercube_graph(6)  # n = 64
        dec = expander_decomposition(g, 0.3, seed=0, enforce_budget=False)
        # The whole hypercube's conductance is Theta(1/d): no cluster
        # can certify much more than that without being tiny.
        big = [c for c in dec.clusters if len(c) > 4]
        for cluster in big:
            sub = g.subgraph(cluster)
            assert conductance_lower_bound(sub) < 0.5

    def test_verify_rejects_tampered_cut(self):
        g = grid_graph(6, 6)
        dec = expander_decomposition(g, 0.3, seed=0)
        if dec.k == 1:
            # Force a split so there is a cut edge to tamper with.
            dec = expander_decomposition(
                g, 0.3, phi=0.2, seed=0, enforce_budget=False
            )
        dec.cut_edges.pop()
        with pytest.raises(DecompositionError):
            verify_expander_decomposition(dec)

    def test_theoretical_rounds_monotone_in_epsilon(self):
        g = grid_graph(6, 6)
        tight = expander_decomposition(g, 0.1, seed=0)
        loose = expander_decomposition(g, 0.4, seed=0)
        assert tight.theoretical_rounds() > loose.theoretical_rounds()
