"""Tests for the ``repro.obs`` telemetry package and its integration.

Three layers are covered here: the primitives (histograms, registry,
sinks, baselines), the determinism contract (fast vs. reference engine
telemetry, serial vs. sharded runner telemetry), and the trace schema
bump that rides along (v1 files must keep loading).
"""

import io
import json
import os

import pytest

from repro.congest import CongestSimulator, TraceRecorder, VertexAlgorithm, use_engine
from repro.congest.metrics import CongestMetrics
from repro.congest.trace import (
    BASE_SCHEMA_VERSION,
    TRACE_SCHEMA_VERSION,
    RoundTrace,
)
from repro.generators import gnp_random_graph
from repro.obs import (
    DEFAULT_BOUNDS,
    FixedHistogram,
    JsonlSink,
    NO_SPAN,
    TelemetryRegistry,
    build_snapshot,
    diff_snapshots,
    iter_events,
    load_snapshot,
    prometheus_text,
    render_report,
    telemetry_scope,
    write_snapshot,
)
from repro.obs import registry as obs_registry
from repro.runner import run_suite

FIXTURES = os.path.join(os.path.dirname(__file__), "data")


# ----------------------------------------------------------------------
# FixedHistogram
# ----------------------------------------------------------------------

class TestFixedHistogram:
    def test_upper_inclusive_buckets(self):
        hist = FixedHistogram(bounds=(1, 2, 4))
        hist.observe(1)
        hist.observe(2)
        hist.observe(3)   # lands in the le=4 bucket
        hist.observe(9)   # overflow
        assert hist.buckets == [1, 1, 1, 1]
        assert hist.count == 4
        assert hist.total == 15
        assert hist.min == 1 and hist.max == 9

    def test_observe_times_and_nonpositive(self):
        hist = FixedHistogram(bounds=(8,))
        hist.observe(5, times=3)
        hist.observe(5, times=0)
        hist.observe(5, times=-2)
        assert hist.count == 3
        assert hist.total == 15

    def test_percentile_nearest_rank_clamped(self):
        hist = FixedHistogram()  # power-of-two bounds
        for value in (1, 1, 2, 3, 100):
            hist.observe(value)
        assert hist.percentile(0.0) == 1
        assert hist.percentile(0.50) == 2
        # The tail estimate is clamped to the observed max, not the
        # containing bucket's upper bound (128).
        assert hist.percentile(1.0) == 100
        assert FixedHistogram().percentile(0.5) == 0.0
        with pytest.raises(ValueError):
            hist.percentile(1.5)

    def test_merge_and_bounds_mismatch(self):
        a = FixedHistogram(bounds=(1, 2))
        b = FixedHistogram(bounds=(1, 2))
        a.observe(1)
        b.observe(2, times=4)
        a.merge(b)
        assert a.count == 5 and a.max == 2
        with pytest.raises(ValueError):
            a.merge(FixedHistogram(bounds=(1, 4)))

    def test_dict_round_trip(self):
        hist = FixedHistogram()
        hist.observe(3, times=7)
        hist.observe(2 ** 40)  # overflow bucket
        data = json.loads(json.dumps(hist.to_dict()))
        assert "+inf" in data["buckets"]
        assert FixedHistogram.from_dict(data) == hist

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            FixedHistogram(bounds=())
        with pytest.raises(ValueError):
            FixedHistogram(bounds=(4, 2))

    def test_default_bounds_are_powers_of_two(self):
        assert DEFAULT_BOUNDS[0] == 1
        assert all(b == 2 ** i for i, b in enumerate(DEFAULT_BOUNDS))


# ----------------------------------------------------------------------
# Registry and module helpers
# ----------------------------------------------------------------------

class TestRegistry:
    def test_disabled_helpers_are_noops(self):
        obs_registry.reset()
        assert not obs_registry.enabled()
        obs_registry.count("x")
        obs_registry.gauge("g", 1.0)
        obs_registry.observe("h", 5)
        assert obs_registry.span("s") is NO_SPAN
        with obs_registry.span("s"):
            pass
        assert not obs_registry.current_registry()

    def test_scope_records_and_restores(self):
        obs_registry.reset()
        root = obs_registry.current_registry()
        with telemetry_scope() as registry:
            assert obs_registry.enabled()
            assert obs_registry.current_registry() is registry
            obs_registry.count("runs", 2)
            with obs_registry.span("outer"):
                with obs_registry.span("inner"):
                    obs_registry.observe("sizes", 4)
        assert not obs_registry.enabled()
        assert obs_registry.current_registry() is root
        assert not root  # nothing leaked to the root registry
        assert registry.counters == {"runs": 2}
        assert set(registry.spans) == {"outer", "outer/inner"}
        assert registry.spans["outer/inner"].count == 1
        assert registry.histograms["sizes"].count == 1

    def test_scopes_nest(self):
        with telemetry_scope() as outer:
            obs_registry.count("a")
            with telemetry_scope() as inner:
                obs_registry.count("b")
            obs_registry.count("a")
        assert outer.counters == {"a": 2}
        assert inner.counters == {"b": 1}

    def test_merge_dict_semantics(self):
        a = TelemetryRegistry()
        a.count("n", 1)
        a.gauge("temp", 10)
        a.observe("h", 2)
        with a.span("phase"):
            pass
        b = TelemetryRegistry()
        b.count("n", 3)
        b.gauge("temp", 20)
        b.observe("h", 5, times=2)
        with b.span("phase"):
            pass

        merged = TelemetryRegistry()
        merged.merge_dict(a.to_dict())
        merged.merge_dict(b.to_dict())
        assert merged.counters == {"n": 4}
        assert merged.gauges == {"temp": 20}  # last write wins
        assert merged.histograms["h"].count == 3
        assert merged.spans["phase"].count == 2

    def test_comparable_dict_strips_timings(self):
        registry = TelemetryRegistry()
        with registry.span("p"):
            pass
        comparable = registry.comparable_dict()
        assert comparable["spans"] == {"p": 1}
        # Round-trips through the plain-data form.
        clone = TelemetryRegistry.from_dict(registry.to_dict())
        assert clone.comparable_dict() == comparable


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------

class TestSinks:
    def _payload(self):
        registry = TelemetryRegistry()
        registry.count("cache.misses", 2)
        registry.gauge("load", 0.5)
        registry.observe("congest.message_bits", 33, times=4)
        with registry.span("decompose"):
            with registry.span("split"):
                pass
        return registry.to_dict()

    def test_jsonl_sink_streams_spans(self):
        buffer = io.StringIO()
        registry = TelemetryRegistry()
        registry.add_sink(JsonlSink(buffer))
        with registry.span("phase"):
            pass
        events = [json.loads(line) for line in buffer.getvalue().splitlines()]
        assert events and events[0]["event"] == "span"
        assert events[0]["path"] == "phase"

    def test_jsonl_flush_registry(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(str(path)) as sink:
            sink.flush_registry(self._payload())
        events = [json.loads(l) for l in path.read_text().splitlines()]
        kinds = {e["event"] for e in events}
        assert kinds == {"counter", "gauge", "histogram", "span_total"}

    def test_iter_events_sorted(self):
        names = [e["name"] for e in iter_events(self._payload())
                 if e["event"] == "counter"]
        assert names == sorted(names)

    def test_prometheus_text(self):
        text = prometheus_text(self._payload())
        assert "repro_cache_misses_total 2" in text
        assert "repro_load 0.5" in text
        # Cumulative buckets: 33 falls in the le=64 bucket.
        assert 'repro_congest_message_bits_bucket{le="64"} 4' in text
        assert 'repro_congest_message_bits_bucket{le="+Inf"} 4' in text
        assert "repro_congest_message_bits_count 4" in text
        assert 'repro_span_count_total{span="decompose/split"} 1' in text

    def test_render_report_sections(self):
        report = render_report(self._payload())
        for needle in ("phase spans", "counters / gauges", "histograms",
                       "decompose/split", "cache.misses"):
            assert needle in report
        assert render_report({}) == "telemetry: empty registry\n"

    def test_render_report_with_suites(self):
        suites = {"E10": {"wall_seconds": 1.5,
                          "cells": {"E10[n=64]": {"elapsed": 0.7}}}}
        report = render_report(self._payload(), suites)
        assert "cell timings" in report and "E10 (suite wall)" in report


class TestSinksEdgeCases:
    """Empty registries and hostile metric names must not wedge the
    sinks — CI scrapes them unconditionally."""

    def test_iter_events_empty_registry(self):
        assert list(iter_events(TelemetryRegistry().to_dict())) == []
        assert list(iter_events({})) == []

    def test_prometheus_text_empty_registry(self):
        assert prometheus_text(TelemetryRegistry().to_dict()) == ""
        assert prometheus_text({}) == ""

    def test_render_report_empty_registry(self):
        report = render_report(TelemetryRegistry().to_dict())
        assert report == "telemetry: empty registry\n"

    def test_prometheus_sanitizes_slash_and_dot(self):
        registry = TelemetryRegistry()
        registry.count("congest.collect/fast", 3)
        with registry.span("suite/cell.label"):
            pass
        text = prometheus_text(registry.to_dict())
        assert "repro_congest_collect_fast_total 3" in text
        # Span paths land in label values, where "/" and "." are legal.
        assert 'repro_span_count_total{span="suite/cell.label"} 1' in text
        # No unsanitized metric name escapes.
        for line in text.splitlines():
            metric = line.split("{")[0].split(" ")[0]
            if metric.startswith("#"):
                metric = line.split(" ")[-2]
            assert "/" not in metric and "." not in metric

    def test_prometheus_name_cannot_start_with_digit(self):
        registry = TelemetryRegistry()
        registry.gauge("1weird", 7)
        text = prometheus_text(registry.to_dict())
        assert "repro__1weird 7" in text


# ----------------------------------------------------------------------
# CongestMetrics: per-edge congestion distribution (satellite)
# ----------------------------------------------------------------------

class TestCongestionDistribution:
    def _metrics(self, rounds):
        metrics = CongestMetrics()
        for per_edge in rounds:
            messages = sum(per_edge.values())
            metrics.record_round(per_edge, messages, messages * 8)
        return metrics

    def test_record_round_folds_histogram(self):
        metrics = self._metrics([
            {("a", "b"): 1, ("b", "c"): 3},
            {("a", "b"): 3},
        ])
        assert metrics.congestion_histogram == {1: 1, 3: 2}
        assert metrics.max_edge_congestion == 3

    def test_congestion_summary(self):
        metrics = self._metrics([
            {("e%d" % i, "x"): 1 for i in range(98)},
        ])
        metrics.record_round({("hot", "x"): 40, ("warm", "x"): 2}, 42, 42)
        summary = metrics.congestion_summary()
        assert summary["observations"] == 100
        assert summary["p50"] == 1
        assert summary["p95"] == 1
        assert summary["max"] == 40
        assert summary["max"] == metrics.max_edge_congestion
        assert summary["histogram"] == {1: 98, 2: 1, 40: 1}

    def test_merge_sums_histograms(self):
        a = self._metrics([{("a", "b"): 2}])
        b = self._metrics([{("a", "b"): 2, ("b", "c"): 5}])
        assert a.merge(b).congestion_histogram == {2: 2, 5: 1}
        parallel = CongestMetrics.merge_parallel([a, b])
        assert parallel.congestion_histogram == {2: 2, 5: 1}
        assert parallel.max_edge_congestion == 5

    def test_dict_round_trip_keeps_histogram(self):
        metrics = self._metrics([{("a", "b"): 7}])
        clone = CongestMetrics.from_dict(
            json.loads(json.dumps(metrics.to_dict()))
        )
        assert clone.congestion_histogram == {7: 1}


# ----------------------------------------------------------------------
# Trace schema bump (satellite): v2 emission, v1 files still load
# ----------------------------------------------------------------------

class TestTraceSchema:
    def test_schema_version_emitted(self):
        trace = RoundTrace(round=1, messages=2, bits=64, stepped=3, idle=0,
                           halted=0, skipped_before=0, max_congestion=1,
                           congestion_histogram={1: 2},
                           message_bits_histogram={32: 2})
        data = trace.to_dict()
        # Detail events are off, so the record stamps the base (v4)
        # schema; the reader itself understands up to v5.
        assert TRACE_SCHEMA_VERSION == 5
        assert data["schema"] == BASE_SCHEMA_VERSION == 4
        assert data["message_bits_histogram"] == {"32": 2}
        assert RoundTrace.from_dict(data) == trace

    def test_schema_v5_stamped_only_with_events(self):
        trace = RoundTrace(round=1, messages=1, bits=8, stepped=1, idle=0,
                           halted=0, skipped_before=0, max_congestion=1,
                           congestion_histogram={1: 1},
                           events=[{"s": "0", "r": "1", "q": 0, "b": 8,
                                    "o": "deliver"}])
        data = trace.to_dict()
        assert data["schema"] == TRACE_SCHEMA_VERSION == 5
        assert RoundTrace.from_dict(data) == trace

    def test_empty_histogram_omitted(self):
        trace = RoundTrace(round=1, messages=0, bits=0, stepped=3, idle=3,
                           halted=0, skipped_before=0, max_congestion=0)
        data = trace.to_dict()
        assert "message_bits_histogram" not in data
        assert RoundTrace.from_dict(data).message_bits_histogram == {}

    def test_v1_fixture_round_trips(self):
        """A pre-bump JSONL trace (no ``schema`` field) must still load."""
        path = os.path.join(FIXTURES, "trace_v1.jsonl")
        recorder = TraceRecorder.read_jsonl(path)
        assert recorder.rounds
        assert recorder.total_messages() > 0
        assert all(r.message_bits_histogram == {} for r in recorder.rounds)
        # First fixture line predates the schema field entirely.
        with open(path) as handle:
            first = json.loads(handle.readline())
        assert "schema" not in first
        assert "message_bits_histogram" not in first
        # Re-serialising upgrades every record to the base schema (v5
        # is only stamped when detail events are present).
        upgraded = recorder.rounds[0].to_dict()
        assert upgraded["schema"] == BASE_SCHEMA_VERSION

    def test_recorder_records_message_bits(self):
        recorder = TraceRecorder("sim")
        recorder.record_round(
            1, {("a", "b"): 2}, messages=2, bits=64, stepped=2, idle=0,
            halted=0, skipped_before=0, message_bits_histogram={32: 2},
        )
        back = TraceRecorder.from_jsonl(recorder.dumps_jsonl().splitlines())
        assert back.rounds[0].message_bits_histogram == {32: 2}
        assert sum(s * t for s, t in
                   back.rounds[0].message_bits_histogram.items()) == 64


# ----------------------------------------------------------------------
# Engine telemetry equivalence (satellite)
# ----------------------------------------------------------------------

class _Flood(VertexAlgorithm):
    """Max-ID flooding — the standard pure-simulator workload."""

    def __init__(self, budget):
        self.budget = budget
        self.best = None

    def initialize(self, ctx):
        self.best = ctx.vertex
        ctx.broadcast(self.best)

    def step(self, ctx, inbox):
        for payloads in inbox.values():
            for value in payloads:
                if value > self.best:
                    self.best = value
                    ctx.broadcast(self.best)
        if ctx.round_number >= self.budget:
            ctx.halt(self.best)


class TestEngineTelemetryEquivalence:
    def _run(self, engine, seed):
        g = gnp_random_graph(30, 0.15, seed=seed)
        with telemetry_scope() as registry:
            with use_engine(engine):
                sim = CongestSimulator(g, lambda v: _Flood(8), seed=seed)
                result = sim.run(max_rounds=20)
        return registry, result

    @pytest.mark.parametrize("seed", (5, 17))
    def test_fast_and_reference_agree(self, seed):
        ref_registry, ref = self._run("reference", seed)
        fast_registry, fast = self._run("fast", seed)
        assert ref.outputs == fast.outputs
        assert ref_registry.comparable_dict() == fast_registry.comparable_dict()

    def test_telemetry_matches_metrics(self):
        registry, result = self._run("fast", seed=5)
        counters = registry.counters
        assert counters["congest.simulations"] == 1
        assert counters["congest.rounds"] == result.metrics.rounds
        assert counters["congest.messages"] == result.metrics.total_messages
        assert counters["congest.bits"] == result.metrics.total_bits
        # The message-size histogram accounts for every bit charged.
        sizes = registry.histograms["congest.message_bits"]
        assert sizes.total == result.metrics.total_bits
        assert sizes.count == result.metrics.total_messages
        # Active-vertex observations cover every executed round.
        active = registry.histograms["congest.active_vertices"]
        assert active.count == result.metrics.rounds

    def test_disabled_run_records_nothing(self):
        obs_registry.reset()
        g = gnp_random_graph(20, 0.2, seed=3)
        sim = CongestSimulator(g, lambda v: _Flood(5), seed=3)
        sim.run(max_rounds=10)
        assert not obs_registry.current_registry()


# ----------------------------------------------------------------------
# Runner telemetry determinism (satellite)
# ----------------------------------------------------------------------

def _comparable(payload):
    return TelemetryRegistry.from_dict(payload).comparable_dict()


class TestRunnerTelemetry:
    # Cache must be off: a cache hit skips the decompose work entirely,
    # and skipped work legitimately records no telemetry.
    def test_serial_and_sharded_merge_equal(self):
        serial = run_suite("E10", jobs=1, use_cache=False, limit=2,
                           telemetry=True)
        sharded = run_suite("E10", jobs=4, use_cache=False, limit=2,
                            telemetry=True)
        assert all(r.telemetry for r in serial.results)
        assert all(r.telemetry for r in sharded.results)
        merged_serial = _comparable(serial.merged_telemetry())
        merged_sharded = _comparable(sharded.merged_telemetry())
        assert merged_serial == merged_sharded
        # The span tree carries the per-cell phases.
        paths = set(merged_serial["spans"])
        assert any(p.startswith("cell:") for p in paths)
        assert any("decompose" in p for p in paths)

    def test_telemetry_off_by_default(self):
        run = run_suite("E10", jobs=1, use_cache=False, limit=1)
        assert all(r.telemetry is None for r in run.results)
        assert run.merged_telemetry() == TelemetryRegistry().to_dict()


# ----------------------------------------------------------------------
# Baseline snapshots and diffs
# ----------------------------------------------------------------------

def _snapshot(elapsed=0.5, wall=1.0):
    return build_snapshot(
        suites={"E10": {"wall_seconds": wall,
                        "cells": {"E10[n=64]": {"elapsed": elapsed,
                                                "attempts": 1}}}},
        telemetry=TelemetryRegistry().to_dict(),
    )


class TestBaseline:
    def test_write_load_round_trip(self, tmp_path):
        path = str(tmp_path / "snap.json")
        write_snapshot(path, _snapshot())
        snapshot = load_snapshot(path)
        assert snapshot["kind"] == "repro-telemetry-snapshot"
        assert snapshot["suites"]["E10"]["wall_seconds"] == 1.0

    def test_load_rejects_foreign_files(self, tmp_path):
        path = str(tmp_path / "bad.json")
        with open(path, "w") as handle:
            json.dump({"hello": "world"}, handle)
        with pytest.raises(ValueError, match="not a repro telemetry"):
            load_snapshot(path)

    def test_load_rejects_future_schema(self, tmp_path):
        snapshot = _snapshot()
        snapshot["schema"] = 99
        path = str(tmp_path / "future.json")
        with open(path, "w") as handle:
            json.dump(snapshot, handle)
        with pytest.raises(ValueError, match="schema 99"):
            load_snapshot(path)

    def test_self_diff_is_clean(self):
        snapshot = _snapshot()
        diff = diff_snapshots(snapshot, snapshot)
        assert diff.ok
        assert diff.unchanged == 2  # suite wall + one cell
        assert "0 regression(s)" in diff.render()

    def test_double_time_regresses(self):
        diff = diff_snapshots(_snapshot(), _snapshot(elapsed=1.0, wall=2.0),
                              budget=1.25)
        assert not diff.ok
        assert len(diff.regressions) == 2
        assert "REGRESSION" in diff.render()

    def test_min_seconds_floor_absorbs_jitter(self):
        old = _snapshot(elapsed=0.001, wall=0.002)
        new = _snapshot(elapsed=0.002, wall=0.004)  # 2x but microscopic
        assert diff_snapshots(old, new, budget=1.25).ok

    def test_grid_changes_are_informational(self):
        old = _snapshot()
        new = _snapshot()
        new["suites"]["E11"] = {"wall_seconds": 0.1, "cells": {}}
        diff = diff_snapshots(old, new)
        assert diff.ok
        assert diff.added == ["suite:E11"]
        assert diff_snapshots(new, old).missing == ["suite:E11"]

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            diff_snapshots(_snapshot(), _snapshot(), budget=0)


# ----------------------------------------------------------------------
# CLI integration: bench --telemetry, obs report, obs diff
# ----------------------------------------------------------------------

class TestObsCli:
    def test_bench_telemetry_report_diff(self, capsys, tmp_path):
        from repro.cli import main

        snap = tmp_path / "snap.json"
        assert main([
            "bench", "--suite", "E10", "--limit", "1", "--no-cache",
            "--telemetry", str(snap),
        ]) == 0
        capsys.readouterr()
        snapshot = load_snapshot(str(snap))
        assert snapshot["telemetry"]["counters"]["congest.simulations"] > 0

        assert main(["obs", "report", str(snap)]) == 0
        out = capsys.readouterr().out
        assert "phase spans" in out and "cell timings" in out

        assert main(["obs", "report", str(snap), "--format", "prom"]) == 0
        assert "_total" in capsys.readouterr().out

        assert main(["obs", "report", str(snap), "--format", "jsonl"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert all(json.loads(line) for line in lines)

        # Self-diff passes; a doubled snapshot fails the gate.
        assert main(["obs", "diff", str(snap), str(snap)]) == 0
        capsys.readouterr()
        slow = json.loads(snap.read_text())
        for suite in slow["suites"].values():
            suite["wall_seconds"] = suite["wall_seconds"] * 2 + 1
            for cell in suite["cells"].values():
                cell["elapsed"] = cell["elapsed"] * 2 + 1
        slow_path = tmp_path / "slow.json"
        slow_path.write_text(json.dumps(slow))
        assert main(["obs", "diff", str(snap), str(slow_path)]) == 1
        assert "REGRESSION" in capsys.readouterr().out
