"""Differential tests for the columnar round kernels.

The kernel layer's whole contract is *bit-identity*: a registered
kernel may only change how fast a round executes, never anything
observable.  Every test here runs the same simulation twice — kernels
forced on and forced off — and pins outputs, metrics, per-round
message counts, structured traces, telemetry, and the per-vertex RNG
streams to be exactly equal.  The differential matrix additionally
runs the kernelized side with batched (columnar send-plan) delivery
both on and off, so the batching layer is held to the same bit-parity
bar, including its error paths (oversized messages, strict capacity
violations).  A second group covers the activation rules (thresholds,
fault plans, missing NumPy, the ``REPRO_NO_KERNELS`` and
``REPRO_NO_BATCH_DELIVERY`` escape hatches) and checkpoint round-trips
across kernel and batch modes, and a third unit-tests the
:mod:`repro.rng` columnar MT19937 machinery the kernels are built on.
"""

from __future__ import annotations

import random

import pytest

from repro import rng as rng_mod
from repro.congest import algorithm as algorithm_mod
from repro.congest.algorithm import (
    VertexAlgorithm,
    batch_delivery_enabled,
    kernel_class_for,
    kernels_enabled,
    register_kernel,
    set_batch_delivery_enabled,
    set_kernels_enabled,
)
from repro.congest.checkpoint import resume_simulation
from repro.congest.faults import FaultPlan
from repro.congest.kernels import KernelBase
from repro.congest.network import CongestSimulator
from repro.congest.trace import TraceRecorder
from repro.errors import MessageTooLargeError, ProtocolError
from repro.decomposition.mpx import MPXClustering, MPXKernel
from repro.generators import gnp_random_graph, grid_graph, k_tree
from repro.independent_set.greedy import LubyKernel, LubyMIS
from repro.matching.distributed import (
    ProposalMatching,
    ProposalMatchingKernel,
)
from repro.obs.registry import telemetry_scope
from repro.rng import (
    HAVE_NUMPY,
    MTColumn,
    fresh_random_from_state,
    mt_state_matrix,
)

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="kernel differential tests require numpy"
)


# ----------------------------------------------------------------------
# The differential matrix: algorithm x generator x seed x fault plan
# ----------------------------------------------------------------------

ALGORITHMS = {
    "luby": (lambda v: LubyMIS(20), 44),
    "mpx": (lambda v: MPXClustering(0.4, 12.0, 16), 18),
    "matching": (lambda v: ProposalMatching(16), 54),
}

GENERATORS = {
    "gnp": lambda seed: gnp_random_graph(40, 0.12, seed=seed),
    "grid": lambda seed: grid_graph(6, 7),
    "ktree": lambda seed: k_tree(40, 3, seed=seed),
}


def _plan(kind, graph):
    if kind == "none":
        return None
    verts = sorted(graph.vertices())
    if kind == "crash":
        return FaultPlan(
            seed=7,
            crashes=((verts[2], 3), (verts[11], 5), (verts[19], 2)),
        )
    if kind == "drop":
        return FaultPlan(seed=7, drop=0.15)
    raise AssertionError(kind)


@pytest.fixture(autouse=True)
def _kernels_restored(monkeypatch):
    """Force threshold 1 (the graphs here are small) and always leave
    the process with kernels and batched delivery re-enabled."""
    monkeypatch.setenv("REPRO_KERNEL_THRESHOLD", "1")
    yield
    set_kernels_enabled(True)
    set_batch_delivery_enabled(True)


def run_once(graph, factory, seed, enabled, plan=None, rounds=60,
             batched=True):
    set_kernels_enabled(enabled)
    set_batch_delivery_enabled(batched)
    recorder = TraceRecorder("kernel-diff")
    sim = CongestSimulator(
        graph, factory, seed=seed, faults=plan, trace=recorder
    )
    result = sim.run(max_rounds=rounds)
    set_kernels_enabled(True)
    set_batch_delivery_enabled(True)
    return result, recorder, sim


def rng_states(sim):
    """Per-vertex RNG states, ``None`` where no draw ever happened."""
    return [
        None if ctx._rng is None else ctx._rng.getstate()
        for ctx in sim._engine._contexts
    ]


def assert_identical(pair_on, pair_off):
    res_on, rec_on, sim_on = pair_on
    res_off, rec_off, sim_off = pair_off
    assert res_on.outputs == res_off.outputs
    assert res_on.halted == res_off.halted
    assert res_on.crashed == res_off.crashed
    assert res_on.metrics.summary() == res_off.metrics.summary()
    assert (
        res_on.metrics.messages_per_round
        == res_off.metrics.messages_per_round
    )
    assert len(rec_on.rounds) == len(rec_off.rounds)
    for a, b in zip(rec_on.rounds, rec_off.rounds):
        assert a == b
    assert rng_states(sim_on) == rng_states(sim_off)


@pytest.mark.parametrize("algo", sorted(ALGORITHMS))
@pytest.mark.parametrize("family", sorted(GENERATORS))
@pytest.mark.parametrize("seed", [3, 17, 92])
@pytest.mark.parametrize("plan_kind", ["none", "crash", "drop"])
@pytest.mark.parametrize("batched", [True, False])
def test_kernel_matches_scalar(algo, family, seed, plan_kind, batched):
    graph = GENERATORS[family](seed)
    factory, rounds = ALGORITHMS[algo]
    plan = _plan(plan_kind, graph)
    pair_on = run_once(
        graph, factory, seed, True, plan, rounds, batched=batched
    )
    pair_off = run_once(graph, factory, seed, False, plan, rounds)
    # Message-fault plans force a (silent) scalar fallback; lossless
    # and crash-only plans must actually engage the kernel, otherwise
    # this test would be vacuously comparing scalar against scalar.
    kernel = pair_on[2]._engine._kernel
    if plan_kind == "drop":
        assert kernel is None
    else:
        assert kernel is not None
        assert kernel._batched == batched
    assert pair_off[2]._engine._kernel is None
    assert_identical(pair_on, pair_off)


def test_delaunay_family_matches_scalar():
    """The matrix's random-planar column (skips without scipy)."""
    from tests.conftest import delaunay_or_skip

    graph = delaunay_or_skip(60, seed=5)
    for algo in sorted(ALGORITHMS):
        factory, rounds = ALGORITHMS[algo]
        pair_on = run_once(graph, factory, 13, True, None, rounds)
        pair_off = run_once(graph, factory, 13, False, None, rounds)
        assert pair_on[2]._engine._kernel is not None
        assert_identical(pair_on, pair_off)


def test_telemetry_identical_and_kernel_counters_stripped():
    """Kernels on vs off produce equal *comparable* telemetry, and the
    ``congest.kernel.*`` diagnostics exist only in the raw payload."""
    graph = GENERATORS["gnp"](3)
    factory, rounds = ALGORITHMS["luby"]
    captures = {}
    for enabled in (True, False):
        with telemetry_scope() as registry:
            run_once(graph, factory, 3, enabled, rounds=rounds)
            captures[enabled] = (
                registry.comparable_dict(),
                registry.to_dict(),
            )
    assert captures[True][0] == captures[False][0]
    raw_on = captures[True][1]["counters"]
    assert raw_on.get("congest.kernel.engaged") == 1
    assert raw_on.get("congest.kernel.rounds", 0) > 0
    assert raw_on.get("congest.delivery.batched", 0) > 0
    raw_off = captures[False][1]["counters"]
    assert raw_off.get("congest.kernel.fallback") == 1
    assert raw_off.get("congest.delivery.scalar", 0) > 0
    assert not any(
        name.startswith(("congest.kernel.", "congest.delivery."))
        for name in captures[True][0]["counters"]
    )
    # Both engagement styles record collect-phase spans identically.
    assert captures[True][0]["spans"]["congest.collect"] > 0


# ----------------------------------------------------------------------
# Activation rules
# ----------------------------------------------------------------------

def test_registry_maps_algorithms_to_kernels():
    assert kernel_class_for(LubyMIS) is LubyKernel
    assert kernel_class_for(MPXClustering) is MPXKernel
    assert kernel_class_for(ProposalMatching) is ProposalMatchingKernel
    assert kernel_class_for(dict) is None


def test_threshold_gates_engagement(monkeypatch):
    graph = grid_graph(5, 5)
    factory, _ = ALGORITHMS["luby"]
    monkeypatch.setenv("REPRO_KERNEL_THRESHOLD", "26")
    sim = CongestSimulator(graph, factory, seed=1)
    assert sim._engine._kernel is None
    monkeypatch.setenv("REPRO_KERNEL_THRESHOLD", "25")
    sim = CongestSimulator(graph, factory, seed=1)
    assert sim._engine._kernel is not None


def test_default_threshold_engages_at_64(monkeypatch):
    monkeypatch.delenv("REPRO_KERNEL_THRESHOLD")
    graph = grid_graph(8, 8)
    factory, rounds = ALGORITHMS["luby"]
    sim = CongestSimulator(graph, factory, seed=1)
    assert sim._engine._kernel is not None
    small = grid_graph(7, 9)  # 63 vertices
    sim = CongestSimulator(small, factory, seed=1)
    assert sim._engine._kernel is None


def test_env_variable_disables_kernels(monkeypatch):
    monkeypatch.setenv("REPRO_NO_KERNELS", "1")
    # The module-level flag is read at import; the setter is the
    # process-level control and mirrors back into the environment.
    set_kernels_enabled(False)
    assert not kernels_enabled()
    graph = grid_graph(8, 8)
    sim = CongestSimulator(graph, ALGORITHMS["luby"][0], seed=1)
    assert sim._engine._kernel is None
    set_kernels_enabled(True)
    assert "REPRO_NO_KERNELS" not in __import__("os").environ
    sim = CongestSimulator(graph, ALGORITHMS["luby"][0], seed=1)
    assert sim._engine._kernel is not None


def test_missing_numpy_degrades_silently(monkeypatch):
    """With NumPy stubbed out the engine runs scalar, bit-identically.

    Batched delivery rides on the kernel layer, so the same stub also
    silences it: no send plans are ever built, and the engine finishes
    with no parked lazy plan."""
    graph = GENERATORS["gnp"](3)
    factory, rounds = ALGORITHMS["mpx"]
    baseline = run_once(graph, factory, 3, False, rounds=rounds)
    monkeypatch.setattr(rng_mod, "HAVE_NUMPY", False)
    pair = run_once(graph, factory, 3, True, rounds=rounds)
    assert pair[2]._engine._kernel is None
    assert pair[2]._engine._send_plan is None
    assert pair[2]._engine._lazy_plan is None
    monkeypatch.undo()
    assert_identical(pair, baseline)


def test_env_variable_disables_batch_delivery():
    """The batch-delivery escape hatch mirrors the kernels one: the
    setter flips the process flag and the env var together, and a
    kernel built while disabled emits through scalar outboxes."""
    import os

    graph = grid_graph(8, 8)
    set_batch_delivery_enabled(False)
    assert not batch_delivery_enabled()
    assert os.environ.get("REPRO_NO_BATCH_DELIVERY") == "1"
    sim = CongestSimulator(graph, ALGORITHMS["luby"][0], seed=1)
    assert sim._engine._kernel is not None
    assert not sim._engine._kernel._batched
    set_batch_delivery_enabled(True)
    assert "REPRO_NO_BATCH_DELIVERY" not in os.environ
    sim = CongestSimulator(graph, ALGORITHMS["luby"][0], seed=1)
    assert sim._engine._kernel._batched


def test_reference_engine_never_kernelizes():
    graph = grid_graph(8, 8)
    sim = CongestSimulator(
        graph, ALGORITHMS["luby"][0], seed=1, engine="reference"
    )
    assert getattr(sim._engine, "_kernel", None) is None


def test_mixed_population_falls_back():
    graph = grid_graph(8, 8)

    def factory(v):
        if v == 0:
            return MPXClustering(0.4, 12.0, 16)
        return LubyMIS(20)

    sim = CongestSimulator(graph, factory, seed=1)
    assert sim._engine._kernel is None


def test_non_uniform_parameters_fall_back():
    graph = grid_graph(8, 8)
    sim = CongestSimulator(
        graph, lambda v: LubyMIS(20 if v else 21), seed=1
    )
    assert sim._engine._kernel is None


# ----------------------------------------------------------------------
# Error-path parity: batched accounting raises exactly like scalar
# ----------------------------------------------------------------------

#: 8 * 12 + 2 = 98 bits — just over the 96-bit budget of a 42-vertex
#: grid (16 words of max(4, ceil(log2(44))) = 6 bits each).
_BIG = "x" * 12


class _Oversize(VertexAlgorithm):
    """Vertex 5 broadcasts an over-budget string in round 1."""

    def step(self, ctx, inbox):
        if ctx.round_number == 1:
            if ctx.vertex == 5:
                ctx.broadcast(_BIG)
            return
        ctx.halt(True)


@register_kernel(_Oversize)
class _OversizeKernel(KernelBase):
    emits_send_plans = True

    def _load_columns(self):
        pass

    def _write_columns(self):
        pass

    def _initialize_rows(self, rows):
        pass

    def _step_rows(self, rows, round_number, boxes):
        if round_number == 1:
            i = self.engine._index[5]
            self._emit_broadcast(rows[rows == i], shared=_BIG)
            return
        for i in rows.tolist():
            self._halt(i, True)


class _DoubleSend(VertexAlgorithm):
    """Vertex 5 sends two messages along one edge in round 1."""

    def step(self, ctx, inbox):
        if ctx.round_number == 1:
            if ctx.vertex == 5:
                target = ctx.neighbors[0]
                ctx.send(target, 1)
                ctx.send(target, 2)
            return
        ctx.halt(True)


@register_kernel(_DoubleSend)
class _DoubleSendKernel(KernelBase):
    emits_send_plans = True

    def _load_columns(self):
        pass

    def _write_columns(self):
        pass

    def _initialize_rows(self, rows):
        pass

    def _step_rows(self, rows, round_number, boxes):
        np = self.np
        if round_number == 1:
            i = self.engine._index[5]
            if (rows == i).any():
                sender = np.array([i], dtype=np.intp)
                target = np.array(
                    [int(self.nbr[self.indptr[i]])], dtype=np.int64
                )
                # Two single-edge unicast segments: flattened
                # segment-major order equals the scalar drain order.
                self._emit_send(sender, target, 1)
                self._emit_send(sender, target, 2)
            return
        for i in rows.tolist():
            self._halt(i, True)


def _capture_error(graph, factory, exc_type, *, kernels, batched,
                   strict=False):
    set_kernels_enabled(kernels)
    set_batch_delivery_enabled(batched)
    try:
        sim = CongestSimulator(graph, factory, seed=2, strict=strict)
        if kernels:
            assert sim._engine._kernel is not None
            assert sim._engine._kernel._batched == batched
        with pytest.raises(exc_type) as info:
            sim.run(max_rounds=6)
    finally:
        set_kernels_enabled(True)
        set_batch_delivery_enabled(True)
    return info.value, sim._engine._round


@pytest.mark.parametrize(
    "factory,exc_type,strict",
    [
        (lambda v: _Oversize(), MessageTooLargeError, False),
        (lambda v: _DoubleSend(), ProtocolError, True),
    ],
    ids=["oversized", "strict-capacity"],
)
def test_error_parity_batched_vs_scalar(factory, exc_type, strict):
    """Budget and strict-capacity violations raise the same exception
    type, text, and round number whether accounting runs columnar
    (batched send plan), through kernel outbox fallback, or fully
    scalar."""
    graph = grid_graph(6, 7)
    outcomes = [
        _capture_error(
            graph, factory, exc_type,
            kernels=kernels, batched=batched, strict=strict,
        )
        for kernels, batched in [(True, True), (True, False), (False, True)]
    ]
    texts = {str(err) for err, _round in outcomes}
    rounds = {r for _err, r in outcomes}
    assert len(texts) == 1, texts
    assert len(rounds) == 1, rounds
    assert all(type(err) is exc_type for err, _round in outcomes)


# ----------------------------------------------------------------------
# Checkpoint round-trips across kernel and batch-delivery modes
# ----------------------------------------------------------------------

@pytest.mark.parametrize("algo", sorted(ALGORITHMS))
@pytest.mark.parametrize(
    "capture_on,resume_on,capture_batched,resume_batched",
    [
        (True, False, True, True),
        (False, True, True, True),
        (True, True, True, True),
        (True, True, True, False),
        (True, True, False, True),
    ],
)
def test_checkpoint_crosses_kernel_modes(
    algo, capture_on, resume_on, capture_batched, resume_batched
):
    """A checkpoint captured in any mode resumes bit-identically in
    any other — the envelope stays engine-, kernel-, and
    batch-delivery-neutral.  Capturing with batching on exercises the
    materialize-before-capture path (a lazy plan may be parked at the
    checkpoint boundary)."""
    graph = GENERATORS["gnp"](9)
    factory, rounds = ALGORITHMS[algo]
    base, base_rec, _ = run_once(graph, factory, 21, True, rounds=rounds)

    set_kernels_enabled(capture_on)
    set_batch_delivery_enabled(capture_batched)
    checkpoints = []
    sim = CongestSimulator(graph, factory, seed=21)
    sim.run(
        max_rounds=rounds, checkpoint_every=2,
        on_checkpoint=checkpoints.append,
    )
    assert checkpoints
    set_kernels_enabled(resume_on)
    set_batch_delivery_enabled(resume_batched)
    resumed = resume_simulation(graph, factory, checkpoints[0])
    result = resumed.run(max_rounds=rounds)
    set_kernels_enabled(True)
    set_batch_delivery_enabled(True)

    assert result.outputs == base.outputs
    assert result.halted == base.halted
    assert (
        result.metrics.messages_per_round
        == base.metrics.messages_per_round
    )
    assert result.metrics.summary() == base.metrics.summary()


def test_checkpoint_fixture_workload_unaffected():
    """Unregistered algorithms (the checkpoint fixture's RNG walker)
    never see a kernel and round-trip exactly as before."""
    from tests._checkpoint_fixture import FixtureWalker

    graph = grid_graph(6, 6)
    factory = FixtureWalker
    base = CongestSimulator(graph, factory, seed=4).run(max_rounds=45)
    checkpoints = []
    sim = CongestSimulator(graph, factory, seed=4)
    assert sim._engine._kernel is None
    sim.run(
        max_rounds=45, checkpoint_every=7,
        on_checkpoint=checkpoints.append,
    )
    resumed = resume_simulation(graph, factory, checkpoints[0])
    result = resumed.run(max_rounds=45)
    assert result.outputs == base.outputs


# ----------------------------------------------------------------------
# Columnar MT19937 plumbing
# ----------------------------------------------------------------------

class TestMTColumn:
    def test_state_matrix_matches_cpython_seeding(self):
        seeds = [0, 1, 42, 2**31 - 1, 2**32, 2**64 - 1, 12345]
        matrix = mt_state_matrix(seeds)
        for row, seed in enumerate(seeds):
            expected = random.Random(seed).getstate()[1][:624]
            assert tuple(int(x) for x in matrix[row]) == expected

    def test_random_column_matches_scalar(self):
        import numpy as np

        col = MTColumn(5)
        col.adopt_seeds(np.arange(5), [11, 22, 33, 44, 55])
        scalars = [random.Random(s) for s in (11, 22, 33, 44, 55)]
        for _ in range(3):
            rows = np.array([0, 2, 4])
            drawn = col.random_column(rows)
            for row, value in zip(rows.tolist(), drawn.tolist()):
                assert value == scalars[row].random()

    def test_randbelow_column_matches_scalar(self):
        import numpy as np

        col = MTColumn(4)
        col.adopt_seeds(np.arange(4), [7, 8, 9, 10])
        scalars = [random.Random(s) for s in (7, 8, 9, 10)]
        bounds = np.array([3, 17, 255, 1_000_000])
        for _ in range(4):
            rows = np.arange(4)
            drawn = col.randbelow_column(rows, bounds)
            for row, value in zip(rows.tolist(), drawn.tolist()):
                assert value == scalars[row]._randbelow(int(bounds[row]))

    def test_adopt_state_resumes_mid_stream(self):
        import numpy as np

        scalar = random.Random(99)
        for _ in range(1000):
            scalar.random()
        col = MTColumn(2)
        col.adopt_state(1, scalar)
        clone = random.Random(99)
        for _ in range(1000):
            clone.random()
        drawn = col.random_column(np.array([1]))
        assert drawn[0] == clone.random()

    def test_state_of_round_trips_through_random(self):
        import numpy as np

        col = MTColumn(3)
        col.adopt_seeds(np.arange(3), [1, 2, 3])
        col.random_column(np.arange(3))
        for row in range(3):
            rebuilt = fresh_random_from_state(col.state_of(row))
            reference = random.Random(row + 1)
            reference.random()
            assert rebuilt.getstate() == reference.getstate()
            assert rebuilt.random() == reference.random()

    def test_dirty_tracking(self):
        import numpy as np

        col = MTColumn(4)
        col.adopt_seeds(np.arange(4), [5, 6, 7, 8])
        col.clear_dirty()
        col.random_column(np.array([1, 3]))
        assert sorted(col.dirty_rows().tolist()) == [1, 3]
        col.clear_dirty()
        assert col.dirty_rows().size == 0

    def test_fresh_randoms_replay_shortcut(self):
        """The bulk hand-back (reseed + skip for seed-adopted rows,
        state tuple for rows of unknown provenance) equals scalar."""
        import numpy as np

        col = MTColumn(4)
        seeds = [21, 22, 23]
        col.adopt_seeds(np.arange(3), seeds)
        scalars = [random.Random(s) for s in seeds]
        # Row 3 adopted mid-stream: replay is impossible, tuple path.
        donor = random.Random(99)
        donor.random(), donor.getrandbits(13)
        twin = random.Random(99)
        twin.random(), twin.getrandbits(13)
        col.adopt_state(3, donor)
        scalars.append(twin)
        # Ragged consumption, including >1 twist block on row 0.
        for _ in range(800):
            col.random_column(np.array([0]))
            scalars[0].random()
        col.random_column(np.arange(4))
        for rng in scalars:
            rng.random()
        col.randbelow_column(np.array([1, 3]), np.array([7, 7]))
        scalars[1]._randbelow(7), scalars[3]._randbelow(7)
        rebuilt = col.fresh_randoms(np.arange(4))
        for rng, reference in zip(rebuilt, scalars):
            assert rng.getstate() == reference.getstate()
            assert rng.random() == reference.random()
        assert col.fresh_randoms(np.empty(0, dtype=np.intp)) == []
