"""Tests for balanced edge separators (Theorem 1.6)."""

import math

import pytest

from repro.errors import GraphError
from repro.generators import (
    cycle_graph,
    delaunay_planar_graph,
    grid_graph,
    k_tree,
    path_graph,
    random_tree,
    toroidal_grid_graph,
)
from repro.graph import Graph
from repro.spectral import balanced_edge_separator, separator_quality


def check_balance(n, cut_set):
    size = len(cut_set)
    assert 3 * size >= n
    assert 3 * (n - size) >= n


class TestBalance:
    @pytest.mark.parametrize(
        "graph",
        [
            path_graph(10),
            cycle_graph(15),
            grid_graph(6, 7),
            random_tree(40, seed=1),
            delaunay_planar_graph(80, seed=2),
            k_tree(50, 3, seed=3),
        ],
        ids=["path", "cycle", "grid", "tree", "delaunay", "ktree"],
    )
    def test_separator_is_balanced(self, graph):
        cut_set, size = balanced_edge_separator(graph, seed=0)
        check_balance(graph.n, cut_set)
        assert size == graph.cut_size(cut_set)

    def test_two_vertices(self):
        g = Graph.from_edges([(0, 1)])
        cut_set, size = balanced_edge_separator(g, seed=0)
        assert len(cut_set) == 1
        assert size == 1

    def test_rejects_disconnected(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        with pytest.raises(GraphError):
            balanced_edge_separator(g)

    def test_rejects_single_vertex(self):
        g = Graph()
        g.add_vertex(0)
        with pytest.raises(GraphError):
            balanced_edge_separator(g)


class TestSize:
    def test_path_separator_is_one_edge(self):
        g = path_graph(30)
        _, size = balanced_edge_separator(g, seed=0)
        assert size == 1

    def test_cycle_separator_is_two_edges(self):
        g = cycle_graph(30)
        _, size = balanced_edge_separator(g, seed=0)
        assert size == 2

    def test_grid_separator_near_sqrt(self):
        g = grid_graph(10, 10)
        _, size = balanced_edge_separator(g, seed=0)
        # The optimal balanced cut of a 10x10 grid is ~10 edges.
        assert size <= 20

    @pytest.mark.parametrize("n", [60, 120, 240])
    def test_theorem_1_6_envelope_planar(self, n):
        """Planar separators stay within O(sqrt(Delta * n))."""
        g = delaunay_planar_graph(n, seed=7)
        cut_set, _ = balanced_edge_separator(g, seed=0)
        assert separator_quality(g, cut_set) <= 3.0

    def test_theorem_1_6_envelope_ktree(self):
        g = k_tree(120, 3, seed=5)
        cut_set, _ = balanced_edge_separator(g, seed=0)
        assert separator_quality(g, cut_set) <= 3.0

    def test_toroidal_grid_envelope(self):
        g = toroidal_grid_graph(8, 8)
        cut_set, _ = balanced_edge_separator(g, seed=0)
        # Bounded genus: envelope holds with a genus-dependent constant.
        assert separator_quality(g, cut_set) <= 4.0

    def test_quality_definition(self):
        g = grid_graph(4, 4)
        cut_set, size = balanced_edge_separator(g, seed=0)
        expected = size / math.sqrt(g.max_degree() * g.n)
        assert separator_quality(g, cut_set) == pytest.approx(expected)
