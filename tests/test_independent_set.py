"""Tests for MAXIS solvers and the Theorem 1.2 distributed algorithm."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.framework import density_bound
from repro.errors import SolverError
from repro.generators import (
    complete_graph,
    cycle_graph,
    gnp_random_graph,
    grid_graph,
    k_tree,
    random_tree,
    star_graph,
)
from tests.conftest import delaunay_or_skip as delaunay_planar_graph
from repro.graph import Graph
from repro.independent_set import (
    distributed_maxis,
    exact_maxis,
    greedy_min_degree_is,
    luby_mis,
    solve_maxis,
    two_improvement_is,
)


def nx_maxis_size(g: Graph) -> int:
    if g.n == 0:
        return 0
    comp = nx.complement(g.to_networkx())
    return max((len(c) for c in nx.find_cliques(comp)), default=0)


def is_independent(g: Graph, s) -> bool:
    return all(not (u in s and v in s) for u, v in g.edges())


class TestExactMaxis:
    @pytest.mark.parametrize(
        "graph, alpha",
        [
            (cycle_graph(9), 4),
            (cycle_graph(10), 5),
            (star_graph(7), 7),
            (complete_graph(6), 1),
            (grid_graph(4, 4), 8),
            (random_tree(15, seed=1), None),
        ],
        ids=["C9", "C10", "star", "K6", "grid", "tree"],
    )
    def test_known_values(self, graph, alpha):
        result = exact_maxis(graph)
        assert is_independent(graph, result)
        if alpha is not None:
            assert len(result) == alpha
        else:
            assert len(result) == nx_maxis_size(graph)

    @given(
        st.lists(
            st.tuples(st.integers(0, 11), st.integers(0, 11)).filter(
                lambda e: e[0] != e[1]
            ),
            max_size=28,
        ).map(Graph.from_edges)
    )
    @settings(max_examples=60, deadline=None)
    def test_against_networkx(self, g):
        result = exact_maxis(g)
        assert is_independent(g, result)
        assert len(result) == nx_maxis_size(g)

    def test_planar_instance(self):
        g = delaunay_planar_graph(100, seed=2)
        result = exact_maxis(g)
        assert is_independent(g, result)

    def test_node_budget_raises(self):
        g = gnp_random_graph(40, 0.5, seed=3)
        with pytest.raises(SolverError):
            exact_maxis(g, node_budget=5)


class TestHeuristics:
    def test_greedy_respects_density_bound(self):
        """Section 3.1: alpha(G) >= n / (2d + 1) via min-degree greedy."""
        for make in (
            lambda: delaunay_planar_graph(80, seed=4),
            lambda: k_tree(60, 3, seed=5),
            lambda: grid_graph(8, 8),
        ):
            g = make()
            s = greedy_min_degree_is(g)
            assert is_independent(g, s)
            d = density_bound(g)
            assert len(s) >= g.n / (2 * d + 1)

    def test_two_improvement_never_shrinks(self):
        g = delaunay_planar_graph(60, seed=6)
        start = greedy_min_degree_is(g)
        improved = two_improvement_is(g, start)
        assert is_independent(g, improved)
        assert len(improved) >= len(start)

    def test_solve_maxis_exact_when_small(self):
        g = delaunay_planar_graph(40, seed=7)
        assert len(solve_maxis(g)) == len(exact_maxis(g))

    def test_solve_maxis_fallback_on_hard_instance(self):
        g = gnp_random_graph(60, 0.4, seed=8)
        s = solve_maxis(g, node_budget=100)
        assert is_independent(g, s)
        assert len(s) >= 1


class TestLubyMIS:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_mis_properties(self, seed):
        g = delaunay_planar_graph(60, seed=seed)
        mis, result = luby_mis(g, seed=seed)
        assert is_independent(g, mis)
        # Maximality.
        for v in g.vertices():
            assert v in mis or any(u in mis for u in g.neighbors(v))
        assert result.halted

    def test_rounds_logarithmic(self):
        g = delaunay_planar_graph(120, seed=3)
        _, result = luby_mis(g, seed=4)
        import math

        assert result.metrics.rounds <= 20 * math.log2(g.n)


class TestDistributedMaxis:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_theorem_1_2_ratio(self, seed):
        g = delaunay_planar_graph(60, seed=seed)
        epsilon = 0.3
        result = distributed_maxis(g, epsilon, seed=seed)
        opt = len(exact_maxis(g))
        assert result.size >= (1 - epsilon) * opt

    def test_ratio_on_ktree(self):
        g = k_tree(50, 3, seed=2)
        result = distributed_maxis(g, 0.3, seed=3)
        opt = len(exact_maxis(g))
        assert result.size >= 0.7 * opt

    def test_no_conflicts_on_single_cluster(self):
        g = grid_graph(5, 5)
        result = distributed_maxis(g, 0.3, seed=4)
        if len(result.framework.clusters) == 1:
            assert result.conflicts_resolved == 0

    def test_result_is_independent(self):
        g = delaunay_planar_graph(50, seed=5)
        result = distributed_maxis(g, 0.25, seed=6)
        assert is_independent(g, result.independent_set)

    def test_invalid_epsilon(self):
        with pytest.raises(SolverError):
            distributed_maxis(grid_graph(3, 3), -0.1)
