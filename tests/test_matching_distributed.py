"""Tests for the distributed matching algorithms (Theorems 3.2 and 1.1)."""

import pytest

from repro.errors import SolverError
from repro.generators import (
    delaunay_planar_graph,
    grid_graph,
    k_tree,
    random_integer_weights,
    random_planar_graph,
    star_graph,
)
from repro.matching import (
    distributed_mcm_minor_free,
    distributed_mcm_planar,
    distributed_mwm,
    greedy_weight_matching,
    is_matching,
    matching_weight,
    max_cardinality_matching,
    max_weight_matching,
)


class TestDistributedMCM:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_ratio_on_planar(self, seed):
        g = delaunay_planar_graph(70, seed=seed)
        epsilon = 0.3
        result, _fw = distributed_mcm_planar(g, epsilon, seed=seed)
        assert is_matching(g, result.matching)
        opt = len(max_cardinality_matching(g))
        assert result.size >= (1 - epsilon) * opt

    def test_ratio_on_sparse_planar(self):
        g = random_planar_graph(80, edge_fraction=0.55, seed=3)
        result, _ = distributed_mcm_planar(g, 0.3, seed=4)
        opt = len(max_cardinality_matching(g))
        assert result.size >= 0.7 * opt

    def test_star_heavy_graph(self):
        # Mostly stars: elimination does the heavy lifting.
        g = star_graph(20)
        result, _ = distributed_mcm_planar(g, 0.4, seed=0)
        assert result.size == 1

    def test_invalid_epsilon(self):
        with pytest.raises(SolverError):
            distributed_mcm_planar(grid_graph(3, 3), 1.2)

    def test_metrics_available(self):
        g = grid_graph(6, 6)
        result, fw = distributed_mcm_planar(g, 0.3, seed=1)
        assert result.metrics().total_messages > 0
        assert fw is not None


class TestDistributedMWM:
    @pytest.mark.parametrize("max_weight", [5, 50])
    def test_ratio_on_weighted_planar(self, max_weight):
        g = random_integer_weights(
            delaunay_planar_graph(50, seed=5), max_weight, seed=6
        )
        epsilon = 0.3
        result = distributed_mwm(g, epsilon, iterations=3, seed=7)
        assert is_matching(g, result.matching)
        opt = matching_weight(g, max_weight_matching(g))
        assert result.weight >= (1 - epsilon) * opt

    def test_ratio_on_ktree(self):
        g = random_integer_weights(k_tree(50, 3, seed=8), 30, seed=9)
        result = distributed_mwm(g, 0.3, iterations=3, seed=10)
        opt = matching_weight(g, max_weight_matching(g))
        assert result.weight >= 0.7 * opt

    def test_weight_monotone_across_iterations(self):
        g = random_integer_weights(grid_graph(6, 6), 20, seed=11)
        weights = []
        for iterations in (1, 2, 4):
            result = distributed_mwm(
                g, 0.3, iterations=iterations, seed=12
            )
            weights.append(result.weight)
        assert weights[0] <= weights[1] + 1e-9
        assert weights[1] <= weights[2] + 1e-9

    def test_beats_or_matches_greedy(self):
        g = random_integer_weights(delaunay_planar_graph(40, seed=13), 40, seed=14)
        result = distributed_mwm(g, 0.25, iterations=3, seed=15)
        greedy = matching_weight(g, greedy_weight_matching(g))
        assert result.weight >= greedy * 0.95

    def test_requires_integer_labels(self):
        from repro.graph import Graph

        g = Graph.from_edges([("a", "b")])
        with pytest.raises(SolverError):
            distributed_mwm(g, 0.3)

    def test_invalid_epsilon(self):
        with pytest.raises(SolverError):
            distributed_mwm(grid_graph(3, 3), 0.0)


class TestDistributedMCMMinorFree:
    def test_ratio_on_ktree(self):
        g = k_tree(40, 3, seed=20)
        result = distributed_mcm_minor_free(g, 0.3, iterations=2, seed=21)
        assert is_matching(g, result.matching)
        opt = len(max_cardinality_matching(g))
        assert result.size >= 0.7 * opt

    def test_unit_weights_used(self):
        g = k_tree(30, 2, seed=22)
        result = distributed_mcm_minor_free(g, 0.3, iterations=2, seed=23)
        assert result.weight == result.size
