"""Unit and property tests for the core Graph class."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph import Graph, edge_key


def small_graphs():
    """Hypothesis strategy: edge lists over at most 10 vertices."""
    return st.lists(
        st.tuples(st.integers(0, 9), st.integers(0, 9)).filter(
            lambda e: e[0] != e[1]
        ),
        max_size=25,
    ).map(Graph.from_edges)


class TestConstruction:
    def test_empty(self):
        g = Graph()
        assert g.n == 0
        assert g.m == 0
        assert g.vertices() == []
        assert g.edges() == []

    def test_add_edge_creates_vertices(self):
        g = Graph()
        g.add_edge(1, 2)
        assert g.n == 2
        assert g.m == 1
        assert g.has_edge(2, 1)

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add_edge(3, 3)

    def test_reweight_does_not_duplicate(self):
        g = Graph()
        g.add_edge(0, 1, 2.0)
        g.add_edge(0, 1, 5.0)
        assert g.m == 1
        assert g.weight(0, 1) == 5.0

    def test_from_weighted_edges(self):
        g = Graph.from_weighted_edges([(0, 1, 3.0), (1, 2, 4.0)])
        assert g.total_weight() == 7.0

    def test_from_edges_with_isolated_vertices(self):
        g = Graph.from_edges([(0, 1)], vertices=[0, 1, 2, 3])
        assert g.n == 4
        assert g.degree(3) == 0

    def test_copy_is_independent(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        h = g.copy()
        h.remove_edge(0, 1)
        assert g.has_edge(0, 1)
        assert not h.has_edge(0, 1)


class TestRemoval:
    def test_remove_edge(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        g.remove_edge(0, 1)
        assert g.m == 1
        assert g.n == 3

    def test_remove_missing_edge_raises(self):
        g = Graph.from_edges([(0, 1)])
        with pytest.raises(GraphError):
            g.remove_edge(0, 2)

    def test_remove_vertex_drops_incident_edges(self):
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2)])
        g.remove_vertex(1)
        assert g.n == 2
        assert g.m == 1
        assert g.has_edge(0, 2)

    def test_remove_missing_vertex_raises(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.remove_vertex(7)


class TestQueries:
    def test_degrees(self):
        g = Graph.from_edges([(0, 1), (0, 2), (0, 3)])
        assert g.degree(0) == 3
        assert g.max_degree() == 3
        assert g.min_degree() == 1
        assert g.edge_density() == pytest.approx(3 / 4)

    def test_weight_missing_edge_raises(self):
        g = Graph.from_edges([(0, 1)])
        with pytest.raises(GraphError):
            g.weight(0, 2)

    def test_neighbors_of_missing_vertex_raises(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.neighbors(0)

    def test_contains_iter_len(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        assert 0 in g
        assert 5 not in g
        assert sorted(g) == [0, 1, 2]
        assert len(g) == 3


class TestCuts:
    def test_volume_and_boundary(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])  # C4
        assert g.volume([0, 1]) == 4
        assert g.cut_size([0, 1]) == 2
        assert set(g.boundary([0, 1])) == {edge_key(1, 2), edge_key(0, 3)}

    def test_conductance_of_cut_c4(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
        assert g.conductance_of_cut([0, 1]) == pytest.approx(0.5)
        assert g.conductance_of_cut([]) == 0.0
        assert g.conductance_of_cut([0, 1, 2, 3]) == 0.0

    def test_sparsity_of_cut(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
        assert g.sparsity_of_cut([0, 1]) == pytest.approx(1.0)

    def test_cut_weight(self):
        g = Graph.from_weighted_edges([(0, 1, 2.0), (1, 2, 3.0)])
        assert g.cut_weight([1]) == pytest.approx(5.0)

    @given(small_graphs(), st.sets(st.integers(0, 9)))
    @settings(max_examples=60, deadline=None)
    def test_cut_size_symmetry(self, g, side):
        side = {v for v in side if v in g}
        complement = set(g.vertices()) - side
        assert g.cut_size(side) == g.cut_size(complement)

    @given(small_graphs())
    @settings(max_examples=60, deadline=None)
    def test_volume_totals(self, g):
        assert g.volume(g.vertices()) == 2 * g.m


class TestSubgraphs:
    def test_subgraph_induced(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 0), (2, 3)])
        sub = g.subgraph([0, 1, 2])
        assert sub.n == 3
        assert sub.m == 3

    def test_subgraph_missing_vertex_raises(self):
        g = Graph.from_edges([(0, 1)])
        with pytest.raises(GraphError):
            g.subgraph([0, 5])

    def test_edge_subgraph(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 0)])
        sub = g.edge_subgraph([(0, 1)])
        assert sub.n == 2
        assert sub.m == 1

    def test_remove_edges_keeps_vertices(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        h = g.remove_edges([(0, 1)])
        assert h.n == 3
        assert h.m == 1

    def test_relabeled(self):
        g = Graph.from_edges([("a", "b"), ("b", "c")])
        h, mapping = g.relabeled()
        assert set(mapping.values()) == {0, 1, 2}
        assert h.m == 2

    @given(small_graphs())
    @settings(max_examples=50, deadline=None)
    def test_subgraph_of_all_vertices_is_identity(self, g):
        assert g.subgraph(g.vertices()) == g


class TestTraversal:
    def test_bfs_distances_path(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3)])
        assert g.bfs_distances(0) == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_bfs_layers(self):
        g = Graph.from_edges([(0, 1), (0, 2), (1, 3)])
        layers = g.bfs_layers(0)
        assert layers[0] == [0]
        assert set(layers[1]) == {1, 2}
        assert layers[2] == [3]

    def test_connected_components(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        g.add_vertex(4)
        comps = sorted(map(sorted, g.connected_components()))
        assert comps == [[0, 1], [2, 3], [4]]

    def test_diameter(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3)])
        assert g.diameter() == 3

    def test_diameter_disconnected_raises(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        with pytest.raises(GraphError):
            g.diameter()

    def test_shortest_path(self):
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
        path = g.shortest_path(0, 3)
        assert path[0] == 0 and path[-1] == 3
        assert len(path) == 3

    def test_shortest_path_unreachable(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        assert g.shortest_path(0, 3) is None

    @given(small_graphs())
    @settings(max_examples=50, deadline=None)
    def test_components_partition_vertices(self, g):
        comps = g.connected_components()
        union = set().union(*comps) if comps else set()
        assert union == set(g.vertices())
        assert sum(len(c) for c in comps) == g.n


class TestInterop:
    def test_networkx_roundtrip(self):
        g = Graph.from_weighted_edges([(0, 1, 2.0), (1, 2, 3.0)])
        back = Graph.from_networkx(g.to_networkx())
        assert back == g

    def test_adjacency_matrix_symmetry(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        a = g.adjacency_matrix(order=[0, 1, 2])
        assert (a == a.T).all()
        assert a.sum() == 2 * g.m
