"""Edge-case tests for corners the main suites don't reach."""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.decomposition import chop_ldd, expander_decomposition
from repro.errors import DecompositionError, GraphError
from repro.generators import cycle_graph, grid_graph, path_graph
from repro.graph import Graph, edge_key


class TestGraphCorners:
    def test_remove_vertices_bulk(self):
        g = grid_graph(3, 3)
        g.remove_vertices([0, 4, 8])
        assert g.n == 6
        assert not g.has_vertex(4)

    def test_eccentricity(self):
        g = path_graph(5)
        assert g.eccentricity(0) == 4
        assert g.eccentricity(2) == 2

    def test_edge_key_mixed_types(self):
        assert edge_key("b", "a") == ("a", "b")
        assert edge_key(2, 1) == (1, 2)

    def test_equality_considers_weights(self):
        a = Graph.from_weighted_edges([(0, 1, 2.0)])
        b = Graph.from_weighted_edges([(0, 1, 3.0)])
        assert a != b

    def test_equality_non_graph(self):
        assert Graph() != "not a graph"

    def test_repr(self):
        g = Graph.from_edges([(0, 1)])
        assert repr(g) == "Graph(n=2, m=1)"

    def test_total_weight(self):
        g = Graph.from_weighted_edges([(0, 1, 2.5), (1, 2, 1.5)])
        assert g.total_weight() == 4.0

    def test_bfs_distances_missing_source(self):
        with pytest.raises(GraphError):
            Graph().bfs_distances(0)

    def test_adjacency_matrix_bad_order(self):
        g = Graph.from_edges([(0, 1)])
        with pytest.raises(GraphError):
            g.adjacency_matrix(order=[0])


class TestDecompositionCorners:
    def test_chop_invalid_depth(self):
        with pytest.raises(DecompositionError):
            chop_ldd(grid_graph(3, 3), 0.3, depth=0)

    def test_cluster_of_mapping(self):
        g = cycle_graph(8)
        dec = expander_decomposition(g, 0.5, seed=0, enforce_budget=False)
        assignment = dec.cluster_of()
        assert set(assignment) == set(g.vertices())
        for i, cluster in enumerate(dec.clusters):
            for v in cluster:
                assert assignment[v] == i

    def test_cluster_subgraph(self):
        g = grid_graph(4, 4)
        dec = expander_decomposition(g, 0.5, seed=0, enforce_budget=False)
        sub = dec.cluster_subgraph(0)
        assert set(sub.vertices()) == set(dec.clusters[0])

    def test_invalid_phi(self):
        with pytest.raises(DecompositionError):
            expander_decomposition(grid_graph(3, 3), 0.3, phi=-1.0)


class TestSimulatorCorners:
    def test_output_of(self):
        from repro.congest import CongestSimulator, VertexAlgorithm

        class Halt(VertexAlgorithm):
            def step(self, ctx, inbox):
                ctx.halt(ctx.vertex * 2)

        sim = CongestSimulator(path_graph(3), lambda v: Halt(), seed=0)
        result = sim.run(3)
        assert result.output_of(2) == 4

    def test_table_print(self, capsys):
        from repro.analysis import Table

        t = Table("title", ["c"])
        t.add_row(1)
        t.print()
        assert "title" in capsys.readouterr().out


class TestFrameworkFuzz:
    @given(
        st.lists(
            st.tuples(st.integers(0, 9), st.integers(0, 9)).filter(
                lambda e: e[0] != e[1]
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=10, deadline=None)
    def test_framework_on_arbitrary_graphs(self, edges):
        """The framework must produce covering answers (or clean
        failures) on arbitrary inputs, minor-free or not."""
        from repro.core.framework import partition_minor_free

        g = Graph.from_edges(edges)
        assume(g.n >= 2)
        result = partition_minor_free(
            g, 0.4, seed=0, enforce_budget=False,
            solver=lambda sub, leader, notes: {
                v: sub.degree(v) for v in sub.vertices()
            },
        )
        covered = set()
        for run in result.clusters:
            covered |= run.vertices
            if run.gather.success:
                for v in run.vertices:
                    assert result.answers[v] == g.subgraph(
                        run.vertices
                    ).degree(v)
        assert covered == set(g.vertices())
