"""Suite journal: resumable runs with byte-identical merged tables.

The contract (see :mod:`repro.runner.journal`): a suite run killed
mid-flight leaves a write-ahead journal whose replay plus the remaining
cells produces exactly the table the uninterrupted run would have.
Mangled *records* never abort a resume (they are counted and
recomputed; mismatched journals are discarded) — but a mangled
*header* refuses an explicit resume loudly, because a journal that
cannot prove its identity could silently replay the wrong run.
"""

import base64
import json
import os
import pickle
import shutil
import subprocess
import sys
import textwrap

import pytest

from repro.errors import JournalError
from repro.runner import (
    JOURNAL_SCHEMA_VERSION,
    SuiteJournal,
    default_journal_path,
    run_fingerprint,
    run_suite,
)

SUITE = "CHAOS"  # hidden suite; all cells healthy without REPRO_CHAOS_DIR
LIMIT = 4

FIXTURES = os.path.join(os.path.dirname(__file__), "data")


def _fingerprint():
    return run_fingerprint(SUITE, LIMIT, trace=False, telemetry=False)


def _run(journal=None, resume=False, jobs=1):
    return run_suite(
        SUITE, jobs=jobs, use_cache=False, limit=LIMIT,
        journal=journal, resume=resume,
    )


def _truncate_to(path, keep_lines):
    with open(path) as handle:
        lines = handle.read().splitlines()
    with open(path, "w") as handle:
        handle.write("\n".join(lines[:keep_lines]) + "\n")
    return lines


def test_journal_records_every_cell(tmp_path):
    journal = str(tmp_path / "chaos.jsonl")
    run = _run(journal=journal)
    assert run.journal_path == journal
    assert run.replayed_cells() == 0
    with open(journal) as handle:
        lines = [json.loads(line) for line in handle]
    assert lines[0]["kind"] == "header"
    assert lines[0]["schema"] == JOURNAL_SCHEMA_VERSION
    assert lines[0]["fingerprint"] == _fingerprint()
    assert [r["index"] for r in lines[1:]] == [0, 1, 2, 3]


def test_interrupted_run_resumes_byte_identically(tmp_path):
    baseline = _run().render_table()
    journal = str(tmp_path / "chaos.jsonl")
    _run(journal=journal)
    _truncate_to(journal, 3)  # header + 2 cells: "killed" after cell 1

    resumed = _run(journal=journal, resume=True)
    assert resumed.replayed_cells() == 2
    assert resumed.render_table() == baseline
    # The resume appended the recomputed cells, so a second resume
    # replays everything.
    again = _run(journal=journal, resume=True)
    assert again.replayed_cells() == LIMIT
    assert again.render_table() == baseline


def test_parallel_resume_matches_serial(tmp_path):
    baseline = _run().render_table()
    journal = str(tmp_path / "chaos.jsonl")
    _run(journal=journal)
    _truncate_to(journal, 2)

    resumed = _run(journal=journal, resume=True, jobs=2)
    assert resumed.replayed_cells() == 1
    assert resumed.render_table() == baseline


def test_corrupt_records_are_recomputed_not_fatal(tmp_path):
    baseline = _run().render_table()
    journal = str(tmp_path / "chaos.jsonl")
    _run(journal=journal)
    lines = _truncate_to(journal, 5)
    # Mangle cell 1 three different ways across three resumes: torn
    # JSON, bad base64, and a payload that unpickles to garbage.
    torn = lines[2][: len(lines[2]) // 2]
    bad_b64 = json.dumps(
        {"kind": "cell", "index": 1, "payload": "!!not-base64!!"}
    )
    not_a_result = json.dumps({
        "kind": "cell", "index": 1,
        "payload": base64.b64encode(pickle.dumps("just a string"))
        .decode("ascii"),
    })
    for bad_line in (torn, bad_b64, not_a_result):
        with open(journal, "w") as handle:
            handle.write("\n".join([lines[0], lines[1], bad_line]) + "\n")
        resumed = _run(journal=journal, resume=True)
        assert resumed.journal_corrupt_lines == 1
        assert resumed.replayed_cells() == 1  # cell 0 survived
        assert resumed.render_table() == baseline


def test_mismatched_header_discards_journal(tmp_path):
    journal = str(tmp_path / "chaos.jsonl")
    _run(journal=journal)
    # A different limit is a different run shape: nothing is replayed.
    resumed = run_suite(SUITE, use_cache=False, limit=2,
                        journal=journal, resume=True)
    assert resumed.replayed_cells() == 0
    # And the journal was rewritten for the new shape.
    with open(journal) as handle:
        header = json.loads(handle.readline())
    assert header["fingerprint"]["limit"] == 2


def test_missing_journal_starts_fresh(tmp_path):
    journal = str(tmp_path / "chaos.jsonl")
    resumed = _run(journal=journal, resume=True)  # nothing to resume
    assert resumed.replayed_cells() == 0


def test_corrupt_header_refuses_resume_loudly(tmp_path):
    """An unreadable header means the journal cannot prove its identity.

    Resuming from it could silently merge the wrong run, so the
    explicit ``resume=True`` path raises :class:`JournalError` instead
    of guessing (exit code 2 at the CLI, pinned in test_cli.py) —
    unlike a *parseable* header with a mismatched fingerprint, which
    starts fresh because the caller asked for a different experiment.
    """
    journal = str(tmp_path / "chaos.jsonl")
    with open(journal, "w") as handle:
        handle.write("complete garbage\n")
    with pytest.raises(JournalError):
        _run(journal=journal, resume=True)

    # A header whose checksum no longer verifies is just as untrusted.
    _run(journal=journal, resume=False)
    with open(journal) as handle:
        lines = handle.read().splitlines()
    header = json.loads(lines[0])
    assert "cs" in header
    header["fingerprint"]["suite"] = "TAMPERED"  # cs now stale
    lines[0] = json.dumps(header, sort_keys=True)
    with open(journal, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    with pytest.raises(JournalError):
        _run(journal=journal, resume=True)

    # Without --resume the same file is simply truncated and rewritten.
    fresh = _run(journal=journal, resume=False)
    assert fresh.replayed_cells() == 0


def test_prepr10_unsealed_journal_still_replays(tmp_path):
    """A journal written before records carried ``"cs"`` checksums must
    keep resuming.  The fixture is a real journaled E10 run with every
    checksum stripped — the exact on-disk layout that predates the
    storage layer — so this pins the legacy-read path end to end:
    header accepted, cells unpickled, nothing counted as corrupt."""
    fixture = os.path.join(FIXTURES, "journal_prepr10.jsonl")
    journal = str(tmp_path / "legacy.jsonl")
    shutil.copy(fixture, journal)
    # The embedded salt belongs to the code that wrote the fixture, so
    # resume against the fixture's own fingerprint (a live resume of a
    # stale-salt journal would correctly start fresh instead).
    with open(fixture) as handle:
        header = json.loads(handle.readline())
    assert "cs" not in header  # genuinely pre-sealing
    with SuiteJournal.open(journal, header["fingerprint"]) as wal:
        assert not wal.fresh
        assert wal.corrupt_lines == 0
        assert sorted(wal.completed) == [0, 1]
        for result in wal.completed.values():
            assert result.replayed
            assert result.rows  # the payload unpickled into real rows


def test_resume_false_discards_prior_journal(tmp_path):
    journal = str(tmp_path / "chaos.jsonl")
    _run(journal=journal)
    fresh = _run(journal=journal, resume=False)
    assert fresh.replayed_cells() == 0
    with open(journal) as handle:
        lines = handle.read().splitlines()
    assert len(lines) == 1 + LIMIT  # rewritten, not appended to


def test_default_journal_path_under_cache_root(tmp_path):
    path = default_journal_path("E10", str(tmp_path))
    assert path == str(tmp_path / "journals" / "E10.jsonl")
    run = run_suite(SUITE, use_cache=False, limit=2,
                    cache_root=str(tmp_path), resume=True)
    assert run.journal_path == str(tmp_path / "journals" / "CHAOS.jsonl")
    assert os.path.exists(run.journal_path)


def test_journal_replay_filters_out_of_grid_cells(tmp_path):
    """Cells journaled beyond the current --limit stay out of the
    table (and out of the replay count)."""
    journal = str(tmp_path / "chaos.jsonl")
    fingerprint = _fingerprint()
    with SuiteJournal.open(journal, fingerprint) as wal:
        full = _run()
        for result in full.results:
            wal.record(result)
    # Same fingerprint, so the journal is reusable; but only cells in
    # the grid participate.
    resumed = _run(journal=journal, resume=True)
    assert resumed.replayed_cells() == LIMIT
    assert resumed.render_table() == full.render_table()


def test_sigkill_mid_suite_then_resume(tmp_path):
    """The real thing: SIGKILL a journaled run, resume, diff tables.

    The child kills itself (via a cell hook) after the journal has two
    cells; the parent then resumes from the journal on disk and must
    reproduce the uninterrupted table exactly.
    """
    journal = str(tmp_path / "chaos.jsonl")
    script = textwrap.dedent(f"""
        import os, signal
        from repro.runner import journal as journal_mod, run_suite

        real_record = journal_mod.SuiteJournal.record
        def record_then_die(self, result):
            real_record(self, result)
            if result.index == 1:
                os.kill(os.getpid(), signal.SIGKILL)
        journal_mod.SuiteJournal.record = record_then_die
        run_suite({SUITE!r}, use_cache=False, limit={LIMIT},
                  journal={journal!r})
    """)
    proc = subprocess.run(
        [sys.executable, "-c", script],
        env={**os.environ,
             "PYTHONPATH": os.pathsep.join(sys.path)},
        capture_output=True,
    )
    assert proc.returncode == -9  # died to SIGKILL mid-suite

    baseline = _run().render_table()
    resumed = _run(journal=journal, resume=True)
    assert resumed.replayed_cells() == 2
    assert resumed.render_table() == baseline
