"""Tests for greedy/local-search matching and star-elimination preprocessing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators import (
    delaunay_planar_graph,
    gnp_random_graph,
    grid_graph,
    random_integer_weights,
    star_graph,
)
from repro.graph import Graph
from repro.matching import (
    eliminate_stars,
    greedy_weight_matching,
    is_matching,
    local_search_mwm,
    matching_weight,
    max_cardinality_matching,
    max_weight_matching,
    maximal_matching,
)


def weighted_graphs():
    return st.lists(
        st.tuples(
            st.integers(0, 9), st.integers(0, 9), st.integers(1, 10)
        ).filter(lambda e: e[0] != e[1]),
        max_size=20,
    ).map(
        lambda edges: Graph.from_weighted_edges(
            [(u, v, float(w)) for u, v, w in edges]
        )
    )


class TestGreedy:
    @given(weighted_graphs())
    @settings(max_examples=50, deadline=None)
    def test_half_approximation(self, g):
        greedy = greedy_weight_matching(g)
        assert is_matching(g, greedy)
        opt = matching_weight(g, max_weight_matching(g))
        assert matching_weight(g, greedy) >= opt / 2 - 1e-9

    @given(weighted_graphs())
    @settings(max_examples=50, deadline=None)
    def test_maximal_matching_is_maximal(self, g):
        m = maximal_matching(g, seed=0)
        assert is_matching(g, m)
        covered = {v for e in m for v in e}
        for u, v in g.edges():
            assert u in covered or v in covered


class TestLocalSearch:
    @given(weighted_graphs())
    @settings(max_examples=25, deadline=None)
    def test_validity_and_ratio(self, g):
        m = local_search_mwm(g, epsilon=0.34)
        assert is_matching(g, m)
        opt = matching_weight(g, max_weight_matching(g))
        if opt > 0:
            assert matching_weight(g, m) >= (1 - 0.34) * opt - 1e-9

    def test_tighter_epsilon_not_worse(self):
        g = random_integer_weights(grid_graph(5, 5), 10, seed=1)
        loose = matching_weight(g, local_search_mwm(g, epsilon=0.5))
        tight = matching_weight(g, local_search_mwm(g, epsilon=0.2))
        assert tight >= loose - 1e-9

    def test_planar_ratio(self):
        g = random_integer_weights(delaunay_planar_graph(50, seed=2), 20, seed=3)
        m = local_search_mwm(g, epsilon=0.25)
        opt = matching_weight(g, max_weight_matching(g))
        assert matching_weight(g, m) >= 0.75 * opt


class TestStarElimination:
    def test_star_collapses(self):
        g = star_graph(8)
        reduced, removed = eliminate_stars(g)
        assert reduced.n == 2
        assert len(removed) == 7

    def test_double_star_keeps_two_satellites(self):
        # K_{2,5}: five degree-2 satellites over the pair (0, 1).
        g = Graph()
        for s in range(2, 7):
            g.add_edge(0, s)
            g.add_edge(1, s)
        reduced, removed = eliminate_stars(g)
        satellites = [v for v in reduced.vertices() if v >= 2]
        assert len(satellites) == 2
        assert len(removed) == 3

    def test_matching_size_preserved(self):
        for seed in range(5):
            g = gnp_random_graph(14, 0.15, seed=seed)
            reduced, _ = eliminate_stars(g)
            before = len(max_cardinality_matching(g))
            after = len(max_cardinality_matching(reduced))
            assert before == after

    def test_isolated_vertices_removed(self):
        g = Graph.from_edges([(0, 1)], vertices=[0, 1, 2])
        reduced, removed = eliminate_stars(g)
        assert 2 in removed

    def test_lemma_3_1_linearity_on_planar(self):
        """After elimination, MCM = Omega(n) on planar instances."""
        for seed in range(3):
            g = delaunay_planar_graph(80, seed=seed)
            # Attach lots of pendant vertices to stress the lemma.
            next_id = 80
            for v in range(0, 40, 2):
                for _ in range(3):
                    g.add_edge(v, next_id)
                    next_id += 1
            reduced, _ = eliminate_stars(g)
            if reduced.n == 0:
                continue
            mcm = len(max_cardinality_matching(reduced))
            assert mcm >= reduced.n / 8

    def test_fixed_point(self):
        g = star_graph(5)
        reduced, _ = eliminate_stars(g)
        again, removed = eliminate_stars(reduced)
        assert not removed
        assert again == reduced
