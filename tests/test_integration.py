"""End-to-end integration scenarios across the whole stack."""

import pytest

from repro.correlation import distributed_correlation_clustering
from repro.decomposition import theorem_1_5_ldd, verify_ldd
from repro.generators import (
    delaunay_planar_graph,
    planted_signs,
    random_integer_weights,
)
from repro.independent_set import distributed_maxis, exact_maxis
from repro.matching import (
    distributed_mcm_planar,
    distributed_mwm,
    is_matching,
    matching_weight,
    max_cardinality_matching,
    max_weight_matching,
)
from repro.property_testing import PLANARITY, distributed_property_test


class TestOneNetworkAllTheorems:
    """Every theorem's algorithm on the same planar network."""

    @pytest.fixture(scope="class")
    def network(self):
        return delaunay_planar_graph(64, seed=2022)

    def test_theorem_1_2_maxis(self, network):
        result = distributed_maxis(network, 0.3, seed=1)
        assert result.size >= 0.7 * len(exact_maxis(network))

    def test_theorem_3_2_mcm(self, network):
        result, _ = distributed_mcm_planar(network, 0.3, seed=2)
        assert is_matching(network, result.matching)
        assert result.size >= 0.7 * len(max_cardinality_matching(network))

    def test_theorem_1_1_mwm(self, network):
        weighted = random_integer_weights(network, 100, seed=3)
        result = distributed_mwm(weighted, 0.3, iterations=3, seed=4)
        opt = matching_weight(weighted, max_weight_matching(weighted))
        assert result.weight >= 0.7 * opt

    def test_theorem_1_3_correlation(self, network):
        signs, _ = planted_signs(network, 2, noise=0.1, seed=5)
        result = distributed_correlation_clustering(network, signs, 0.3, seed=6)
        assert result.score >= 0.7 * network.m / 2

    def test_theorem_1_4_property(self, network):
        result = distributed_property_test(network, PLANARITY, 0.2, seed=7)
        assert result.accepted

    def test_theorem_1_5_ldd(self, network):
        ldd = theorem_1_5_ldd(network, 0.4, seed=8)
        report = verify_ldd(ldd)
        assert report["cut_fraction"] <= 0.4


class TestDeterminism:
    """The whole pipeline is reproducible from one seed."""

    def test_maxis_pipeline_deterministic(self):
        g = delaunay_planar_graph(50, seed=9)
        a = distributed_maxis(g, 0.3, seed=77)
        b = distributed_maxis(g, 0.3, seed=77)
        assert a.independent_set == b.independent_set
        assert (
            a.framework.metrics.summary() == b.framework.metrics.summary()
        )

    def test_mwm_pipeline_deterministic(self):
        g = random_integer_weights(delaunay_planar_graph(40, seed=10), 20, seed=11)
        a = distributed_mwm(g, 0.3, iterations=2, seed=78)
        b = distributed_mwm(g, 0.3, iterations=2, seed=78)
        assert a.matching == b.matching

    def test_different_seeds_may_differ_but_stay_valid(self):
        g = delaunay_planar_graph(50, seed=12)
        for seed in range(3):
            result = distributed_maxis(g, 0.3, seed=seed)
            s = result.independent_set
            assert all(
                not (u in s and v in s) for u, v in g.edges()
            )


class TestCongestAccountingConsistency:
    def test_bits_consistent_with_messages(self):
        from repro.core.framework import run_framework

        g = delaunay_planar_graph(40, seed=13)
        result = run_framework(
            g, 0.3,
            solver=lambda sub, leader, notes: {
                v: 0 for v in sub.vertices()
            },
            seed=14,
        )
        m = result.metrics
        assert m.total_bits >= m.total_messages  # every message >= 1 bit
        assert m.total_bits <= m.total_messages * m.max_message_bits
        assert m.effective_rounds >= m.rounds
