"""Tests for the distributed property tester (Theorem 1.4)."""

import pytest

from repro.errors import SolverError
from repro.generators import (
    complete_graph,
    cycle_graph,
    delaunay_planar_graph,
    gnp_random_graph,
    grid_graph,
    maximal_outerplanar_graph,
    random_tree,
    series_parallel_graph,
)
from repro.graph import Graph
from repro.property_testing import (
    FOREST,
    OUTERPLANAR,
    PLANARITY,
    SERIES_PARALLEL,
    distributed_property_test,
)


def disjoint_copies(pattern: Graph, copies: int) -> Graph:
    g = Graph()
    offset = 0
    size = pattern.n
    for _ in range(copies):
        for v in pattern.vertices():
            g.add_vertex(v + offset)
        for u, v in pattern.edges():
            g.add_edge(u + offset, v + offset)
        offset += size
    return g


class TestCompleteness:
    """Graphs *in* the property are always accepted (one-sided error)."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_planar_accepted(self, seed):
        g = delaunay_planar_graph(80, seed=seed)
        result = distributed_property_test(g, PLANARITY, 0.2, seed=seed)
        assert result.accepted
        assert all(result.verdicts.values())

    def test_forest_accepted(self):
        g = random_tree(60, seed=3)
        result = distributed_property_test(g, FOREST, 0.2, seed=4)
        assert result.accepted

    def test_series_parallel_accepted(self):
        g = series_parallel_graph(50, seed=5)
        result = distributed_property_test(g, SERIES_PARALLEL, 0.25, seed=6)
        assert result.accepted

    def test_outerplanar_accepted(self):
        g = maximal_outerplanar_graph(40, seed=7)
        result = distributed_property_test(g, OUTERPLANAR, 0.25, seed=8)
        assert result.accepted


class TestSoundness:
    """Graphs epsilon-far from the property are rejected."""

    def test_disjoint_k6s_rejected_for_planarity(self):
        # k disjoint K_6 components are 1/15-far from planar: each K6
        # needs at least one edge change.
        g = disjoint_copies(complete_graph(6), 10)
        result = distributed_property_test(g, PLANARITY, 0.05, seed=0)
        assert not result.accepted

    def test_disjoint_triangles_rejected_for_forest(self):
        g = disjoint_copies(complete_graph(3), 15)
        result = distributed_property_test(g, FOREST, 0.2, seed=1)
        assert not result.accepted

    def test_disjoint_k4s_rejected_for_series_parallel(self):
        g = disjoint_copies(complete_graph(4), 12)
        result = distributed_property_test(g, SERIES_PARALLEL, 0.1, seed=2)
        assert not result.accepted

    def test_dense_random_graph_rejected_for_planarity(self):
        g = gnp_random_graph(40, 0.5, seed=3)
        result = distributed_property_test(g, PLANARITY, 0.1, seed=4)
        assert not result.accepted

    def test_rejection_is_localized(self):
        # Planar component + K6 component: some vertex must reject;
        # the K6 vertices are among the rejecters.
        g = disjoint_copies(complete_graph(6), 4)
        base = delaunay_planar_graph(40, seed=5)
        for v in base.vertices():
            g.add_vertex(v + 1000)
        for u, v in base.edges():
            g.add_edge(u + 1000, v + 1000)
        result = distributed_property_test(g, PLANARITY, 0.05, seed=6)
        assert not result.accepted
        rejecters = {v for v, ok in result.verdicts.items() if not ok}
        assert any(v < 1000 for v in rejecters)


class TestMechanics:
    def test_invalid_epsilon(self):
        with pytest.raises(SolverError):
            distributed_property_test(cycle_graph(4), PLANARITY, 0.0)

    def test_cluster_verdicts_recorded(self):
        g = grid_graph(5, 5)
        result = distributed_property_test(g, PLANARITY, 0.3, seed=7)
        assert result.cluster_verdicts
        assert all(
            verdict.startswith(("accept", "reject"))
            for verdict in result.cluster_verdicts.values()
        )

    def test_property_repr(self):
        assert "planar" in repr(PLANARITY)
        assert PLANARITY.forbidden_clique == 5
        assert FOREST.forbidden_clique == 3
