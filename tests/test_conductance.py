"""Tests for conductance machinery: exact, Cheeger bounds, sweep cuts."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SolverError
from repro.generators import (
    complete_graph,
    cycle_graph,
    gnp_random_graph,
    grid_graph,
    hypercube_graph,
    path_graph,
)
from repro.graph import Graph
from repro.spectral import (
    cheeger_bounds,
    conductance_lower_bound,
    exact_conductance,
    normalized_laplacian,
    spectral_gap,
    sweep_cut,
)


class TestExactConductance:
    def test_single_edge(self):
        g = Graph.from_edges([(0, 1)])
        phi, cut = exact_conductance(g)
        assert phi == pytest.approx(1.0)

    def test_path_of_four(self):
        g = path_graph(4)
        phi, cut = exact_conductance(g)
        # Cutting the middle edge: 1 crossing / vol 3.
        assert phi == pytest.approx(1 / 3)

    def test_cycle(self):
        g = cycle_graph(8)
        phi, _ = exact_conductance(g)
        assert phi == pytest.approx(2 / 8)

    def test_complete_graph_high_conductance(self):
        g = complete_graph(6)
        phi, _ = exact_conductance(g)
        assert phi > 0.5

    def test_disconnected_zero(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        phi, _ = exact_conductance(g)
        assert phi == 0.0

    def test_size_limit(self):
        with pytest.raises(SolverError):
            exact_conductance(grid_graph(5, 5))


class TestSpectral:
    def test_laplacian_eigenvalue_range(self):
        g = grid_graph(4, 4)
        import numpy as np

        eig = np.linalg.eigvalsh(normalized_laplacian(g))
        assert eig[0] == pytest.approx(0.0, abs=1e-8)
        assert eig[-1] <= 2.0 + 1e-8

    def test_gap_zero_iff_disconnected(self):
        connected = cycle_graph(6)
        disconnected = Graph.from_edges([(0, 1), (2, 3)])
        assert spectral_gap(connected) > 1e-6
        assert spectral_gap(disconnected) == pytest.approx(0.0, abs=1e-8)

    def test_complete_graph_gap(self):
        # lambda_2 of K_n's normalized Laplacian is n/(n-1).
        g = complete_graph(8)
        assert spectral_gap(g) == pytest.approx(8 / 7, abs=1e-8)

    @pytest.mark.parametrize(
        "graph",
        [cycle_graph(10), grid_graph(4, 4), complete_graph(7), hypercube_graph(3)],
        ids=["cycle", "grid", "complete", "cube"],
    )
    def test_cheeger_sandwich(self, graph):
        # Only graphs small enough for the exact solver.
        if graph.n > 18:
            pytest.skip("too large for exact check")
        low, high = cheeger_bounds(graph)
        phi, _ = exact_conductance(graph)
        assert low - 1e-9 <= phi <= high + 1e-9

    def test_lower_bound_is_valid(self):
        rnd = random.Random(0)
        for _ in range(20):
            g = gnp_random_graph(rnd.randint(4, 12), 0.5, seed=rnd.getrandbits(32))
            if not g.is_connected() or g.m == 0:
                continue
            lower = conductance_lower_bound(g)
            phi, _ = exact_conductance(g)
            assert lower <= phi + 1e-9


class TestSweepCut:
    def test_sweep_cut_within_cheeger(self):
        g = grid_graph(5, 5)
        value, cut = sweep_cut(g)
        _, high = cheeger_bounds(g)
        assert 0 < len(cut) < g.n
        assert value <= high + 1e-9
        assert value == pytest.approx(g.conductance_of_cut(cut))

    def test_sweep_cut_matches_exact_on_barbell(self):
        # Two triangles joined by one edge: the bridge is the min cut.
        g = Graph.from_edges(
            [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]
        )
        value, cut = sweep_cut(g)
        phi, _ = exact_conductance(g)
        assert value == pytest.approx(phi)

    def test_balanced_sweep_is_balanced(self):
        g = grid_graph(6, 6)
        _, cut = sweep_cut(g, balanced=True)
        assert min(len(cut), g.n - len(cut)) * 3 >= g.n

    def test_randomized_sweep_respects_slack(self):
        g = grid_graph(6, 6)
        best, _ = sweep_cut(g)
        rng = random.Random(5)
        for _ in range(10):
            value, cut = sweep_cut(g, rng=rng, slack=1.5)
            assert value <= 1.5 * best + 1e-9

    def test_randomized_sweep_varies(self):
        g = grid_graph(8, 8)
        rng = random.Random(1)
        cuts = {frozenset(sweep_cut(g, rng=rng, slack=2.0)[1]) for _ in range(12)}
        assert len(cuts) > 1
