"""Tests for BFS-tree aggregation primitives."""

import pytest

from repro.errors import GraphError
from repro.generators import (
    cycle_graph,
    delaunay_planar_graph,
    grid_graph,
    path_graph,
    random_tree,
    star_graph,
)
from repro.graph import Graph
from repro.routing import cluster_statistics, tree_aggregate


class TestTreeAggregate:
    @pytest.mark.parametrize(
        "make",
        [
            lambda: path_graph(9),
            lambda: cycle_graph(12),
            lambda: grid_graph(5, 5),
            lambda: star_graph(8),
            lambda: random_tree(30, seed=1),
            lambda: delaunay_planar_graph(50, seed=2),
        ],
        ids=["path", "cycle", "grid", "star", "tree", "delaunay"],
    )
    def test_sum_of_ids(self, make):
        g = make()
        root = g.vertices()[0]
        values = {v: v + 1 for v in g.vertices()}
        total, result = tree_aggregate(g, root, values, aggregate="sum")
        assert total == sum(values.values())
        # Every vertex learned the total (broadcast phase).
        assert set(result.outputs.values()) == {total}

    def test_count(self):
        g = grid_graph(4, 4)
        total, _ = tree_aggregate(
            g, 0, {v: 1 for v in g.vertices()}, aggregate="count"
        )
        assert total == g.n

    def test_max(self):
        g = cycle_graph(9)
        total, _ = tree_aggregate(
            g, 3, {v: v * 2 for v in g.vertices()}, aggregate="max"
        )
        assert total == 16

    def test_missing_values_default_zero(self):
        g = path_graph(4)
        total, _ = tree_aggregate(g, 0, {0: 5}, aggregate="sum")
        assert total == 5

    def test_single_vertex(self):
        g = Graph()
        g.add_vertex(7)
        total, _ = tree_aggregate(g, 7, {7: 3})
        assert total == 3

    def test_unknown_aggregate(self):
        with pytest.raises(GraphError):
            tree_aggregate(path_graph(3), 0, {}, aggregate="median")

    def test_disconnected_rejected(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        with pytest.raises(GraphError):
            tree_aggregate(g, 0, {})

    def test_missing_root_rejected(self):
        with pytest.raises(GraphError):
            tree_aggregate(path_graph(3), 99, {})

    def test_rounds_linear_in_diameter(self):
        g = path_graph(20)
        _, result = tree_aggregate(g, 0, {v: 1 for v in g.vertices()})
        assert result.metrics.rounds <= 3 * (g.diameter() + 1) + 8
        # Capacity-1 protocol: strict CONGEST congestion.
        assert result.metrics.max_edge_congestion <= 2


class TestClusterStatistics:
    def test_learns_n_and_m(self):
        g = delaunay_planar_graph(40, seed=3)
        leader = max(g.vertices(), key=g.degree)
        n, m, _result = cluster_statistics(g, leader, seed=4)
        assert n == g.n
        assert m == g.m

    def test_degree_condition_checkable_in_network(self):
        """The §2.3 claim: Lemma 2.3's condition from in-network data."""
        from repro.core.failure import DEGREE_CONDITION_CONSTANT

        g = delaunay_planar_graph(50, seed=5)
        leader = max(g.vertices(), key=g.degree)
        phi = 0.05
        _n, m, _ = cluster_statistics(g, leader, seed=6)
        in_network_verdict = (
            g.degree(leader) >= DEGREE_CONDITION_CONSTANT * phi * phi * m
        )
        from repro.core.failure import degree_condition_holds

        assert in_network_verdict == degree_condition_holds(g, phi)
