"""Tests for lazy random walks and mixing times."""

import numpy as np
import pytest

from repro.errors import GraphError, SolverError
from repro.generators import complete_graph, cycle_graph, grid_graph, path_graph
from repro.graph import Graph
from repro.spectral import (
    lazy_walk_matrix,
    mixing_time_bound,
    mixing_time_exact,
    simulate_lazy_walk,
    stationary_distribution,
)
from repro.spectral.random_walk import hitting_fraction


class TestWalkMatrix:
    def test_columns_are_distributions(self):
        g = grid_graph(3, 3)
        p = lazy_walk_matrix(g)
        assert np.allclose(p.sum(axis=0), 1.0)
        assert (p >= 0).all()

    def test_laziness_on_diagonal(self):
        g = cycle_graph(5)
        p = lazy_walk_matrix(g)
        assert np.allclose(np.diag(p), 0.5)

    def test_stationary_is_fixed_point(self):
        g = grid_graph(3, 4)
        p = lazy_walk_matrix(g)
        pi = stationary_distribution(g)
        assert np.allclose(p @ pi, pi)
        assert pi.sum() == pytest.approx(1.0)

    def test_isolated_vertex_rejected(self):
        g = Graph.from_edges([(0, 1)])
        g.add_vertex(2)
        with pytest.raises(GraphError):
            lazy_walk_matrix(g)


class TestMixingTime:
    def test_complete_graph_mixes_fast(self):
        assert mixing_time_exact(complete_graph(8)) <= 25

    def test_path_mixes_slower_than_clique(self):
        clique = mixing_time_exact(complete_graph(8))
        path = mixing_time_exact(path_graph(8))
        assert path > clique

    def test_exact_definition_holds_at_tau(self):
        g = cycle_graph(6)
        tau = mixing_time_exact(g)
        p = lazy_walk_matrix(g)
        pi = stationary_distribution(g)
        state = np.linalg.matrix_power(p, tau)
        assert np.all(np.abs(state - pi[:, None]) <= pi[:, None] / g.n + 1e-12)
        # And it is the *minimum* such t.
        state_prev = np.linalg.matrix_power(p, tau - 1)
        assert not np.all(
            np.abs(state_prev - pi[:, None]) <= pi[:, None] / g.n + 1e-12
        )

    def test_disconnected_rejected(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        with pytest.raises(GraphError):
            mixing_time_exact(g)

    def test_bound_dominates_exact(self):
        for g in (cycle_graph(8), grid_graph(3, 3), complete_graph(6)):
            assert mixing_time_bound(g) >= mixing_time_exact(g)

    def test_bound_infinite_when_disconnected(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        assert mixing_time_bound(g) == float("inf")


class TestSimulation:
    def test_walk_length_and_validity(self):
        g = grid_graph(4, 4)
        path = simulate_lazy_walk(g, 0, 50, seed=1)
        assert len(path) == 51
        for a, b in zip(path, path[1:]):
            assert a == b or g.has_edge(a, b)

    def test_walk_deterministic_by_seed(self):
        g = grid_graph(4, 4)
        assert simulate_lazy_walk(g, 0, 30, seed=9) == simulate_lazy_walk(
            g, 0, 30, seed=9
        )

    def test_missing_start_rejected(self):
        with pytest.raises(GraphError):
            simulate_lazy_walk(grid_graph(2, 2), 99, 5)

    def test_hitting_fraction_increases_with_length(self):
        g = grid_graph(5, 5)
        target = 12  # center vertex
        short = hitting_fraction(g, target, 5, trials=80, seed=2)
        long = hitting_fraction(g, target, 300, trials=80, seed=2)
        assert long >= short
        assert long > 0.9
