"""Deterministic fault injection: plan semantics + engine equivalence.

Two things are pinned here.  First, the :class:`FaultPlan` /
:class:`FaultInjector` contract itself: validation, serialization,
and the keyed-hash determinism that makes every fault decision a pure
function of (seed, send round, edge, sequence number).  Second — the
load-bearing guarantee — *faulted* runs stay bit-identical between the
fast and reference engines for the same algorithm families the
fault-free differential harness covers, and an *empty* plan changes
nothing at all.
"""

import pytest

from repro.congest import (
    CongestSimulator,
    CorruptedPayload,
    EdgeWindow,
    FaultPlan,
    LinkFailure,
    PartitionWindow,
    TraceRecorder,
    VertexAlgorithm,
    active_fault_plan,
    message_bits,
    use_engine,
    use_faults,
)
from repro.congest.faults import DELIVER, FaultInjector
from repro.decomposition.mpx import mpx_ldd
from repro.errors import CrashedVertexError, FaultError
from repro.generators import (
    gnp_random_graph,
    path_graph,
)
from tests.conftest import delaunay_or_skip as delaunay_planar_graph
from repro.routing.leader import elect_leader

SEEDS = (11, 29, 47)

#: A plan exercising all three message-fault kinds at once.
MESSAGE_PLAN = FaultPlan(seed=7, drop=0.08, duplicate=0.05, corrupt=0.04)


def _metrics_fingerprint(metrics):
    return (
        metrics.summary(),
        metrics.fault_summary(),
        metrics.messages_per_round,
    )


class Flood(VertexAlgorithm):
    """Max-ID flooding with a round budget (pure simulator workload)."""

    def __init__(self, budget):
        self.budget = budget
        self.best = None

    def initialize(self, ctx):
        self.best = ctx.vertex
        ctx.broadcast(self.best)

    def step(self, ctx, inbox):
        for payloads in inbox.values():
            for value in payloads:
                # A corrupted payload is not an ID; a real algorithm
                # must survive seeing one on the wire.
                if isinstance(value, CorruptedPayload):
                    continue
                if value > self.best:
                    self.best = value
                    ctx.broadcast(self.best)
        if ctx.round_number >= self.budget:
            ctx.halt(self.best)


# ----------------------------------------------------------------------
# FaultPlan semantics
# ----------------------------------------------------------------------


def test_empty_plan_compiles_to_nothing():
    assert FaultPlan().is_empty()
    assert FaultPlan().compile() is None
    assert FaultPlan(seed=99).is_empty()  # a seed alone injects nothing
    assert not MESSAGE_PLAN.is_empty()
    assert MESSAGE_PLAN.compile() is not None


@pytest.mark.parametrize(
    "kwargs",
    [
        {"drop": -0.1},
        {"duplicate": 1.5},
        {"corrupt": 2.0},
        {"drop": 0.6, "duplicate": 0.5},
    ],
)
def test_invalid_rates_rejected(kwargs):
    with pytest.raises(FaultError):
        FaultPlan(**kwargs)


def test_invalid_link_window_rejected():
    with pytest.raises(FaultError):
        LinkFailure(0, 1, start=5, end=2)


def test_plan_roundtrips_through_dict():
    plan = FaultPlan(
        seed=3,
        drop=0.1,
        link_failures=((0, 1, 2, 5),),
        crashes=((4, 7),),
    )
    assert FaultPlan.from_dict(plan.to_dict()) == plan


def _random_plan(rng):
    """One structurally valid plan drawn from the full parameter space."""
    rates = {}
    for rate in ("drop", "duplicate", "corrupt"):
        if rng.random() < 0.6:
            rates[rate] = round(rng.uniform(0.0, 0.4), 3)
    link_failures = tuple(
        (rng.randrange(30), rng.randrange(30), start, start + rng.randrange(12))
        for start in (rng.randrange(20) for _ in range(rng.randrange(4)))
    )
    crashes = tuple(
        (rng.randrange(30), rng.randrange(1, 20))
        for _ in range(rng.randrange(4))
    )
    # Each rejoin targets a crashed vertex, strictly after its crash.
    rejoins = tuple(
        (v, r + 1 + rng.randrange(10))
        for v, r in rng.sample(crashes, k=rng.randrange(len(crashes) + 1))
    )
    interval = rng.randrange(1, 6) if rejoins or rng.random() < 0.3 else None
    # Churn: distinct edges so no edge draws two arrivals (or two
    # departures), and any departure lands strictly after the arrival.
    churn_edges = rng.sample(
        [(u, v) for u in range(8) for v in range(u + 1, 9)],
        k=rng.randrange(5),
    )
    arrivals, departures = [], []
    for u, v in churn_edges:
        arrive = rng.randrange(10) if rng.random() < 0.7 else None
        if arrive is not None:
            arrivals.append((u, v, arrive))
        if rng.random() < 0.5:
            departures.append(
                (u, v, (0 if arrive is None else arrive) + 1 + rng.randrange(10))
            )
    up_windows = tuple(
        EdgeWindow(
            rng.randrange(30), rng.randrange(30), start, start + rng.randrange(8)
        )
        for start in (rng.randrange(15) for _ in range(rng.randrange(3)))
    )
    partitions = tuple(
        PartitionWindow(
            (tuple(rng.sample(range(30), k=rng.randrange(1, 6))),),
            start,
            start + rng.randrange(10),
        )
        for start in (rng.randrange(15) for _ in range(rng.randrange(3)))
    )
    delay = round(rng.uniform(0.0, 0.5), 3) if rng.random() < 0.6 else 0.0
    return FaultPlan(
        seed=rng.randrange(10_000),
        link_failures=link_failures,
        crashes=crashes,
        rejoins=rejoins,
        checkpoint_interval=interval,
        edge_arrivals=tuple(arrivals),
        edge_departures=tuple(departures),
        edge_up_windows=up_windows,
        partitions=partitions,
        delay=delay,
        max_delay=rng.randrange(1, 5),
        **rates,
    )


def test_random_plans_roundtrip_through_json():
    """Property check: serialization is lossless over the whole space.

    Equality of the plans is necessary but not sufficient — what the
    engines consume is the compiled injector, so for plans that
    compile, every classification and corruption nonce must replay
    identically from the round-tripped copy.
    """
    import json
    import random

    rng = random.Random(0xFA17)
    probes = [
        (r, u, v, s)
        for r in (0, 1, 7, 19)
        for (u, v) in ((0, 1), (1, 0), (5, 23))
        for s in (0, 1, 2)
    ]
    checked_injectors = 0
    for _ in range(50):
        plan = _random_plan(rng)
        wire = json.loads(json.dumps(plan.to_dict()))
        restored = FaultPlan.from_dict(wire)
        assert restored == plan
        assert restored.to_dict() == plan.to_dict()
        assert restored.is_empty() == plan.is_empty()
        original = plan.compile()
        copy = restored.compile()
        if original is None:
            assert copy is None
            continue
        checked_injectors += 1
        for r, u, v, s in probes:
            assert copy.classify(r, u, v, s) == original.classify(r, u, v, s)
            assert copy.corrupted_payload(r, u, v, s) == (
                original.corrupted_payload(r, u, v, s)
            )
            # Network-adversity decisions must replay identically too:
            # topology view, partition membership, and delay draws are
            # all part of the compiled-injector contract.
            assert copy.topology_live(u, v, r) == original.topology_live(u, v, r)
            assert copy.partitioned(u, v, r) == original.partitioned(u, v, r)
            assert copy.delay_rounds(r, u, v, s) == (
                original.delay_rounds(r, u, v, s)
            )
        for v in {v for v, _ in plan.crashes}:
            assert copy.crash_round(v) == original.crash_round(v)
            assert copy.rejoin_round(v) == original.rejoin_round(v)
    assert checked_injectors > 10  # the sweep wasn't vacuously empty


def test_use_faults_scoping():
    plan = FaultPlan(seed=1, drop=0.5)
    assert active_fault_plan() is None
    with use_faults(plan):
        assert active_fault_plan() is plan
        inner = FaultPlan(seed=2, drop=0.1)
        with use_faults(inner):
            assert active_fault_plan() is inner
        assert active_fault_plan() is plan
    assert active_fault_plan() is None
    with pytest.raises(FaultError):
        with use_faults("not a plan"):
            pass


# ----------------------------------------------------------------------
# Injector determinism
# ----------------------------------------------------------------------


def test_classification_is_a_pure_function():
    """Rebuilding the injector cannot change any decision."""
    a = FaultInjector(MESSAGE_PLAN)
    b = FaultInjector(MESSAGE_PLAN)
    decisions = [
        a.classify(r, u, v, s)
        for r in range(20)
        for (u, v) in ((0, 1), (1, 0), (3, 7))
        for s in range(3)
    ]
    assert decisions == [
        b.classify(r, u, v, s)
        for r in range(20)
        for (u, v) in ((0, 1), (1, 0), (3, 7))
        for s in range(3)
    ]
    assert any(d != DELIVER for d in decisions)


def test_classification_rates_are_roughly_honored():
    injector = FaultInjector(FaultPlan(seed=5, drop=0.5))
    samples = [injector.classify(r, 0, 1, s) for r in range(500) for s in range(4)]
    dropped = sum(1 for d in samples if d != DELIVER)
    assert 0.4 < dropped / len(samples) < 0.6


def test_different_seeds_give_different_streams():
    a = FaultInjector(FaultPlan(seed=1, drop=0.3))
    b = FaultInjector(FaultPlan(seed=2, drop=0.3))
    grid = [(r, s) for r in range(50) for s in range(2)]
    assert [a.classify(r, 0, 1, s) for r, s in grid] != [
        b.classify(r, 0, 1, s) for r, s in grid
    ]


def test_corrupted_payload_is_deterministic_and_sized():
    injector = FaultInjector(FaultPlan(seed=9, corrupt=1.0))
    p1 = injector.corrupted_payload(3, 0, 1, 0)
    p2 = injector.corrupted_payload(3, 0, 1, 0)
    assert p1 == p2 and hash(p1) == hash(p2)
    assert p1 != injector.corrupted_payload(4, 0, 1, 0)
    assert message_bits(p1) == CorruptedPayload.congest_bits


# ----------------------------------------------------------------------
# Differential: faulted runs are bit-identical across engines
# ----------------------------------------------------------------------


def _run_both(runner, seed):
    with use_engine("reference"):
        ref = runner(seed)
    with use_engine("fast"):
        fast = runner(seed)
    return ref, fast


@pytest.mark.parametrize("seed", SEEDS)
def test_faulted_flood_equivalent(seed):
    g = gnp_random_graph(30, 0.15, seed=seed)

    def runner(s):
        sim = CongestSimulator(
            g, lambda v: Flood(10), seed=s, faults=MESSAGE_PLAN
        )
        return sim.run(max_rounds=25)

    ref, fast = _run_both(runner, seed)
    assert ref.outputs == fast.outputs
    assert ref.halted == fast.halted
    assert ref.crashed == fast.crashed
    assert _metrics_fingerprint(ref.metrics) == _metrics_fingerprint(
        fast.metrics
    )
    # The plan must actually have bitten, or this test proves nothing.
    assert ref.metrics.faulted


@pytest.mark.parametrize("seed", SEEDS)
def test_faulted_leader_election_equivalent(seed):
    g = delaunay_planar_graph(40, seed=seed)
    plan = FaultPlan(seed=13, drop=0.03, duplicate=0.02)

    def runner(s):
        with use_faults(plan):
            return elect_leader(g, seed=s)

    (ref_leader, ref), (fast_leader, fast) = _run_both(runner, seed)
    assert ref_leader == fast_leader
    assert ref.outputs == fast.outputs
    assert _metrics_fingerprint(ref.metrics) == _metrics_fingerprint(
        fast.metrics
    )
    assert ref.metrics.faulted


@pytest.mark.parametrize("seed", SEEDS)
def test_faulted_mpx_equivalent(seed):
    g = delaunay_planar_graph(48, seed=seed)
    plan = FaultPlan(seed=21, drop=0.05)

    def runner(s):
        with use_faults(plan):
            return mpx_ldd(g, 0.3, seed=s)

    (ref_ldd, ref), (fast_ldd, fast) = _run_both(runner, seed)
    assert ref.outputs == fast.outputs
    assert sorted(map(sorted, ref_ldd.clusters)) == sorted(
        map(sorted, fast_ldd.clusters)
    )
    assert _metrics_fingerprint(ref.metrics) == _metrics_fingerprint(
        fast.metrics
    )
    assert ref.metrics.faulted


@pytest.mark.parametrize("seed", SEEDS[:2])
def test_faulted_traces_equivalent(seed):
    """Per-round fault counters agree record-for-record."""
    g = gnp_random_graph(24, 0.2, seed=seed)
    plan = FaultPlan(seed=17, drop=0.1, duplicate=0.05, crashes=((3, 4),))
    traces = {}
    for engine in ("reference", "fast"):
        rec = TraceRecorder(engine)
        sim = CongestSimulator(
            g,
            lambda v: Flood(8),
            seed=seed,
            engine=engine,
            trace=rec,
            faults=plan,
        )
        sim.run(max_rounds=20)
        traces[engine] = rec
    ref, fast = traces["reference"], traces["fast"]
    assert len(ref.rounds) == len(fast.rounds)
    for a, b in zip(ref.rounds, fast.rounds):
        assert a == b
    assert any(r.dropped or r.duplicated for r in fast.rounds)
    assert sum(r.crashed for r in fast.rounds) == 1


# ----------------------------------------------------------------------
# Crashes and link failures
# ----------------------------------------------------------------------


@pytest.mark.parametrize("engine", ["fast", "reference"])
def test_crashed_vertices_fail_stop(engine):
    g = gnp_random_graph(20, 0.25, seed=1)
    plan = FaultPlan(crashes=((0, 0), (5, 3)))
    sim = CongestSimulator(
        g, lambda v: Flood(8), seed=1, engine=engine, faults=plan
    )
    result = sim.run(max_rounds=20)
    assert result.crashed == frozenset({0, 5})
    assert result.metrics.vertices_crashed == 2
    assert result.outputs[0] is None and result.outputs[5] is None
    with pytest.raises(CrashedVertexError):
        result.output_of(5)
    # Survivors still produce valid outputs through the accessor.
    survivor = next(v for v in g.vertices() if v not in result.crashed)
    assert result.output_of(survivor) is not None


@pytest.mark.parametrize("engine", ["fast", "reference"])
def test_crash_of_max_id_changes_flood_answer(engine):
    """Crashing the max-ID vertex at round 0 removes it from the flood."""
    g = path_graph(6)
    plan = FaultPlan(crashes=((5, 0),))
    sim = CongestSimulator(
        g, lambda v: Flood(10), seed=0, engine=engine, faults=plan
    )
    result = sim.run(max_rounds=30)
    for v in range(5):
        assert result.output_of(v) == 4


@pytest.mark.parametrize("engine", ["fast", "reference"])
def test_link_failure_partitions_a_path(engine):
    """Severing the middle edge of a path splits the flood in two."""
    g = path_graph(6)
    plan = FaultPlan(link_failures=((2, 3, 0, 10_000),))
    sim = CongestSimulator(
        g, lambda v: Flood(10), seed=0, engine=engine, faults=plan
    )
    result = sim.run(max_rounds=30)
    assert [result.output_of(v) for v in range(6)] == [2, 2, 2, 5, 5, 5]
    assert result.metrics.messages_dropped > 0


class PersistentFlood(Flood):
    """Flood that rebroadcasts every round, so late links still help."""

    def step(self, ctx, inbox):
        super().step(ctx, inbox)
        if not ctx.halted:
            ctx.broadcast(self.best)


@pytest.mark.parametrize("engine", ["fast", "reference"])
def test_link_failure_window_expires(engine):
    """Once the window closes the link carries traffic again."""
    g = path_graph(4)
    plan = FaultPlan(link_failures=(LinkFailure(1, 2, 0, 3),))
    sim = CongestSimulator(
        g, lambda v: PersistentFlood(12), seed=0, engine=engine, faults=plan
    )
    result = sim.run(max_rounds=30)
    assert [result.output_of(v) for v in range(4)] == [3, 3, 3, 3]


# ----------------------------------------------------------------------
# Empty plans are invisible
# ----------------------------------------------------------------------


@pytest.mark.parametrize("engine", ["fast", "reference"])
def test_empty_plan_changes_nothing(engine):
    g = gnp_random_graph(25, 0.2, seed=3)

    def run(faults):
        sim = CongestSimulator(
            g, lambda v: Flood(9), seed=3, engine=engine, faults=faults
        )
        return sim.run(max_rounds=25)

    clean = run(None)
    empty = run(FaultPlan(seed=123))
    assert clean.outputs == empty.outputs
    assert clean.crashed == empty.crashed == frozenset()
    assert _metrics_fingerprint(clean.metrics) == _metrics_fingerprint(
        empty.metrics
    )
    assert not empty.metrics.faulted
