"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_decompose(self, capsys):
        assert main(["decompose", "--n", "60", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "cut fraction" in out

    def test_maxis(self, capsys):
        assert main(["maxis", "--n", "50", "--eps", "0.3", "--seed", "2"]) == 0
        assert "independent set" in capsys.readouterr().out

    def test_mcm(self, capsys):
        assert main(["mcm", "--n", "50", "--seed", "3"]) == 0
        assert "matching" in capsys.readouterr().out

    def test_mwm(self, capsys):
        code = main(
            ["mwm", "--n", "40", "--max-weight", "30", "--iterations", "2",
             "--seed", "4"]
        )
        assert code == 0
        assert "matching weight" in capsys.readouterr().out

    def test_correlation(self, capsys):
        assert main(["correlation", "--n", "50", "--seed", "5"]) == 0
        assert "agreement score" in capsys.readouterr().out

    def test_mds(self, capsys):
        assert main(["mds", "--family", "grid", "--n", "49", "--seed", "6"]) == 0
        assert "dominating set" in capsys.readouterr().out

    def test_property_member(self, capsys):
        assert main(
            ["test-property", "--property", "planar", "--n", "60",
             "--seed", "7"]
        ) == 0
        assert "Accept" in capsys.readouterr().out

    def test_property_far(self, capsys):
        assert main(
            ["test-property", "--property", "planar", "--far", "--n", "48",
             "--eps", "0.05", "--seed", "8"]
        ) == 0
        assert "Reject" in capsys.readouterr().out

    @pytest.mark.parametrize("algorithm", ["thm15", "ball", "chop", "mpx"])
    def test_ldd_algorithms(self, algorithm, capsys):
        assert main(
            ["ldd", "--algorithm", algorithm, "--family", "grid", "--n", "64",
             "--seed", "9"]
        ) == 0
        assert "clusters" in capsys.readouterr().out

    def test_triangles(self, capsys):
        assert main(
            ["triangles", "--family", "trigrid", "--n", "49", "--seed", "10"]
        ) == 0
        assert "exact" in capsys.readouterr().out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_trace_flag_writes_jsonl(self, capsys, tmp_path):
        from repro.congest import TraceRecorder

        path = tmp_path / "trace.jsonl"
        assert main(
            ["maxis", "--n", "40", "--seed", "11", "--trace", str(path)]
        ) == 0
        # Diagnostics land on stderr; results stay on stdout.
        captured = capsys.readouterr()
        assert "trace:" in captured.err and str(path) in captured.err
        assert "independent set" in captured.out
        lines = path.read_text().splitlines()
        assert lines  # at least one simulated round was recorded
        back = TraceRecorder.from_jsonl(lines)
        assert back.total_messages() > 0
        assert all(r.round >= 1 for r in back.rounds)

    def test_quiet_suppresses_diagnostics(self, capsys, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert main(
            ["--quiet", "maxis", "--n", "40", "--seed", "11",
             "--trace", str(path)]
        ) == 0
        captured = capsys.readouterr()
        assert "trace:" not in captured.err
        assert "independent set" in captured.out

    def test_log_json_diagnostics(self, capsys, tmp_path):
        import json

        path = tmp_path / "trace.jsonl"
        assert main(
            ["--log-json", "maxis", "--n", "40", "--seed", "11",
             "--trace", str(path)]
        ) == 0
        captured = capsys.readouterr()
        events = [json.loads(line) for line in captured.err.splitlines()]
        assert any(
            e["level"] == "info" and e["message"].startswith("trace:")
            for e in events
        )
