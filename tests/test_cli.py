"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import main


class TestCLI:
    def test_decompose(self, capsys):
        assert main(["decompose", "--n", "60", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "cut fraction" in out

    def test_maxis(self, capsys):
        assert main(["maxis", "--n", "50", "--eps", "0.3", "--seed", "2"]) == 0
        assert "independent set" in capsys.readouterr().out

    def test_mcm(self, capsys):
        assert main(["mcm", "--n", "50", "--seed", "3"]) == 0
        assert "matching" in capsys.readouterr().out

    def test_mwm(self, capsys):
        code = main(
            ["mwm", "--n", "40", "--max-weight", "30", "--iterations", "2",
             "--seed", "4"]
        )
        assert code == 0
        assert "matching weight" in capsys.readouterr().out

    def test_correlation(self, capsys):
        assert main(["correlation", "--n", "50", "--seed", "5"]) == 0
        assert "agreement score" in capsys.readouterr().out

    def test_mds(self, capsys):
        assert main(["mds", "--family", "grid", "--n", "49", "--seed", "6"]) == 0
        assert "dominating set" in capsys.readouterr().out

    def test_property_member(self, capsys):
        assert main(
            ["test-property", "--property", "planar", "--n", "60",
             "--seed", "7"]
        ) == 0
        assert "Accept" in capsys.readouterr().out

    def test_property_far(self, capsys):
        assert main(
            ["test-property", "--property", "planar", "--far", "--n", "48",
             "--eps", "0.05", "--seed", "8"]
        ) == 0
        assert "Reject" in capsys.readouterr().out

    @pytest.mark.parametrize("algorithm", ["thm15", "ball", "chop", "mpx"])
    def test_ldd_algorithms(self, algorithm, capsys):
        assert main(
            ["ldd", "--algorithm", algorithm, "--family", "grid", "--n", "64",
             "--seed", "9"]
        ) == 0
        assert "clusters" in capsys.readouterr().out

    def test_triangles(self, capsys):
        assert main(
            ["triangles", "--family", "trigrid", "--n", "49", "--seed", "10"]
        ) == 0
        assert "exact" in capsys.readouterr().out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_trace_flag_writes_jsonl(self, capsys, tmp_path):
        from repro.congest import TraceRecorder

        path = tmp_path / "trace.jsonl"
        assert main(
            ["maxis", "--n", "40", "--seed", "11", "--trace", str(path)]
        ) == 0
        # Diagnostics land on stderr; results stay on stdout.
        captured = capsys.readouterr()
        assert "trace:" in captured.err and str(path) in captured.err
        assert "independent set" in captured.out
        lines = path.read_text().splitlines()
        assert lines  # at least one simulated round was recorded
        back = TraceRecorder.from_jsonl(lines)
        assert back.total_messages() > 0
        assert all(r.round >= 1 for r in back.rounds)

    def test_quiet_suppresses_diagnostics(self, capsys, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert main(
            ["--quiet", "maxis", "--n", "40", "--seed", "11",
             "--trace", str(path)]
        ) == 0
        captured = capsys.readouterr()
        assert "trace:" not in captured.err
        assert "independent set" in captured.out

    def test_log_json_diagnostics(self, capsys, tmp_path):
        import json

        path = tmp_path / "trace.jsonl"
        assert main(
            ["--log-json", "maxis", "--n", "40", "--seed", "11",
             "--trace", str(path)]
        ) == 0
        captured = capsys.readouterr()
        events = [json.loads(line) for line in captured.err.splitlines()]
        assert any(
            e["level"] == "info" and e["message"].startswith("trace:")
            for e in events
        )


class TestFaultsCommand:
    def test_churn_plan_accepted(self, capsys):
        code = main([
            "faults", "--n", "30", "--seed", "2",
            "--crash", "3:2", "--rejoin", "3:6",
            "--checkpoint-interval", "2",
        ])
        assert code in (0, 1)  # graded, never a traceback
        out = capsys.readouterr().out
        assert "crashes=1 rejoins=1" in out
        assert "verdict:" in out

    def test_rejoin_without_crash_is_a_clean_error(self, capsys):
        # Structurally invalid plans are operator errors: exit 2 with
        # a one-line message on stderr, never a traceback.
        assert main(["faults", "--n", "30", "--rejoin", "3:6"]) == 2
        assert "invalid fault plan" in capsys.readouterr().err

    def test_conflicting_churn_schedule_is_a_clean_error(self, capsys):
        code = main([
            "faults", "--n", "30",
            "--edge-arrive", "0-1:4", "--edge-arrive", "0-1:6",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "invalid fault plan" in err
        assert "conflicting churn schedule" in err

    def test_bad_schedule_spec_is_a_clean_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["faults", "--n", "30", "--crash", "nonsense"])
        assert "--crash" in str(excinfo.value)

    def test_bad_checkpoint_interval_is_a_clean_error(self, capsys):
        assert main(["faults", "--n", "30", "--crash", "3:2",
                     "--checkpoint-interval", "0"]) == 2
        assert "invalid fault plan" in capsys.readouterr().err


class TestBenchJournal:
    def test_resume_replays_journaled_cells(self, capsys, tmp_path):
        journal = str(tmp_path / "wal.jsonl")
        args = ["bench", "--suite", "CHAOS", "--limit", "2", "--no-cache",
                "--cache-dir", str(tmp_path), "--journal", journal]
        assert main(args) == 0
        first = capsys.readouterr()
        assert "2 cell(s) replayed" not in first.err

        assert main(args + ["--resume"]) == 0
        second = capsys.readouterr()
        assert "2 cell(s) replayed, 0 computed" in second.err
        assert second.out == first.out  # byte-identical table

    def test_journal_rejects_multiple_suites(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["bench", "--suite", "E10", "--suite", "CHAOS",
                  "--journal", str(tmp_path / "wal.jsonl")])
        assert "one file" in str(excinfo.value)

    def test_corrupt_journal_header_resume_exits_2(self, capsys, tmp_path):
        journal = tmp_path / "wal.jsonl"
        journal.write_text("{corrupt header\n")
        code = main(["bench", "--suite", "CHAOS", "--limit", "2",
                     "--no-cache", "--cache-dir", str(tmp_path),
                     "--journal", str(journal), "--resume"])
        assert code == 2
        err = capsys.readouterr().err
        assert "cannot resume" in err and "Traceback" not in err

    def test_corrupt_journal_cell_is_loud_in_footer_and_stats(
        self, capsys, tmp_path
    ):
        import json

        journal = str(tmp_path / "wal.jsonl")
        stats = str(tmp_path / "stats.json")
        args = ["bench", "--suite", "CHAOS", "--limit", "2", "--no-cache",
                "--cache-dir", str(tmp_path), "--journal", journal]
        assert main(args) == 0
        capsys.readouterr()
        # Tear the final cell record, as a kill mid-append would.
        with open(journal) as handle:
            lines = handle.read().splitlines()
        with open(journal, "w") as handle:
            handle.write("\n".join(lines[:-1]) + "\n" + lines[-1][:20] + "\n")

        assert main(args + ["--resume", "--stats-json", stats]) == 0
        out = capsys.readouterr().out
        assert "1 corrupt journal line(s) skipped" in out
        with open(stats) as handle:
            payload = json.load(handle)
        assert payload["suites"][0]["journal_corrupt_lines"] == 1


class TestFaultsCheckpointCLI:
    ARGS = ["faults", "--family", "delaunay", "--n", "40",
            "--algorithm", "maxis", "--seed", "3"]

    def test_save_then_resume_round_trips(self, capsys, tmp_path):
        ck = str(tmp_path / "ck.json")
        assert main(self.ARGS + ["--save-checkpoint", ck,
                                 "--checkpoint-every", "4"]) == 0
        first = capsys.readouterr()
        assert "checkpoints: 1 saved" in first.out
        assert os.path.exists(ck)

        assert main(self.ARGS + ["--resume-from", ck]) == 0
        second = capsys.readouterr()
        assert "resumed:" in second.out and "verdict:" in second.out

    def test_corrupt_checkpoint_resume_exits_2(self, capsys, tmp_path):
        ck = tmp_path / "ck.json"
        assert main(self.ARGS + ["--save-checkpoint", str(ck),
                                 "--checkpoint-every", "4"]) == 0
        capsys.readouterr()
        data = ck.read_bytes()
        ck.write_bytes(data[: len(data) // 2])
        assert main(self.ARGS + ["--resume-from", str(ck)]) == 2
        err = capsys.readouterr().err
        assert "corrupt checkpoint" in err and "Traceback" not in err

    def test_missing_checkpoint_resume_exits_2(self, capsys, tmp_path):
        code = main(self.ARGS + ["--resume-from",
                                 str(tmp_path / "absent.json")])
        assert code == 2
        err = capsys.readouterr().err
        assert "checkpoint" in err and "Traceback" not in err


class TestObsErrorPaths:
    def test_report_missing_snapshot_exits_2(self, capsys, tmp_path):
        assert main(["obs", "report", str(tmp_path / "absent.json")]) == 2
        err = capsys.readouterr().err
        assert "absent.json" in err and "Traceback" not in err

    def test_report_malformed_snapshot_exits_2(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["obs", "report", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "bad.json" in err and "Traceback" not in err

    def test_diff_missing_snapshot_exits_2(self, capsys, tmp_path):
        present = tmp_path / "present.json"
        present.write_text("{}")  # never reached: the first load fails
        assert main([
            "obs", "diff", str(tmp_path / "absent.json"), str(present)
        ]) == 2
        err = capsys.readouterr().err
        assert "absent.json" in err and "Traceback" not in err

    def test_diff_wrong_kind_snapshot_exits_2(self, capsys, tmp_path):
        bad = tmp_path / "kind.json"
        bad.write_text('{"kind": "something-else", "schema": 1}')
        assert main(["obs", "diff", str(bad), str(bad)]) == 2
        err = capsys.readouterr().err
        assert "kind.json" in err and "Traceback" not in err
