"""Tests for CONGEST message size accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.congest.message import FLOAT_BITS, MessageBudget, message_bits
from repro.errors import MessageTooLargeError


class TestMessageBits:
    def test_none_is_one_bit(self):
        assert message_bits(None) == 1

    def test_bool(self):
        assert message_bits(True) == 3

    def test_small_int(self):
        # magnitude bits (min 1) + sign bit + field overhead
        assert message_bits(0) == 4
        assert message_bits(1) == 4
        assert message_bits(3) == 5

    def test_int_grows_with_magnitude(self):
        assert message_bits(2**20) > message_bits(2**10) > message_bits(1)

    def test_negative_int_counted(self):
        assert message_bits(-5) == message_bits(5)

    def test_float(self):
        assert message_bits(1.5) == FLOAT_BITS + 2

    def test_string_by_length(self):
        assert message_bits("AB") == 18

    def test_tuple_sums_fields(self):
        t = ("F", 3, 7)
        assert message_bits(t) == 2 + message_bits("F") + message_bits(
            3
        ) + message_bits(7)

    def test_nested_tuple(self):
        assert message_bits((1, (2, 3))) > message_bits((1, 2))

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            message_bits({"a": 1})

    def test_graph_object_rejected(self):
        from repro.graph import Graph

        with pytest.raises(TypeError):
            message_bits(Graph())

    @given(st.integers(-(2**40), 2**40))
    @settings(max_examples=50)
    def test_int_bits_positive(self, value):
        assert message_bits(value) >= 3


class TestMessageBudget:
    def test_bits_scale_logarithmically(self):
        small = MessageBudget(16)
        large = MessageBudget(1 << 20)
        assert small.bits_per_word == 5
        assert large.bits_per_word == 21
        assert large.bits == large.words * 21

    def test_check_passes_small_payload(self):
        budget = MessageBudget(1024)
        assert budget.check(("F", 1000, 3)) > 0

    def test_check_rejects_oversized_payload(self):
        budget = MessageBudget(4, words=2)
        with pytest.raises(MessageTooLargeError):
            budget.check(tuple(range(50)))

    def test_error_carries_sizes(self):
        budget = MessageBudget(4, words=2)
        with pytest.raises(MessageTooLargeError) as excinfo:
            budget.check("a very long message " * 10, detail="test")
        assert excinfo.value.budget == budget.bits
        assert excinfo.value.bits > budget.bits

    def test_budget_fits_vertex_id_tuples(self):
        # The invariant the routing layer relies on: a tag plus a few
        # IDs always fits, at every network size.
        for n in (2, 10, 100, 10_000, 1_000_000):
            budget = MessageBudget(n)
            payload = ("F", n - 1, 7, (n - 2, n // 2))
            budget.check(payload)
