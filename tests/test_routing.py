"""Tests for leader election, orientation, and exchanges (Section 2.2)."""

import pytest

from repro.errors import GraphError
from repro.generators import (
    complete_graph,
    cycle_graph,
    delaunay_planar_graph,
    grid_graph,
    star_graph,
)
from repro.graph import Graph
from repro.routing import (
    elect_leader,
    orient_low_out_degree,
    tree_exchange,
    walk_exchange,
)
from repro.routing.orientation import peeling_threshold


class TestLeaderElection:
    def test_elects_max_degree(self):
        g = star_graph(6)
        leader, result = elect_leader(g, seed=0)
        assert leader == 0
        assert set(result.outputs.values()) == {0}

    def test_tie_breaks_to_larger_id(self):
        g = cycle_graph(8)  # all degrees equal
        leader, result = elect_leader(g, seed=0)
        assert leader == 7

    def test_all_vertices_agree(self):
        g = delaunay_planar_graph(50, seed=1)
        leader, result = elect_leader(g, seed=0)
        assert set(result.outputs.values()) == {leader}
        assert g.degree(leader) == g.max_degree()

    def test_single_vertex(self):
        g = Graph()
        g.add_vertex(3)
        leader, _ = elect_leader(g)
        assert leader == 3

    def test_empty_cluster_rejected(self):
        with pytest.raises(GraphError):
            elect_leader(Graph())

    def test_insufficient_budget_detected(self):
        # Path with max-degree vertex at one end and budget 1: distant
        # vertices cannot have learned it.
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])
        g.add_edge(0, 6)  # vertex 0 has degree 2, the maximum
        leader, result = elect_leader(g, budget=1, seed=0)
        assert len(set(result.outputs.values())) > 1


class TestOrientation:
    def test_threshold_formula(self):
        assert peeling_threshold(2.0) == 5
        assert peeling_threshold(1.0, eta=0.0) == 2

    @pytest.mark.parametrize(
        "make, density",
        [
            (lambda: grid_graph(6, 6), 2.0),
            (lambda: delaunay_planar_graph(60, seed=2), 3.0),
            (lambda: cycle_graph(20), 1.0),
        ],
        ids=["grid", "delaunay", "cycle"],
    )
    def test_out_degree_bounded(self, make, density):
        g = make()
        orientation, _ = orient_low_out_degree(g, density, seed=0)
        threshold = peeling_threshold(density)
        for v, out in orientation.items():
            assert len(out) <= threshold

    def test_every_edge_oriented_once(self):
        g = delaunay_planar_graph(40, seed=3)
        orientation, _ = orient_low_out_degree(g, 3.0, seed=0)
        count = sum(len(out) for out in orientation.values())
        assert count == g.m
        for v, out in orientation.items():
            for u in out:
                assert v not in orientation[u]

    def test_dense_graph_force_peels(self):
        # Density promise violated: protocol must still terminate with
        # a consistent orientation (Section 2.3 failure behavior).
        g = complete_graph(12)
        orientation, _ = orient_low_out_degree(g, 1.0, seed=0)
        count = sum(len(out) for out in orientation.values())
        assert count == g.m


class TestWalkExchange:
    def test_requests_delivered_and_answered(self):
        g = grid_graph(4, 4)
        leader = 5
        requests = {v: [(v, 7)] for v in g.vertices()}

        def responder(absorbed):
            return {key: ("ok", key[0]) for key in absorbed}

        result = walk_exchange(
            g, leader, requests, responder=responder, phi=0.2, seed=0
        )
        assert result.success
        assert len(result.requests_delivered) == g.n
        for v in g.vertices():
            assert result.responses[(v, 0)] == ("ok", v)

    def test_default_responder_acks(self):
        g = cycle_graph(6)
        requests = {v: [1] for v in g.vertices()}
        result = walk_exchange(g, 0, requests, phi=0.2, seed=1)
        assert result.success
        assert all(resp is None for resp in result.responses.values())

    def test_insufficient_steps_detected_as_failure(self):
        g = grid_graph(5, 5)
        requests = {v: [1] for v in g.vertices()}
        result = walk_exchange(
            g, 0, requests, phi=0.2, forward_steps=2, seed=2
        )
        assert not result.success
        assert result.undelivered  # reverse-routing detection (§2.3)

    def test_leader_own_request_answered(self):
        g = cycle_graph(5)
        requests = {0: [(42,)]}
        result = walk_exchange(g, 0, requests, phi=0.3, seed=3)
        assert result.responses.get((0, 0), "missing") is None
        assert result.success

    def test_message_bits_stay_logarithmic(self):
        g = delaunay_planar_graph(60, seed=4)
        leader = max(g.vertices(), key=g.degree)
        requests = {v: [(v, 1)] for v in g.vertices()}
        result = walk_exchange(g, leader, requests, phi=0.1, seed=5)
        from repro.congest.message import MessageBudget

        assert result.metrics.max_message_bits <= MessageBudget(g.n).bits

    def test_unknown_leader_rejected(self):
        with pytest.raises(GraphError):
            walk_exchange(cycle_graph(4), 99, {})


class TestTreeExchange:
    def test_requests_delivered_and_answered(self):
        g = grid_graph(4, 4)
        leader = 0
        requests = {v: [(v,)] for v in g.vertices()}

        def responder(absorbed):
            return {key: key[0] + 100 for key in absorbed}

        result = tree_exchange(g, leader, requests, responder=responder, seed=0)
        assert result.success
        for v in g.vertices():
            assert result.responses[(v, 0)] == v + 100

    def test_congestion_concentrates_at_root(self):
        g = star_graph(20)
        requests = {v: [(v,)] for v in g.vertices()}
        result = tree_exchange(g, 0, requests, seed=1)
        assert result.success
        assert result.metrics.max_edge_congestion >= 1

    def test_multi_payload_per_vertex(self):
        g = cycle_graph(8)
        requests = {v: [(v, i) for i in range(3)] for v in g.vertices()}
        result = tree_exchange(g, 0, requests, seed=2)
        assert result.success
        assert len(result.requests_delivered) == 24
