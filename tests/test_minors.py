"""Tests for minor search, degeneracy, and the small-class checkers."""

import pytest

from repro.generators import (
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    delaunay_planar_graph,
    grid_graph,
    k_tree,
    maximal_outerplanar_graph,
    path_graph,
    random_tree,
    series_parallel_graph,
    star_graph,
)
from repro.graph import Graph
from repro.minors import (
    degeneracy,
    degeneracy_ordering,
    greedy_orientation,
    has_minor,
    is_forest,
    is_outerplanar,
    is_series_parallel,
)


class TestMinorSearch:
    def test_k5_in_k6(self):
        assert has_minor(complete_graph(6), complete_graph(5))

    def test_k5_not_in_planar(self):
        assert not has_minor(delaunay_planar_graph(60, seed=1), complete_graph(5))

    def test_k33_not_in_planar(self):
        assert not has_minor(grid_graph(5, 5), complete_bipartite_graph(3, 3))

    def test_k4_in_wheel(self):
        # A wheel (cycle + hub) contains K_4 as a minor.
        g = cycle_graph(6)
        for v in range(6):
            g.add_edge(v, 10)
        assert has_minor(g, complete_graph(4))

    def test_k4_not_in_series_parallel(self):
        g = series_parallel_graph(30, seed=2)
        assert not has_minor(g, complete_graph(4))

    def test_cycle_minor_of_larger_cycle(self):
        assert has_minor(cycle_graph(10), cycle_graph(3))

    def test_triangle_not_in_tree(self):
        assert not has_minor(random_tree(20, seed=3), complete_graph(3))

    def test_contraction_needed(self):
        # C6 has K3 as a minor only via contraction.
        assert has_minor(cycle_graph(6), complete_graph(3))

    def test_empty_pattern(self):
        assert has_minor(path_graph(3), Graph())

    def test_pattern_larger_than_host(self):
        assert not has_minor(path_graph(3), complete_graph(5))

    def test_k5_in_k5_subdivision(self):
        k5 = complete_graph(5)
        g = Graph()
        nxt = 5
        for u, v in k5.edges():
            g.add_edge(u, nxt)
            g.add_edge(nxt, v)
            nxt += 1
        assert has_minor(g, complete_graph(5))


class TestDegeneracy:
    def test_tree_degeneracy_one(self):
        assert degeneracy(random_tree(30, seed=1)) == 1

    def test_complete_graph(self):
        assert degeneracy(complete_graph(7)) == 6

    def test_planar_degeneracy_at_most_five(self):
        g = delaunay_planar_graph(150, seed=2)
        assert degeneracy(g) <= 5

    def test_k_tree_degeneracy(self):
        assert degeneracy(k_tree(40, 4, seed=3)) == 4

    def test_ordering_property(self):
        g = delaunay_planar_graph(80, seed=4)
        d, order = degeneracy_ordering(g)
        position = {v: i for i, v in enumerate(order)}
        for v in g.vertices():
            later = sum(1 for u in g.neighbors(v) if position[u] > position[v])
            assert later <= d

    def test_greedy_orientation_out_degree(self):
        g = delaunay_planar_graph(100, seed=5)
        d = degeneracy(g)
        out = greedy_orientation(g)
        assert all(len(targets) <= d for targets in out.values())
        # Every edge oriented exactly once.
        count = sum(len(targets) for targets in out.values())
        assert count == g.m


class TestClassCheckers:
    def test_forest_yes_no(self):
        assert is_forest(random_tree(20, seed=1))
        assert not is_forest(cycle_graph(5))
        two_trees = Graph.from_edges([(0, 1), (2, 3)])
        assert is_forest(two_trees)

    def test_series_parallel_families(self):
        assert is_series_parallel(cycle_graph(8))
        assert is_series_parallel(series_parallel_graph(40, seed=2))
        assert not is_series_parallel(complete_graph(4))
        assert not is_series_parallel(grid_graph(3, 3))

    def test_outerplanar_families(self):
        assert is_outerplanar(cycle_graph(7))
        assert is_outerplanar(maximal_outerplanar_graph(15, seed=1))
        assert is_outerplanar(star_graph(8))
        assert not is_outerplanar(complete_graph(4))
        assert not is_outerplanar(complete_bipartite_graph(2, 3))
        assert not is_outerplanar(grid_graph(3, 3))

    def test_outerplanar_subset_of_planar(self):
        from repro.minors import is_planar

        for seed in range(4):
            g = maximal_outerplanar_graph(12, seed=seed)
            assert is_outerplanar(g)
            assert is_planar(g)
