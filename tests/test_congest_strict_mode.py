"""Strict-mode capacity enforcement, parametrized over both engines.

The textbook CONGEST model allows at most one O(log n)-bit message per
directed edge per round; the simulator generalizes this to a per-edge
``capacity``.  These tests pin the boundary exactly: ``capacity`` sends
on one edge in one round are legal, ``capacity + 1`` raise
:class:`ProtocolError` — and in non-strict mode the overflow is instead
charged to ``effective_rounds``.
"""

import pytest

from repro.congest import CongestSimulator, FaultPlan, VertexAlgorithm
from repro.errors import ProtocolError
from repro.generators import path_graph, star_graph

ENGINES = ("fast", "reference")

#: Duplicates every message (drop/corrupt off) — used to pin down that
#: fault-injected copies are "on the wire" phenomena the *sender* is
#: never charged for.
DUPLICATE_ALL = FaultPlan(seed=0, duplicate=1.0)


class BurstOnce(VertexAlgorithm):
    """Vertex 0 sends ``count`` unit messages to each neighbor, once."""

    def __init__(self, vertex, count):
        self.count = count if vertex == 0 else 0

    def initialize(self, ctx):
        for u in ctx.neighbors:
            for i in range(self.count):
                ctx.send(u, i)

    def step(self, ctx, inbox):
        ctx.halt(sum(len(p) for p in inbox.values()))


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("capacity", [1, 2, 3, 5])
class TestStrictCapacity:
    def test_exactly_capacity_messages_allowed(self, engine, capacity):
        sim = CongestSimulator(
            path_graph(2),
            lambda v: BurstOnce(v, capacity),
            strict=True,
            capacity=capacity,
            seed=0,
            engine=engine,
        )
        result = sim.run(3)
        assert result.halted
        # All `capacity` messages arrived at vertex 1.
        assert result.outputs[1] == capacity

    def test_capacity_plus_one_raises(self, engine, capacity):
        sim = CongestSimulator(
            path_graph(2),
            lambda v: BurstOnce(v, capacity + 1),
            strict=True,
            capacity=capacity,
            seed=0,
            engine=engine,
        )
        with pytest.raises(ProtocolError) as excinfo:
            sim.run(3)
        # The error names the offending multiplicity and the capacity.
        assert str(capacity + 1) in str(excinfo.value)
        assert str(capacity) in str(excinfo.value)

    def test_capacity_is_per_edge_not_per_vertex(self, engine, capacity):
        # A star center sending `capacity` messages to EACH leaf is
        # legal: the limit binds per directed edge, not per sender.
        sim = CongestSimulator(
            star_graph(4),
            lambda v: BurstOnce(v, capacity),
            strict=True,
            capacity=capacity,
            seed=0,
            engine=engine,
        )
        result = sim.run(3)
        assert result.halted
        for leaf in range(1, 5):
            assert result.outputs[leaf] == capacity


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("capacity", [1, 2, 3])
class TestStrictCapacityUnderDuplication:
    """Injected duplicates must not count against the sender's budget.

    A duplicated message is a channel fault, not a second send: the
    sender already paid for exactly one message, so strict mode must
    neither raise :class:`ProtocolError` nor report inflated
    congestion, even when every message on the wire is doubled.
    """

    def test_full_duplication_does_not_trip_strict_mode(
        self, engine, capacity
    ):
        sim = CongestSimulator(
            path_graph(2),
            lambda v: BurstOnce(v, capacity),
            strict=True,
            capacity=capacity,
            seed=0,
            engine=engine,
            faults=DUPLICATE_ALL,
        )
        result = sim.run(3)  # at the exact capacity boundary: legal
        assert result.halted
        # The receiver sees two copies of each message...
        assert result.outputs[1] == 2 * capacity
        # ...but the books record the single charged send per message.
        m = sim.metrics
        assert m.total_messages == capacity
        assert m.max_edge_congestion == capacity
        assert m.messages_duplicated == capacity

    def test_overflow_detection_still_exact_under_duplication(
        self, engine, capacity
    ):
        # capacity + 1 genuine sends must still raise — and the error
        # must name the true multiplicity, not the duplicated one.
        sim = CongestSimulator(
            path_graph(2),
            lambda v: BurstOnce(v, capacity + 1),
            strict=True,
            capacity=capacity,
            seed=0,
            engine=engine,
            faults=DUPLICATE_ALL,
        )
        with pytest.raises(ProtocolError) as excinfo:
            sim.run(3)
        assert str(capacity + 1) in str(excinfo.value)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("burst", [2, 4, 7])
class TestNonStrictCharging:
    def test_overflow_charged_to_effective_rounds(self, engine, burst):
        sim = CongestSimulator(
            path_graph(2),
            lambda v: BurstOnce(v, burst),
            strict=False,
            seed=0,
            engine=engine,
        )
        result = sim.run(3)
        assert result.halted
        m = result.metrics
        assert m.max_edge_congestion == burst
        # Round 1 delivers the burst (charged `burst`); every other
        # executed round carries at most one message per edge.
        assert m.effective_rounds == m.rounds + (burst - 1)

    def test_non_strict_never_raises(self, engine, burst):
        sim = CongestSimulator(
            star_graph(4),
            lambda v: BurstOnce(v, burst),
            strict=False,
            seed=0,
            engine=engine,
        )
        result = sim.run(3)  # must not raise
        assert result.halted
