"""Tests for the distributed MPX exponential-shift LDD."""

import math
import statistics

import pytest

from repro.decomposition import mpx_ldd, verify_ldd
from repro.errors import DecompositionError
from repro.generators import (
    cycle_graph,
    grid_graph,
    random_tree,
)
from tests.conftest import delaunay_or_skip as delaunay_planar_graph
from repro.graph import Graph


class TestMPX:
    @pytest.mark.parametrize(
        "make",
        [
            lambda: grid_graph(10, 10),
            lambda: delaunay_planar_graph(100, seed=1),
            lambda: cycle_graph(80),
            lambda: random_tree(80, seed=2),
        ],
        ids=["grid", "delaunay", "cycle", "tree"],
    )
    def test_clusters_are_connected_partition(self, make):
        g = make()
        ldd, _sim = mpx_ldd(g, 0.3, seed=3)
        seen = set()
        for cluster in ldd.clusters:
            assert g.subgraph(cluster).is_connected()
            assert not (seen & cluster)
            seen |= cluster
        assert seen == set(g.vertices())

    def test_expected_cut_fraction_near_epsilon(self):
        g = grid_graph(12, 12)
        epsilon = 0.3
        cuts = [
            mpx_ldd(g, epsilon, seed=seed)[0].cut_fraction()
            for seed in range(8)
        ]
        # Expected cut <= beta = eps/2; allow generous sampling noise.
        assert statistics.mean(cuts) <= epsilon

    def test_diameter_log_over_epsilon(self):
        g = delaunay_planar_graph(120, seed=4)
        epsilon = 0.25
        ldd, _ = mpx_ldd(g, epsilon, seed=5)
        bound = 8 * math.log(g.n + 2) / epsilon
        assert ldd.max_diameter() <= bound

    def test_runs_within_round_budget(self):
        g = grid_graph(8, 8)
        _, sim = mpx_ldd(g, 0.3, seed=6)
        assert sim.halted
        beta = 0.15
        cap = 4 * math.log(g.n + 2) / beta
        assert sim.metrics.rounds <= cap + 8

    def test_messages_fit_budget(self):
        from repro.congest.message import MessageBudget

        g = delaunay_planar_graph(80, seed=7)
        _, sim = mpx_ldd(g, 0.2, seed=8)
        assert sim.metrics.max_message_bits <= MessageBudget(g.n).bits

    def test_deterministic_by_seed(self):
        g = grid_graph(6, 6)
        a, _ = mpx_ldd(g, 0.3, seed=9)
        b, _ = mpx_ldd(g, 0.3, seed=9)
        assert {frozenset(c) for c in a.clusters} == {
            frozenset(c) for c in b.clusters
        }

    def test_invalid_epsilon(self):
        with pytest.raises(DecompositionError):
            mpx_ldd(grid_graph(3, 3), 0.0)

    def test_empty_graph_rejected(self):
        with pytest.raises(DecompositionError):
            mpx_ldd(Graph(), 0.3)

    def test_beta_controls_granularity(self):
        g = grid_graph(12, 12)
        coarse, _ = mpx_ldd(g, 0.3, seed=10, beta=0.05)
        fine, _ = mpx_ldd(g, 0.3, seed=10, beta=0.8)
        assert len(fine.clusters) >= len(coarse.clusters)
