"""Tests for correlation clustering (Theorem 1.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.correlation import (
    agreement_score,
    best_trivial_clustering,
    distributed_correlation_clustering,
    exact_correlation,
    local_search_correlation,
    solve_correlation,
)
from repro.errors import GraphError, SolverError
from repro.generators import (
    cycle_graph,
    delaunay_planar_graph,
    gnp_random_graph,
    grid_graph,
    planted_signs,
    random_signs,
)
from repro.graph import Graph, edge_key


def signed_instances():
    def build(edges_and_signs):
        g = Graph()
        signs = {}
        for u, v, s in edges_and_signs:
            if u == v:
                continue
            g.add_edge(u, v)
            signs[edge_key(u, v)] = 1 if s else -1
        return g, signs

    return st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 7), st.booleans()),
        max_size=16,
    ).map(build)


class TestScoring:
    def test_all_positive_one_cluster_is_perfect(self):
        g = cycle_graph(6)
        signs = {edge_key(u, v): 1 for u, v in g.edges()}
        labels = {v: 0 for v in g.vertices()}
        assert agreement_score(g, signs, labels) == g.m

    def test_all_negative_singletons_perfect(self):
        g = cycle_graph(6)
        signs = {edge_key(u, v): -1 for u, v in g.edges()}
        labels = {v: v for v in g.vertices()}
        assert agreement_score(g, signs, labels) == g.m

    def test_missing_sign_raises(self):
        g = cycle_graph(4)
        with pytest.raises(GraphError):
            agreement_score(g, {}, {v: 0 for v in g.vertices()})

    def test_trivial_baseline_half_of_edges(self):
        """gamma(G) >= |E| / 2 (the Section 3.3 bound)."""
        for seed in range(5):
            g = grid_graph(5, 5)
            signs = random_signs(g, 0.5, seed=seed)
            _, score = best_trivial_clustering(g, signs)
            assert score >= g.m / 2


class TestExact:
    def test_exact_on_planted_triangle(self):
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
        signs = {
            edge_key(0, 1): 1,
            edge_key(1, 2): 1,
            edge_key(0, 2): 1,
            edge_key(2, 3): -1,
        }
        labels, score = exact_correlation(g, signs)
        assert score == 4
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] != labels[2]

    def test_size_limit(self):
        g = grid_graph(4, 4)
        with pytest.raises(SolverError):
            exact_correlation(g, random_signs(g, seed=0))

    @given(signed_instances())
    @settings(max_examples=40, deadline=None)
    def test_exact_dominates_trivial(self, instance):
        g, signs = instance
        if g.n == 0:
            return
        _, opt = exact_correlation(g, signs)
        _, trivial = best_trivial_clustering(g, signs)
        assert opt >= trivial


class TestLocalSearch:
    @given(signed_instances())
    @settings(max_examples=30, deadline=None)
    def test_local_search_between_trivial_and_exact(self, instance):
        g, signs = instance
        if g.n == 0:
            return
        _, opt = exact_correlation(g, signs)
        _, ls = local_search_correlation(g, signs, seed=1)
        _, trivial = best_trivial_clustering(g, signs)
        assert trivial <= ls <= opt

    def test_recovers_planted_partition_without_noise(self):
        g = grid_graph(6, 6)
        signs, community = planted_signs(g, 2, noise=0.0, seed=2)
        labels, score = local_search_correlation(g, signs, seed=3)
        assert score == g.m  # noise-free planted signs are consistent

    def test_solve_correlation_dispatch(self):
        small = cycle_graph(6)
        signs = random_signs(small, seed=4)
        exact_labels, exact_score = exact_correlation(small, signs)
        _, dispatched = solve_correlation(small, signs, seed=5)
        assert dispatched == exact_score


class TestDistributed:
    @pytest.mark.parametrize("noise", [0.0, 0.15])
    def test_theorem_1_3_ratio_vs_trivial_bound(self, noise):
        g = delaunay_planar_graph(60, seed=6)
        signs, _ = planted_signs(g, 3, noise=noise, seed=7)
        epsilon = 0.3
        result = distributed_correlation_clustering(g, signs, epsilon, seed=8)
        # gamma(G) >= |E|/2, and the theorem promises (1 - eps) gamma.
        assert result.score >= (1 - epsilon) * g.m / 2

    def test_labels_cover_all_vertices(self):
        g = grid_graph(5, 5)
        signs = random_signs(g, 0.6, seed=9)
        result = distributed_correlation_clustering(g, signs, 0.3, seed=10)
        assert set(result.labels) == set(g.vertices())

    def test_beats_trivial_baseline(self):
        g = delaunay_planar_graph(50, seed=11)
        signs, _ = planted_signs(g, 2, noise=0.1, seed=12)
        result = distributed_correlation_clustering(g, signs, 0.25, seed=13)
        _, trivial = best_trivial_clustering(g, signs)
        assert result.score >= trivial * 0.95

    def test_invalid_sign_rejected(self):
        g = cycle_graph(4)
        signs = {edge_key(u, v): 0 for u, v in g.edges()}
        with pytest.raises(SolverError):
            distributed_correlation_clustering(g, signs, 0.3)

    def test_invalid_epsilon(self):
        g = cycle_graph(4)
        with pytest.raises(SolverError):
            distributed_correlation_clustering(
                g, random_signs(g, seed=1), 0.0
            )
