"""Self-healing executor: retries, timeouts, pool rebuilds, quarantine.

The hidden CHAOS suite misbehaves only when ``REPRO_CHAOS_DIR`` is set
(crashing, hanging, or flaking per its behavior schedule), so the same
grid doubles as a healthy control: with the variable unset every cell
is an ordinary fast cell, and the healthy subset of a chaotic run must
match the fault-free serial run row for row.

These tests never enable the cache — a memoized chaos cell would skip
the misbehavior the executor is supposed to absorb.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.runner import SUITES, run_suite, suite_names

CHAOS_CELLS = SUITES["CHAOS"].cells()
BEHAVIOR = {cell.index: cell.params["behavior"] for cell in CHAOS_CELLS}


@pytest.fixture
def chaos_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CHAOS_DIR", str(tmp_path))
    return tmp_path


@pytest.fixture
def no_chaos(monkeypatch):
    monkeypatch.delenv("REPRO_CHAOS_DIR", raising=False)


# ----------------------------------------------------------------------
# The hidden suite itself
# ----------------------------------------------------------------------

def test_chaos_suite_is_hidden_but_registered():
    assert "CHAOS" in SUITES
    assert "CHAOS" not in suite_names()
    assert SUITES["CHAOS"].hidden
    # Public suites stay public.
    assert {"E01", "E03", "E10", "E11"} <= set(suite_names())


def test_chaos_is_healthy_without_the_env_var(no_chaos):
    run = run_suite("CHAOS", jobs=1, use_cache=False)
    assert len(run.results) == len(CHAOS_CELLS)
    assert not run.quarantined
    assert not run.recovery.intervened
    assert all(r.attempts == 1 for r in run.results)


# ----------------------------------------------------------------------
# Recovery paths, isolated per behavior via --limit slices
# ----------------------------------------------------------------------

def test_flaky_cell_retries_and_succeeds_serially(chaos_dir):
    run = run_suite("CHAOS", jobs=1, use_cache=False, limit=2, retries=1)
    assert not run.quarantined
    by_index = {r.index: r for r in run.results}
    assert by_index[1].attempts == 2  # the flaky cell needed its retry
    assert by_index[0].attempts == 1
    assert run.recovery.retries == 1


def test_flaky_cell_without_retries_is_quarantined(chaos_dir):
    run = run_suite("CHAOS", jobs=1, use_cache=False, limit=2, retries=0)
    assert [q.index for q in run.quarantined] == [1]
    assert run.quarantined[0].attempts == 1
    assert "flaky" in run.quarantined[0].reason
    # The healthy neighbor still completed.
    assert [r.index for r in run.results] == [0]


def test_hung_cell_is_killed_and_quarantined(chaos_dir):
    start = time.monotonic()
    run = run_suite(
        "CHAOS", jobs=2, use_cache=False, limit=4,
        cell_timeout=1.0, retries=1,
    )
    elapsed = time.monotonic() - start
    # Two 1s attempts plus overhead — nowhere near the 3600s sleep.
    assert elapsed < 30.0
    assert [q.index for q in run.quarantined] == [3]
    assert BEHAVIOR[3] == "hang"
    assert run.quarantined[0].attempts == 2
    assert "timed out" in run.quarantined[0].reason
    assert run.recovery.timeouts == 2
    assert run.recovery.pool_rebuilds >= 1
    # Everyone else (including flaky, after its retry) made it.
    assert sorted(r.index for r in run.results) == [0, 1, 2]


def test_full_chaos_run_self_heals(chaos_dir):
    run = run_suite(
        "CHAOS", jobs=2, use_cache=False,
        cell_timeout=1.0, retries=2,
    )
    quarantined_behaviors = sorted(BEHAVIOR[q.index] for q in run.quarantined)
    assert quarantined_behaviors == ["crash", "hang"]
    for q in run.quarantined:
        assert q.attempts == 3
        assert q.reason
    assert run.recovery.pool_rebuilds >= 1  # worker death and/or hang kill
    assert run.recovery.retries >= 1

    survived = {r.index: r for r in run.results}
    assert sorted(survived) == [0, 1, 2, 4]
    assert survived[1].attempts >= 2  # flaky needed at least one retry

    # Healthy-cell rows are byte-identical to a fault-free serial run.
    del os.environ["REPRO_CHAOS_DIR"]
    healthy = run_suite("CHAOS", jobs=1, use_cache=False)
    healthy_rows = {r.index: r.rows for r in healthy.results}
    for index, result in survived.items():
        assert result.rows == healthy_rows[index]


def test_quarantine_appears_in_summary(chaos_dir):
    run = run_suite("CHAOS", jobs=1, use_cache=False, limit=2, retries=0)
    summary = run.summary()
    assert summary["recovery"] == {
        "retries": 0, "timeouts": 0, "pool_rebuilds": 0,
    }
    assert summary["quarantined"] == [{
        "suite": "CHAOS",
        "index": 1,
        "label": "CHAOS[1:flaky]",
        "attempts": 1,
        "reason": run.quarantined[0].reason,
    }]


def test_healthy_run_summary_reports_no_interventions(no_chaos):
    run = run_suite("CHAOS", jobs=2, use_cache=False, cell_timeout=30.0)
    summary = run.summary()
    assert summary["quarantined"] == []
    assert summary["recovery"] == {
        "retries": 0, "timeouts": 0, "pool_rebuilds": 0,
    }


def test_run_suite_rejects_negative_retries():
    with pytest.raises(ValueError):
        run_suite("CHAOS", retries=-1)


# ----------------------------------------------------------------------
# Interrupt handling
# ----------------------------------------------------------------------

@pytest.mark.skipif(sys.platform == "win32", reason="POSIX signals")
def test_sigkill_mid_e15_resumes_byte_identically(tmp_path):
    """SIGKILL a journaled E15 (temporal adversity) run the moment the
    first cell is durable, then resume: every journaled cell replays
    byte-identically into the same table an uninterrupted run makes."""
    baseline = run_suite("E15", jobs=1, use_cache=False, limit=4)
    baseline_rows = {r.index: r.rows for r in baseline.results}

    journal = tmp_path / "e15-wal.jsonl"
    env = dict(os.environ)
    env.pop("REPRO_CHAOS_DIR", None)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "bench",
            "--suite", "E15", "--limit", "4", "--jobs", "1",
            "--no-cache", "--journal", str(journal),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        start_new_session=True,
    )
    try:
        # Wait for the header plus at least one durable cell record,
        # then kill without any chance to flush or clean up.
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            try:
                with open(journal) as handle:
                    if sum(1 for _ in handle) >= 2:
                        break
            except FileNotFoundError:
                pass
            if proc.poll() is not None:
                break  # finished before we could kill: still resumable
            time.sleep(0.01)
        proc.send_signal(signal.SIGKILL)
    finally:
        proc.wait()
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    resumed = run_suite(
        "E15", jobs=1, use_cache=False, limit=4,
        journal=str(journal), resume=True,
    )
    assert resumed.replayed_cells() >= 1
    assert not resumed.quarantined
    assert {r.index: r.rows for r in resumed.results} == baseline_rows
    assert resumed.render_table() == baseline.render_table()
    # SIGKILL routinely tears the in-flight journal line; the resumed
    # footer may (loudly) append its corrupt-line count to the
    # otherwise identical baseline footer.
    assert resumed.footer().startswith(baseline.footer())


# ----------------------------------------------------------------------
# Disk-fault torture harness (repro chaos)
# ----------------------------------------------------------------------

def test_torture_smoke_no_silent_divergence(tmp_path, no_chaos):
    """A short seeded torture run over E10: every injected disk fault
    must end recovered/clean — zero silent divergences, zero harness
    errors — and the report's accounting must be self-consistent."""
    from repro.chaos import run_torture

    report = run_torture(
        suite="E10", limit=1, trials=3, seed=1, workdir=str(tmp_path)
    )
    assert report.ok
    assert report.silent_divergences == 0
    assert report.harness_errors == 0
    assert len(report.trials) == 3
    payload = report.to_dict()
    assert payload["counts"]["trials"] == 3
    assert payload["counts"]["silent_divergences"] == 0
    # seed 1 schedules a kill trial first: the kill must have fired
    # (exit code 121 in some phase) and still recovered.
    kinds = [t.kind for t in report.trials]
    assert kinds == ["kill", "torn", "fsync"]
    assert report.kills >= 1


@pytest.mark.skipif(
    not os.environ.get("REPRO_TORTURE_TRIALS"),
    reason="set REPRO_TORTURE_TRIALS=<n> for the full kill/fault sweep",
)
def test_torture_sweep_full(tmp_path, no_chaos):
    """The acceptance-grade sweep (50+ trials when the env var says
    so): randomized kill-points and disk-fault schedules, with the
    invariant that every trial is bit-identical-after-recovery or
    loudly recomputed — never silently wrong."""
    from repro.chaos import run_torture

    trials = int(os.environ["REPRO_TORTURE_TRIALS"])
    report = run_torture(
        suite="E10", limit=2, trials=trials, seed=0, workdir=str(tmp_path)
    )
    assert report.ok, report.summary()
    assert report.silent_divergences == 0
    assert report.injected > 0


@pytest.mark.skipif(sys.platform == "win32", reason="POSIX signals")
def test_sigint_aborts_promptly_without_waiting_for_hung_workers(tmp_path):
    """Ctrl-C must not block on a worker sleeping for an hour."""
    script = (
        "from repro.runner import run_suite\n"
        "print('chaos-start', flush=True)\n"
        # No cell_timeout, and the limit=4 slice stops before the
        # crashing cell (whose pool break would fail the hung future):
        # the hung cell blocks forever, so only the interrupt path can
        # end this run.
        "run_suite('CHAOS', jobs=2, use_cache=False, limit=4)\n"
    )
    env = dict(os.environ)
    env["REPRO_CHAOS_DIR"] = str(tmp_path)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.Popen(
        [sys.executable, "-c", script],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        start_new_session=True,  # keep the test runner's tty out of it
    )
    try:
        assert proc.stdout.readline().strip() == b"chaos-start"
        time.sleep(3.0)  # let the pool reach the hanging cell
        proc.send_signal(signal.SIGINT)
        code = proc.wait(timeout=20)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    assert code != 0  # KeyboardInterrupt propagated, promptly
