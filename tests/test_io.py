"""Tests for JSON serialization."""

import json

import pytest

from repro.decomposition import expander_decomposition, verify_expander_decomposition
from repro.errors import GraphError
from repro.generators import delaunay_planar_graph, grid_graph, random_integer_weights
from repro.graph import Graph
from repro.io import (
    decomposition_from_dict,
    decomposition_to_dict,
    graph_from_dict,
    graph_to_dict,
    load_decomposition,
    load_graph,
    save_decomposition,
    save_graph,
)


class TestGraphRoundtrip:
    def test_roundtrip_weighted(self):
        g = random_integer_weights(grid_graph(4, 4), 9, seed=1)
        back = graph_from_dict(graph_to_dict(g))
        assert back == g

    def test_roundtrip_preserves_isolated_vertices(self):
        g = Graph.from_edges([(0, 1)], vertices=[0, 1, 2])
        back = graph_from_dict(graph_to_dict(g))
        assert back.n == 3
        assert back.degree(2) == 0

    def test_file_roundtrip(self, tmp_path):
        g = delaunay_planar_graph(30, seed=2)
        path = tmp_path / "g.json"
        save_graph(g, str(path))
        assert load_graph(str(path)) == g

    def test_output_is_plain_json(self, tmp_path):
        g = grid_graph(3, 3)
        path = tmp_path / "g.json"
        save_graph(g, str(path))
        data = json.loads(path.read_text())
        assert data["kind"] == "graph"

    def test_wrong_kind_rejected(self):
        with pytest.raises(GraphError):
            graph_from_dict({"kind": "nope", "format": 1})

    def test_wrong_version_rejected(self):
        with pytest.raises(GraphError):
            graph_from_dict(
                {"kind": "graph", "format": 99, "vertices": [], "edges": []}
            )


class TestDecompositionRoundtrip:
    def test_roundtrip_verifies(self, tmp_path):
        g = delaunay_planar_graph(60, seed=3)
        dec = expander_decomposition(g, 0.3, seed=0)
        path = tmp_path / "dec.json"
        save_decomposition(dec, str(path))
        back = load_decomposition(str(path), g)
        # The reloaded decomposition passes independent verification.
        report = verify_expander_decomposition(back)
        assert report["cut_fraction"] == dec.cut_fraction()
        assert back.certificates == dec.certificates

    def test_wrong_kind_rejected(self):
        g = grid_graph(2, 2)
        with pytest.raises(GraphError):
            decomposition_from_dict({"kind": "graph"}, g)

    def test_dict_shape(self):
        g = grid_graph(3, 3)
        dec = expander_decomposition(g, 0.4, seed=0)
        data = decomposition_to_dict(dec)
        assert data["kind"] == "expander-decomposition"
        assert len(data["clusters"]) == dec.k
