"""Tests for triangle listing (centralized and distributed)."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SolverError
from repro.generators import (
    complete_graph,
    cycle_graph,
    delaunay_planar_graph,
    gnp_random_graph,
    grid_graph,
    k_tree,
    random_tree,
    triangulated_grid_graph,
)
from repro.graph import Graph
from repro.subgraphs import (
    count_triangles,
    distributed_triangle_listing,
    list_triangles,
)


class TestCentralized:
    @pytest.mark.parametrize(
        "graph, count",
        [
            (complete_graph(4), 4),
            (complete_graph(5), 10),
            (complete_graph(6), 20),
            (cycle_graph(3), 1),
            (cycle_graph(6), 0),
            (grid_graph(4, 4), 0),
            (random_tree(20, seed=1), 0),
        ],
        ids=["K4", "K5", "K6", "C3", "C6", "grid", "tree"],
    )
    def test_known_counts(self, graph, count):
        assert count_triangles(graph) == count

    def test_triangles_are_real(self):
        g = triangulated_grid_graph(5, 5)
        for triangle in list_triangles(g):
            a, b, c = sorted(triangle)
            assert g.has_edge(a, b) and g.has_edge(b, c) and g.has_edge(a, c)

    @given(
        st.lists(
            st.tuples(st.integers(0, 10), st.integers(0, 10)).filter(
                lambda e: e[0] != e[1]
            ),
            max_size=30,
        ).map(Graph.from_edges)
    )
    @settings(max_examples=60, deadline=None)
    def test_against_networkx(self, g):
        expected = sum(nx.triangles(g.to_networkx()).values()) // 3
        assert count_triangles(g) == expected


class TestDistributed:
    @pytest.mark.parametrize(
        "make",
        [
            lambda: triangulated_grid_graph(8, 8),
            lambda: delaunay_planar_graph(90, seed=2),
            lambda: k_tree(70, 3, seed=3),
        ],
        ids=["tri-grid", "delaunay", "ktree"],
    )
    def test_lists_exactly_all_triangles(self, make):
        g = make()
        found, framework, cut_metrics = distributed_triangle_listing(
            g, epsilon=0.9, phi=0.05, seed=4
        )
        assert found == list_triangles(g)
        # When the decomposition has cut edges, phase 2 must have paid.
        if framework.decomposition.cut_edges:
            assert cut_metrics.rounds > 0

    def test_single_cluster_no_cut_phase(self):
        g = triangulated_grid_graph(5, 5)
        found, framework, cut_metrics = distributed_triangle_listing(
            g, epsilon=0.3, seed=5
        )
        assert found == list_triangles(g)
        if not framework.decomposition.cut_edges:
            assert cut_metrics.total_messages == 0

    def test_triangle_free_graph(self):
        g = grid_graph(6, 6)
        found, _, _ = distributed_triangle_listing(g, epsilon=0.5, seed=6)
        assert found == set()

    def test_invalid_epsilon(self):
        with pytest.raises(SolverError):
            distributed_triangle_listing(grid_graph(3, 3), epsilon=0.0)
