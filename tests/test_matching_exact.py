"""Tests for the exact matching solvers (blossom MCM, weighted blossom MWM)."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators import (
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    delaunay_planar_graph,
    gnp_random_graph,
    grid_graph,
    path_graph,
    random_integer_weights,
    star_graph,
)
from repro.graph import Graph
from repro.matching import (
    brute_force_mwm,
    is_matching,
    matching_weight,
    max_cardinality_matching,
    max_weight_matching,
)


def weighted_graphs():
    return st.lists(
        st.tuples(
            st.integers(0, 9), st.integers(0, 9), st.integers(1, 12)
        ).filter(lambda e: e[0] != e[1]),
        max_size=22,
    ).map(
        lambda edges: Graph.from_weighted_edges(
            [(u, v, float(w)) for u, v, w in edges]
        )
    )


class TestMCMStructured:
    def test_empty(self):
        assert max_cardinality_matching(Graph()) == set()

    def test_single_edge(self):
        g = Graph.from_edges([(0, 1)])
        assert max_cardinality_matching(g) == {(0, 1)}

    @pytest.mark.parametrize(
        "graph, size",
        [
            (path_graph(6), 3),
            (path_graph(7), 3),
            (cycle_graph(9), 4),  # odd cycle needs a blossom
            (cycle_graph(10), 5),
            (complete_graph(7), 3),
            (complete_bipartite_graph(3, 5), 3),
            (star_graph(9), 1),
            (grid_graph(4, 4), 8),
        ],
        ids=["P6", "P7", "C9", "C10", "K7", "K35", "star", "grid"],
    )
    def test_known_sizes(self, graph, size):
        m = max_cardinality_matching(graph)
        assert is_matching(graph, m)
        assert len(m) == size

    def test_petersen_graph_perfect_matching(self):
        # The Petersen graph: the classic blossom stress test.
        outer = [(i, (i + 1) % 5) for i in range(5)]
        inner = [(5 + i, 5 + (i + 2) % 5) for i in range(5)]
        spokes = [(i, i + 5) for i in range(5)]
        g = Graph.from_edges(outer + inner + spokes)
        assert len(max_cardinality_matching(g)) == 5

    def test_nested_triangles_blossom(self):
        # Two triangles sharing chains: nested blossom contraction.
        g = Graph.from_edges(
            [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)]
        )
        m = max_cardinality_matching(g)
        assert is_matching(g, m)
        assert len(m) == 3


class TestMCMRandom:
    @given(
        st.lists(
            st.tuples(st.integers(0, 11), st.integers(0, 11)).filter(
                lambda e: e[0] != e[1]
            ),
            max_size=30,
        ).map(Graph.from_edges)
    )
    @settings(max_examples=80, deadline=None)
    def test_against_networkx(self, g):
        m = max_cardinality_matching(g)
        assert is_matching(g, m)
        expected = nx.max_weight_matching(g.to_networkx(), maxcardinality=True)
        assert len(m) == len(expected)

    def test_planar_instance(self):
        g = delaunay_planar_graph(120, seed=1)
        m = max_cardinality_matching(g)
        assert is_matching(g, m)
        expected = nx.max_weight_matching(g.to_networkx(), maxcardinality=True)
        assert len(m) == len(expected)


class TestMWMStructured:
    def test_prefers_heavy_edge_over_two_light(self):
        g = Graph.from_weighted_edges([(0, 1, 10.0), (1, 2, 3.0), (2, 3, 3.0)])
        m = max_weight_matching(g)
        assert matching_weight(g, m) == 13.0

    def test_heavy_middle_edge_wins(self):
        g = Graph.from_weighted_edges([(0, 1, 1.0), (1, 2, 5.0), (2, 3, 1.0)])
        m = max_weight_matching(g)
        assert m == {(1, 2)}

    def test_triangle_takes_heaviest(self):
        g = Graph.from_weighted_edges([(0, 1, 3.0), (1, 2, 5.0), (0, 2, 4.0)])
        assert max_weight_matching(g) == {(1, 2)}

    def test_maxcardinality_sacrifices_weight(self):
        # Without the flag: take only the heavy middle edge.  With it:
        # must take two edges.
        g = Graph.from_weighted_edges([(0, 1, 1.0), (1, 2, 10.0), (2, 3, 1.0)])
        plain = max_weight_matching(g)
        maxcard = max_weight_matching(g, maxcardinality=True)
        assert plain == {(1, 2)}
        assert len(maxcard) == 2

    def test_empty_graph(self):
        assert max_weight_matching(Graph()) == set()


class TestMWMRandom:
    @given(weighted_graphs())
    @settings(max_examples=60, deadline=None)
    def test_against_brute_force(self, g):
        m = max_weight_matching(g)
        assert is_matching(g, m)
        opt, _ = brute_force_mwm(g)
        assert matching_weight(g, m) == pytest.approx(opt)

    @given(weighted_graphs())
    @settings(max_examples=60, deadline=None)
    def test_against_networkx(self, g):
        m = max_weight_matching(g)
        expected = nx.max_weight_matching(g.to_networkx())
        expected_weight = sum(g.weight(u, v) for u, v in expected)
        assert matching_weight(g, m) == pytest.approx(expected_weight)

    @given(weighted_graphs())
    @settings(max_examples=40, deadline=None)
    def test_maxcardinality_against_networkx(self, g):
        m = max_weight_matching(g, maxcardinality=True)
        expected = nx.max_weight_matching(g.to_networkx(), maxcardinality=True)
        assert len(m) == len(expected)
        assert matching_weight(g, m) == pytest.approx(
            sum(g.weight(u, v) for u, v in expected)
        )

    def test_planar_weighted_instance(self):
        g = random_integer_weights(
            delaunay_planar_graph(80, seed=2), 100, seed=3
        )
        m = max_weight_matching(g)
        expected = nx.max_weight_matching(g.to_networkx())
        assert matching_weight(g, m) == pytest.approx(
            sum(g.weight(u, v) for u, v in expected)
        )
