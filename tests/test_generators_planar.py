"""Tests for planar and minor-free generators.

Every generated instance is checked for membership in its promised
class by our own exact checkers (and, for planarity, cross-checked with
networkx in test_planarity.py).
"""

import networkx as nx
import pytest

from repro.errors import GraphError
from repro.generators import (
    apex_graph,
    delaunay_planar_graph,
    k_tree,
    maximal_outerplanar_graph,
    partial_k_tree,
    random_planar_graph,
    series_parallel_graph,
    toroidal_grid_graph,
    triangulated_grid_graph,
)
from repro.minors import is_outerplanar, is_planar, is_series_parallel


class TestPlanarGenerators:
    def test_triangulated_grid_planar_and_denser(self):
        from repro.generators import grid_graph

        plain = grid_graph(6, 6)
        tri = triangulated_grid_graph(6, 6)
        assert tri.m > plain.m
        assert is_planar(tri)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_delaunay_planar(self, seed):
        g = delaunay_planar_graph(80, seed=seed)
        assert g.n == 80
        assert g.is_connected()
        assert is_planar(g)
        # Near-triangulation density.
        assert g.m >= 2 * g.n - 10

    def test_delaunay_too_small(self):
        with pytest.raises(GraphError):
            delaunay_planar_graph(2)

    @pytest.mark.parametrize("fraction", [0.4, 0.7, 1.0])
    def test_random_planar_connected_and_planar(self, fraction):
        g = random_planar_graph(60, edge_fraction=fraction, seed=5)
        assert g.is_connected()
        assert is_planar(g)

    def test_random_planar_fraction_scales_edges(self):
        sparse = random_planar_graph(80, edge_fraction=0.4, seed=9)
        dense = random_planar_graph(80, edge_fraction=0.95, seed=9)
        assert sparse.m < dense.m

    @pytest.mark.parametrize("seed", [0, 7])
    def test_maximal_outerplanar(self, seed):
        g = maximal_outerplanar_graph(25, seed=seed)
        assert g.m == 2 * g.n - 3  # maximal outerplanar edge count
        assert is_outerplanar(g)


class TestMinorFreeGenerators:
    def test_k_tree_edge_count(self):
        g = k_tree(30, 3, seed=1)
        # k-tree: C(k+1,2) + (n - k - 1) * k edges.
        assert g.m == 6 + (30 - 4) * 3
        assert g.is_connected()

    def test_k_tree_validation(self):
        with pytest.raises(GraphError):
            k_tree(3, 4)
        with pytest.raises(GraphError):
            k_tree(10, 0)

    def test_k_tree_treewidth_bound_via_degeneracy(self):
        from repro.minors import degeneracy

        g = k_tree(40, 3, seed=2)
        assert degeneracy(g) == 3

    def test_partial_k_tree_connected(self):
        g = partial_k_tree(40, 3, edge_fraction=0.6, seed=3)
        assert g.is_connected()
        assert g.n == 40

    def test_series_parallel_is_treewidth_2(self):
        g = series_parallel_graph(40, seed=4)
        assert is_series_parallel(g)

    def test_toroidal_grid_regular(self):
        g = toroidal_grid_graph(4, 5)
        assert g.n == 20
        assert all(g.degree(v) == 4 for v in g.vertices())
        assert g.m == 40

    def test_toroidal_grid_too_small(self):
        with pytest.raises(GraphError):
            toroidal_grid_graph(2, 5)

    def test_apex_graph_apex_vertex(self):
        g = apex_graph(50, apex_degree_fraction=0.5, seed=6)
        apex = 49
        # Removing the apex leaves a planar graph.
        h = g.copy()
        h.remove_vertex(apex)
        assert is_planar(h)

    def test_apex_nonplanar_possible(self):
        # With a full apex over a triangulation the result contains K_5.
        g = apex_graph(30, apex_degree_fraction=1.0, seed=8)
        assert not is_planar(g)
