"""Tests for topology gathering (Theorem 2.6's routing step)."""

import pytest

from repro.errors import GraphError
from repro.generators import (
    cycle_graph,
    delaunay_planar_graph,
    grid_graph,
    random_integer_weights,
)
from repro.graph import Graph
from repro.routing import gather_topology


class TestTopologyGathering:
    @pytest.mark.parametrize("transport", ["walk", "tree"])
    def test_leader_learns_exact_topology(self, transport):
        g = grid_graph(5, 5)
        result = gather_topology(g, phi=0.15, seed=0, transport=transport)
        assert result.success
        assert result.topology_complete(g)

    def test_weights_travel_with_edges(self):
        g = random_integer_weights(cycle_graph(8), 9, seed=1)
        result = gather_topology(g, phi=0.2, seed=0)
        assert result.success
        for u, v, w in g.weighted_edges():
            assert result.gathered.weight(u, v) == w

    def test_solver_answers_reach_every_vertex(self):
        g = delaunay_planar_graph(40, seed=2)

        def solver(sub, leader, notes):
            return {v: sub.degree(v) for v in sub.vertices()}

        result = gather_topology(g, phi=0.1, solver=solver, seed=0)
        assert result.success
        assert result.answers == {v: g.degree(v) for v in g.vertices()}

    def test_annotations_reach_solver(self):
        g = cycle_graph(6)
        seen = {}

        def solver(sub, leader, notes):
            seen.update(notes)
            return {v: 0 for v in sub.vertices()}

        result = gather_topology(
            g, phi=0.2, solver=solver, seed=0, annotate=lambda v: v * 10
        )
        assert result.success
        assert seen == {v: v * 10 for v in g.vertices()}

    def test_singleton_cluster(self):
        g = Graph()
        g.add_vertex(4)
        result = gather_topology(
            g, phi=1.0, solver=lambda s, l, n: {4: "x"}, seed=0
        )
        assert result.success
        assert result.answers == {4: "x"}
        assert result.leader == 4

    def test_empty_cluster_rejected(self):
        with pytest.raises(GraphError):
            gather_topology(Graph(), phi=0.5)

    def test_failure_reported_not_raised(self):
        g = grid_graph(5, 5)
        result = gather_topology(g, phi=0.15, seed=0, forward_steps=2)
        assert not result.success
        assert result.failure_reason is not None

    def test_leader_is_max_degree(self):
        g = delaunay_planar_graph(30, seed=3)
        result = gather_topology(g, phi=0.1, seed=0)
        assert g.degree(result.leader) == g.max_degree()

    def test_metrics_accumulate_phases(self):
        g = grid_graph(4, 4)
        result = gather_topology(g, phi=0.2, seed=0)
        # Election + orientation + exchange all contribute messages.
        assert result.metrics.total_messages > g.m
        assert result.metrics.max_message_bits > 0
