"""Smoke tests: the fast examples must run clean end to end."""

import runpy
import sys

import pytest

EXAMPLES = [
    "examples/quickstart.py",
    "examples/low_diameter_decomposition.py",
    "examples/network_analytics.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys):
    runpy.run_path(script, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()
