"""Deep unit tests of the walk-exchange protocol internals."""

import pytest

from repro.congest.message import MessageBudget
from repro.errors import RoutingError
from repro.generators import cycle_graph, grid_graph, path_graph, star_graph
from repro.graph import Graph
from repro.routing import walk_exchange
from repro.routing.walk_exchange import default_walk_steps


class TestReverseRouting:
    def test_every_response_reaches_its_origin(self):
        g = grid_graph(4, 4)
        leader = 5
        requests = {v: [(v, i) for i in range(2)] for v in g.vertices()}

        def responder(absorbed):
            return {key: key[0] * 100 + key[1] for key in absorbed}

        result = walk_exchange(g, leader, requests, responder=responder,
                               phi=0.2, seed=0)
        assert result.success
        for v in g.vertices():
            for i in range(2):
                assert result.responses[(v, i)] == v * 100 + i

    def test_token_revisiting_origin_still_answered(self):
        # On a path the walk revisits its origin often; the reverse
        # delivery must still terminate at the origin exactly once.
        g = path_graph(5)
        requests = {v: [(v,)] for v in g.vertices()}
        result = walk_exchange(g, 4, requests, phi=0.2,
                               forward_steps=400, seed=1)
        assert result.success
        assert set(k[0] for k in result.responses) == set(g.vertices())

    def test_leader_multiple_own_tokens(self):
        g = cycle_graph(5)
        requests = {0: [(0, i) for i in range(4)]}

        def responder(absorbed):
            return {key: ("mine", key[1]) for key in absorbed}

        result = walk_exchange(g, 0, requests, responder=responder,
                               phi=0.3, seed=2)
        assert result.success
        assert result.responses[(0, 3)] == ("mine", 3)

    def test_responder_for_unknown_token_rejected(self):
        g = cycle_graph(4)
        requests = {1: [(1,)]}

        def bad_responder(absorbed):
            return {("ghost", 99): "boo"}

        with pytest.raises(RoutingError):
            walk_exchange(g, 0, requests, responder=bad_responder,
                          phi=0.3, seed=3)

    def test_partial_responder_counts_unanswered(self):
        g = cycle_graph(6)
        requests = {v: [(v,)] for v in g.vertices()}

        def half_responder(absorbed):
            return {
                key: "ok" for key in absorbed if key[0] % 2 == 0
            }

        result = walk_exchange(g, 0, requests, responder=half_responder,
                               phi=0.3, seed=4)
        assert not result.success
        assert result.unanswered
        assert all(key[0] % 2 == 1 for key in result.unanswered)


class TestAccounting:
    def test_forward_steps_recorded(self):
        g = cycle_graph(6)
        result = walk_exchange(g, 0, {1: [(1,)]}, phi=0.3,
                               forward_steps=64, seed=5)
        assert result.forward_steps == 64
        # Rounds: forward + reverse + bookkeeping.
        assert result.metrics.rounds <= 2 * 64 + 6

    def test_budget_respects_network_size_override(self):
        g = cycle_graph(4)
        # budget_n raises the allowed message size for small clusters
        # embedded in large networks.
        result = walk_exchange(
            g, 0, {v: [(v,)] for v in g.vertices()}, phi=0.3, seed=6,
            budget_n=1 << 20,
        )
        assert result.success
        assert result.metrics.max_message_bits <= MessageBudget(1 << 20).bits

    def test_no_requests_trivially_succeeds(self):
        g = star_graph(4)
        result = walk_exchange(g, 0, {}, phi=0.3, seed=7)
        assert result.success
        assert result.requests_delivered == {}

    def test_default_walk_steps_monotone(self):
        assert default_walk_steps(100, 0.05) >= default_walk_steps(100, 0.2)
        assert default_walk_steps(1000, 0.1) >= default_walk_steps(10, 0.1)

    def test_default_walk_steps_invalid_phi(self):
        from repro.errors import GraphError

        with pytest.raises(GraphError):
            default_walk_steps(10, 0.0)
