"""Differential harness: fast engine vs. reference engine.

Every algorithm family that runs on the CONGEST simulator is executed
twice — once on the interned fast-path engine, once on the kept-as-
reference dict-based engine — over seeded random graphs, and the two
executions must agree *exactly*: same per-vertex outputs, same
``CongestMetrics.summary()``, same per-round message series, and same
structured traces.  This is the contract that lets the fast engine
evolve aggressively without re-verifying every algorithm on top of it.
"""

import pytest

from repro.congest import (
    CongestSimulator,
    TraceRecorder,
    VertexAlgorithm,
    use_engine,
)
from repro.core.framework import run_framework
from repro.decomposition.mpx import mpx_ldd
from repro.generators import delaunay_planar_graph, gnp_random_graph, k_tree
from repro.routing.gather import gather_topology
from repro.routing.leader import elect_leader
from repro.routing.walk_exchange import walk_exchange

SEEDS = (11, 29, 47)


def _metrics_fingerprint(metrics):
    return (metrics.summary(), metrics.messages_per_round)


def _run_both(runner, seed):
    """Run ``runner(seed)`` under each engine; return both results."""
    with use_engine("reference"):
        ref = runner(seed)
    with use_engine("fast"):
        fast = runner(seed)
    return ref, fast


def _graph_for(seed, n=40):
    return delaunay_planar_graph(n, seed=seed)


class Flood(VertexAlgorithm):
    """Max-ID flooding with a round budget (pure simulator workload)."""

    def __init__(self, budget):
        self.budget = budget
        self.best = None

    def initialize(self, ctx):
        self.best = ctx.vertex
        ctx.broadcast(self.best)

    def step(self, ctx, inbox):
        for payloads in inbox.values():
            for value in payloads:
                if value > self.best:
                    self.best = value
                    ctx.broadcast(self.best)
        if ctx.round_number >= self.budget:
            ctx.halt(self.best)


@pytest.mark.parametrize("seed", SEEDS)
def test_flood_equivalent(seed):
    g = gnp_random_graph(30, 0.15, seed=seed)

    def runner(s):
        sim = CongestSimulator(g, lambda v: Flood(10), seed=s)
        return sim.run(max_rounds=25)

    ref, fast = _run_both(runner, seed)
    assert ref.outputs == fast.outputs
    assert ref.halted == fast.halted
    assert _metrics_fingerprint(ref.metrics) == _metrics_fingerprint(
        fast.metrics
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_leader_election_equivalent(seed):
    g = _graph_for(seed)

    def runner(s):
        return elect_leader(g, seed=s)

    (ref_leader, ref), (fast_leader, fast) = _run_both(runner, seed)
    assert ref_leader == fast_leader
    assert ref.outputs == fast.outputs
    assert _metrics_fingerprint(ref.metrics) == _metrics_fingerprint(
        fast.metrics
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_walk_exchange_equivalent(seed):
    g = _graph_for(seed, n=32)
    leader = max(g.vertices(), key=g.degree)
    requests = {v: [("Q", v)] for v in g.vertices()}

    def runner(s):
        return walk_exchange(g, leader, requests, phi=0.2, seed=s)

    ref, fast = _run_both(runner, seed)
    assert ref.responses == fast.responses
    assert ref.requests_delivered == fast.requests_delivered
    assert ref.undelivered == fast.undelivered
    assert ref.unanswered == fast.unanswered
    assert _metrics_fingerprint(ref.metrics) == _metrics_fingerprint(
        fast.metrics
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_gather_equivalent(seed):
    g = k_tree(28, 3, seed=seed)

    def solver(sub, leader, notes):
        return {v: sub.degree(v) for v in sub.vertices()}

    def runner(s):
        return gather_topology(g, phi=0.2, solver=solver, seed=s)

    ref, fast = _run_both(runner, seed)
    assert ref.leader == fast.leader
    assert ref.answers == fast.answers
    assert ref.success == fast.success
    assert ref.gathered == fast.gathered
    assert _metrics_fingerprint(ref.metrics) == _metrics_fingerprint(
        fast.metrics
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_mpx_equivalent(seed):
    g = _graph_for(seed, n=48)

    def runner(s):
        return mpx_ldd(g, 0.3, seed=s)

    (ref_ldd, ref), (fast_ldd, fast) = _run_both(runner, seed)
    assert ref.outputs == fast.outputs
    assert sorted(map(sorted, ref_ldd.clusters)) == sorted(
        map(sorted, fast_ldd.clusters)
    )
    assert _metrics_fingerprint(ref.metrics) == _metrics_fingerprint(
        fast.metrics
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_expander_framework_equivalent(seed):
    """Full Theorem 2.6 pipeline: decomposition, election, orientation,
    walk routing, and solver answers, end to end on both engines."""
    g = _graph_for(seed, n=56)

    def solver(sub, leader, notes):
        return {v: sub.degree(v) for v in sub.vertices()}

    def runner(s):
        return run_framework(g, 0.9, solver=solver, phi=0.1, seed=s)

    ref, fast = _run_both(runner, seed)
    assert ref.answers == fast.answers
    assert ref.leaders == fast.leaders
    assert [sorted(c.vertices) for c in ref.clusters] == [
        sorted(c.vertices) for c in fast.clusters
    ]
    assert _metrics_fingerprint(ref.metrics) == _metrics_fingerprint(
        fast.metrics
    )


@pytest.mark.parametrize("seed", SEEDS[:2])
def test_traces_equivalent(seed):
    """The structured round traces agree record-for-record."""
    g = gnp_random_graph(24, 0.2, seed=seed)
    traces = {}
    for engine in ("reference", "fast"):
        rec = TraceRecorder(engine)
        sim = CongestSimulator(
            g, lambda v: Flood(8), seed=seed, engine=engine, trace=rec
        )
        sim.run(max_rounds=20)
        traces[engine] = rec
    ref, fast = traces["reference"], traces["fast"]
    assert len(ref.rounds) == len(fast.rounds)
    for a, b in zip(ref.rounds, fast.rounds):
        assert a == b


@pytest.mark.parametrize("seed", SEEDS)
def test_rounds_counter_matches_metrics(seed):
    """Satellite: metrics.rounds equals the rounds actually executed."""
    g = gnp_random_graph(26, 0.18, seed=seed)
    for engine in ("reference", "fast"):
        sim = CongestSimulator(g, lambda v: Flood(9), seed=seed, engine=engine)
        result = sim.run(max_rounds=30)
        assert result.metrics.rounds == sim.rounds_executed
