"""Tests for the minimum dominating set extension."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dominating_set import (
    distributed_mds,
    exact_mds,
    greedy_mds,
    is_dominating_set,
    solve_mds,
)
from repro.errors import SolverError
from repro.generators import (
    complete_graph,
    cycle_graph,
    delaunay_planar_graph,
    gnp_random_graph,
    grid_graph,
    path_graph,
    random_tree,
    star_graph,
)
from repro.graph import Graph


def brute_force_mds_size(g: Graph) -> int:
    from itertools import combinations

    vertices = g.vertices()
    for size in range(0, g.n + 1):
        for combo in combinations(vertices, size):
            if is_dominating_set(g, combo):
                return size
    return g.n


class TestValidator:
    def test_accepts_full_set(self):
        g = cycle_graph(5)
        assert is_dominating_set(g, g.vertices())

    def test_rejects_non_dominating(self):
        g = path_graph(5)
        assert not is_dominating_set(g, {0})

    def test_rejects_foreign_vertices(self):
        g = path_graph(3)
        assert not is_dominating_set(g, {99})

    def test_empty_graph(self):
        assert is_dominating_set(Graph(), set())


class TestExact:
    @pytest.mark.parametrize(
        "graph, gamma",
        [
            (star_graph(9), 1),
            (path_graph(6), 2),
            (path_graph(7), 3),
            (cycle_graph(9), 3),
            (complete_graph(5), 1),
            (grid_graph(3, 3), 3),
        ],
        ids=["star", "P6", "P7", "C9", "K5", "grid3"],
    )
    def test_known_values(self, graph, gamma):
        result = exact_mds(graph)
        assert is_dominating_set(graph, result)
        assert len(result) == gamma

    @given(
        st.lists(
            st.tuples(st.integers(0, 8), st.integers(0, 8)).filter(
                lambda e: e[0] != e[1]
            ),
            max_size=16,
        ).map(Graph.from_edges)
    )
    @settings(max_examples=40, deadline=None)
    def test_against_brute_force(self, g):
        result = exact_mds(g)
        assert is_dominating_set(g, result)
        assert len(result) == brute_force_mds_size(g)

    def test_budget_raises(self):
        g = gnp_random_graph(40, 0.2, seed=1)
        with pytest.raises(SolverError):
            exact_mds(g, node_budget=3)

    def test_planar_instance(self):
        g = delaunay_planar_graph(50, seed=2)
        result = exact_mds(g)
        assert is_dominating_set(g, result)
        assert len(result) <= len(greedy_mds(g))


class TestGreedyAndSolve:
    def test_greedy_is_dominating(self):
        for seed in range(4):
            g = delaunay_planar_graph(60, seed=seed)
            assert is_dominating_set(g, greedy_mds(g))

    def test_greedy_star_optimal(self):
        assert greedy_mds(star_graph(10)) == {0}

    def test_solve_falls_back(self):
        g = gnp_random_graph(40, 0.2, seed=3)
        result = solve_mds(g, node_budget=3)
        assert is_dominating_set(g, result)


class TestDistributed:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_ratio_on_bounded_degree_planar(self, seed):
        g = grid_graph(7, 7)
        epsilon = 0.3
        result = distributed_mds(g, epsilon, seed=seed)
        assert is_dominating_set(g, result.dominating_set)
        opt = len(exact_mds(g))
        assert result.size <= (1 + epsilon) * opt

    def test_ratio_on_delaunay(self):
        g = delaunay_planar_graph(60, seed=4)
        result = distributed_mds(g, 0.3, seed=5)
        opt = len(exact_mds(g))
        assert result.size <= 1.3 * opt

    def test_tree_instance(self):
        g = random_tree(50, seed=6)
        result = distributed_mds(g, 0.4, seed=7)
        assert is_dominating_set(g, result.dominating_set)

    def test_invalid_epsilon(self):
        with pytest.raises(SolverError):
            distributed_mds(grid_graph(3, 3), 1.5)
