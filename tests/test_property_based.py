"""Hypothesis property tests for cross-module invariants.

These run the core machinery on arbitrary generated graphs (not just
the curated families) and assert the invariants that must hold
unconditionally: partitions cover, certificates are sound, exchanges
account every token, and exact solvers dominate heuristics.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.decomposition import expander_decomposition
from repro.graph import Graph
from repro.matching import (
    greedy_weight_matching,
    is_matching,
    matching_weight,
    max_cardinality_matching,
    max_weight_matching,
)
from repro.independent_set import exact_maxis, greedy_min_degree_is
from repro.spectral import cheeger_bounds


def edge_lists(max_vertex=11, max_edges=30):
    return st.lists(
        st.tuples(
            st.integers(0, max_vertex), st.integers(0, max_vertex)
        ).filter(lambda e: e[0] != e[1]),
        max_size=max_edges,
    )


def graphs():
    return edge_lists().map(Graph.from_edges)


def weighted_graphs():
    return st.lists(
        st.tuples(
            st.integers(0, 9), st.integers(0, 9), st.integers(1, 9)
        ).filter(lambda e: e[0] != e[1]),
        max_size=24,
    ).map(
        lambda edges: Graph.from_weighted_edges(
            [(u, v, float(w)) for u, v, w in edges]
        )
    )


class TestDecompositionInvariants:
    @given(graphs(), st.sampled_from([0.2, 0.4, 0.6]))
    @settings(max_examples=50, deadline=None)
    def test_partition_covers_and_certifies(self, g, epsilon):
        assume(g.n >= 1)
        dec = expander_decomposition(
            g, epsilon, seed=0, enforce_budget=False
        )
        covered = set()
        for cluster in dec.clusters:
            assert not (covered & cluster)
            covered |= cluster
        assert covered == set(g.vertices())
        assert len(dec.certificates) == len(dec.clusters)
        # Every cut edge crosses clusters; no intra-cluster cut edges.
        assignment = dec.cluster_of()
        for u, v in dec.cut_edges:
            assert assignment[u] != assignment[v]

    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_cheeger_order(self, g):
        assume(g.n >= 2 and g.m >= 1)
        low, high = cheeger_bounds(g)
        assert low <= high + 1e-9
        assert low >= -1e-9


class TestSolverDominance:
    @given(weighted_graphs())
    @settings(max_examples=40, deadline=None)
    def test_exact_mwm_dominates_greedy(self, g):
        exact = matching_weight(g, max_weight_matching(g))
        greedy = matching_weight(g, greedy_weight_matching(g))
        assert exact >= greedy - 1e-9

    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_exact_maxis_dominates_greedy(self, g):
        assert len(exact_maxis(g)) >= len(greedy_min_degree_is(g))

    @given(weighted_graphs())
    @settings(max_examples=40, deadline=None)
    def test_mcm_at_least_mwm_cardinality(self, g):
        mcm = max_cardinality_matching(g)
        mwm = max_weight_matching(g)
        assert is_matching(g, mcm)
        assert len(mcm) >= len(mwm)


class TestGraphAlgebra:
    @given(graphs(), st.sets(st.integers(0, 11)))
    @settings(max_examples=50, deadline=None)
    def test_boundary_consistency(self, g, side):
        side = {v for v in side if v in g}
        boundary = g.boundary(side)
        assert len(boundary) == g.cut_size(side)
        for u, v in boundary:
            assert (u in side) != (v in side)

    @given(graphs())
    @settings(max_examples=50, deadline=None)
    def test_subgraph_edge_monotone(self, g):
        vertices = g.vertices()[: max(0, g.n // 2)]
        sub = g.subgraph(vertices)
        assert sub.m <= g.m
        for u, v in sub.edges():
            assert g.has_edge(u, v)
