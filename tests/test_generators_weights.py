"""Tests for weight and sign workload generators."""

import pytest

from repro.errors import GraphError
from repro.generators import (
    grid_graph,
    planted_signs,
    random_integer_weights,
    random_signs,
    with_weights,
)
from repro.graph import edge_key


class TestIntegerWeights:
    def test_weights_in_range(self):
        g = random_integer_weights(grid_graph(5, 5), 10, seed=1)
        for _u, _v, w in g.weighted_edges():
            assert 1 <= w <= 10
            assert float(w).is_integer()

    def test_topology_preserved(self):
        base = grid_graph(4, 4)
        g = random_integer_weights(base, 5, seed=2)
        assert set(g.edges()) == set(base.edges())

    def test_invalid_max_weight(self):
        with pytest.raises(GraphError):
            random_integer_weights(grid_graph(2, 2), 0)

    def test_deterministic(self):
        a = random_integer_weights(grid_graph(4, 4), 9, seed=3)
        b = random_integer_weights(grid_graph(4, 4), 9, seed=3)
        assert a == b

    def test_with_weights_override(self):
        g = with_weights(grid_graph(2, 2), {edge_key(0, 1): 7.0})
        assert g.weight(0, 1) == 7.0

    def test_with_weights_missing_edge(self):
        with pytest.raises(GraphError):
            with_weights(grid_graph(2, 2), {edge_key(0, 3): 7.0})


class TestSigns:
    def test_random_signs_cover_all_edges(self):
        g = grid_graph(5, 5)
        signs = random_signs(g, 0.5, seed=4)
        assert len(signs) == g.m
        assert set(signs.values()) <= {1, -1}

    def test_random_signs_extremes(self):
        g = grid_graph(4, 4)
        assert set(random_signs(g, 1.0, seed=1).values()) == {1}
        assert set(random_signs(g, 0.0, seed=1).values()) == {-1}

    def test_planted_signs_no_noise_consistent(self):
        g = grid_graph(6, 6)
        signs, community = planted_signs(g, 3, noise=0.0, seed=5)
        for u, v in g.edges():
            expected = 1 if community[u] == community[v] else -1
            assert signs[edge_key(u, v)] == expected

    def test_planted_signs_noise_flips_some(self):
        g = grid_graph(8, 8)
        clean, community = planted_signs(g, 2, noise=0.0, seed=6)
        noisy, _ = planted_signs(g, 2, noise=0.3, seed=6)
        # Same seed, same communities, but noise must flip something.
        flipped = sum(
            1 for e in clean if clean[e] != noisy[e]
        )
        assert flipped > 0

    def test_planted_signs_validation(self):
        g = grid_graph(3, 3)
        with pytest.raises(GraphError):
            planted_signs(g, 0)
        with pytest.raises(GraphError):
            planted_signs(g, 2, noise=1.5)
