"""Exactness contract of the batched MT19937 stream.

:class:`repro.routing._mt_stream.MTStream` claims to be a word-for-word
clone of ``random.Random``: same raw 32-bit words, same ``random()``
floats, same ``_randbelow`` rejection consumption, and a ``commit``
that lets scalar draws continue the stream seamlessly.  These tests pin
each of those claims directly against CPython's generator, then run
whole walk exchanges with vectorization forced on and forced off and
assert the executions are identical — the guarantee that makes
``VECTOR_THRESHOLD`` a pure performance knob.
"""

import importlib
import math
import random

import pytest

from repro.generators import k_tree
from repro.routing import walk_exchange
from repro.routing._mt_stream import HAVE_NUMPY, MTStream

# The package re-exports the walk_exchange *function* under the same
# name as its defining module; go through importlib for the module.
walk_exchange_module = importlib.import_module("repro.routing.walk_exchange")

pytestmark = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")

#: More than two full twist blocks (624 words each), so the vectorized
#: state transition is exercised repeatedly, not just the tempering.
LONG = 1500


def test_word_stream_matches_getrandbits():
    ours, theirs = random.Random(42), random.Random(42)
    words = MTStream(ours).words(LONG)
    assert [int(w) for w in words] == [
        theirs.getrandbits(32) for _ in range(LONG)
    ]


def test_random_batch_matches_random():
    ours, theirs = random.Random(7), random.Random(7)
    batch = MTStream(ours).random_batch(LONG)
    assert [float(x) for x in batch] == [
        theirs.random() for _ in range(LONG)
    ]


@pytest.mark.parametrize("n", [1, 2, 3, 5, 6, 17, 100, 2**31 - 1])
def test_randbelow_batch_matches_randbelow(n):
    ours, theirs = random.Random(n), random.Random(n)
    batch = MTStream(ours).randbelow_batch(n, 400)
    expected = [theirs._randbelow(n) for _ in range(400)]
    assert [int(x) for x in batch] == expected
    assert all(0 <= value < n for value in expected)


def test_commit_resumes_scalar_stream_exactly():
    ours, theirs = random.Random(99), random.Random(99)
    # Desynchronize from a fresh state: adopt mid-block, mid-word-pair.
    ours.random(), ours.getrandbits(13)
    theirs.random(), theirs.getrandbits(13)
    stream = MTStream(ours)
    reference = [theirs.random() for _ in range(10)]
    assert [float(x) for x in stream.random_batch(10)] == reference
    stream.commit()
    assert ours.getstate() == theirs.getstate()
    assert ours.random() == theirs.random()


def test_randbelow_batch_rejects_nonpositive():
    with pytest.raises(ValueError):
        MTStream(random.Random(0)).randbelow_batch(0, 3)


def test_randbelow_batch_rejects_multiword_bounds():
    with pytest.raises(ValueError):
        MTStream(random.Random(0)).randbelow_batch(2**32, 3)


def _run_exchange():
    g = k_tree(60, 3, seed=5)
    leader = max(g.vertices(), key=g.degree)
    requests = {v: [(v, 1)] for v in g.vertices()}
    return walk_exchange(
        g, leader, requests, phi=0.1, forward_steps=192, seed=8
    )


def test_walk_exchange_invariant_under_threshold(monkeypatch):
    """Forced-scalar and forced-vector executions are identical."""
    monkeypatch.setattr(walk_exchange_module, "VECTOR_THRESHOLD", 1)
    vectorized = _run_exchange()
    monkeypatch.setattr(
        walk_exchange_module, "VECTOR_THRESHOLD", math.inf
    )
    scalar = _run_exchange()
    assert vectorized.requests_delivered == scalar.requests_delivered
    assert vectorized.responses == scalar.responses
    assert vectorized.undelivered == scalar.undelivered
    assert vectorized.unanswered == scalar.unanswered
    assert vectorized.metrics.summary() == scalar.metrics.summary()


def test_module_is_a_shim_for_repro_rng():
    """The stream moved to :mod:`repro.rng`; the old path re-exports."""
    from repro import rng

    assert MTStream is rng.MTStream
    assert HAVE_NUMPY == rng.HAVE_NUMPY


# ----------------------------------------------------------------------
# Property-based interleavings (satellite for the kernel layer): any
# mixture of scalar draws and vectorized blocks on one shared stream
# must walk the exact same MT19937 word sequence as random.Random.
# ----------------------------------------------------------------------

@pytest.mark.parametrize("case_seed", range(12))
def test_random_interleavings_match_scalar_stream(case_seed):
    driver = random.Random(1000 + case_seed)
    seed = driver.getrandbits(48)
    ours, theirs = random.Random(seed), random.Random(seed)
    stream = None
    for _op in range(40):
        kind = driver.randrange(5)
        if kind == 0:
            # Scalar float draws; any open stream must commit first.
            if stream is not None:
                stream.commit()
                stream = None
            count = driver.randrange(1, 8)
            assert [ours.random() for _ in range(count)] == [
                theirs.random() for _ in range(count)
            ]
        elif kind == 1:
            # Scalar getrandbits, including partial-word widths — the
            # commit must cope with a consumer that left the generator
            # mid-state in every way random.Random can.
            if stream is not None:
                stream.commit()
                stream = None
            bits = driver.randrange(1, 128)
            assert ours.getrandbits(bits) == theirs.getrandbits(bits)
        elif kind == 2:
            if stream is None:
                stream = MTStream(ours)
            count = driver.randrange(1, 700)
            assert [float(x) for x in stream.random_batch(count)] == [
                theirs.random() for _ in range(count)
            ]
        elif kind == 3:
            if stream is None:
                stream = MTStream(ours)
            count = driver.randrange(1, 700)
            assert [int(w) for w in stream.words(count)] == [
                theirs.getrandbits(32) for _ in range(count)
            ]
        else:
            if stream is None:
                stream = MTStream(ours)
            bound = driver.randrange(1, 1 << driver.randrange(1, 33))
            count = driver.randrange(1, 120)
            assert [
                int(x) for x in stream.randbelow_batch(bound, count)
            ] == [theirs._randbelow(bound) for _ in range(count)]
    if stream is not None:
        stream.commit()
    assert ours.getstate() == theirs.getstate()


@pytest.mark.parametrize("case_seed", range(6))
def test_mt_column_interleaves_with_scalar_draws(case_seed):
    """The kernels' per-vertex columns stay equal to ``random.Random``
    under ragged vectorized draws interleaved with scalar consumption
    (commit-back through ``state_of`` after partial block use)."""
    np = pytest.importorskip("numpy")
    from repro.rng import MTColumn, fresh_random_from_state

    driver = random.Random(2000 + case_seed)
    n = 6
    seeds = [driver.getrandbits(32) for _ in range(n)]
    scalars = [random.Random(s) for s in seeds]
    col = MTColumn(n)
    col.adopt_seeds(np.arange(n), seeds)
    for _op in range(25):
        rows = np.array(
            sorted(driver.sample(range(n), driver.randrange(1, n + 1))),
            dtype=np.intp,
        )
        kind = driver.randrange(3)
        if kind == 0:
            drawn = col.random_column(rows)
            for row, value in zip(rows.tolist(), drawn.tolist()):
                assert value == scalars[row].random()
        elif kind == 1:
            bounds = np.array(
                [driver.randrange(1, 50) for _ in rows], dtype=np.int64
            )
            drawn = col.randbelow_column(rows, bounds)
            for row, bound, value in zip(
                rows.tolist(), bounds.tolist(), drawn.tolist()
            ):
                assert value == scalars[row]._randbelow(bound)
        else:
            # Commit one row back to a scalar generator, draw there,
            # and re-adopt: partial consumption must survive the trip.
            row = int(rows[0])
            rebuilt = fresh_random_from_state(col.state_of(row))
            assert rebuilt.getstate() == scalars[row].getstate()
            assert rebuilt.random() == scalars[row].random()
            col.adopt_state(row, rebuilt)
    for row in range(n):
        assert col.state_of(row) == scalars[row].getstate()
