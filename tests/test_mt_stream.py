"""Exactness contract of the batched MT19937 stream.

:class:`repro.routing._mt_stream.MTStream` claims to be a word-for-word
clone of ``random.Random``: same raw 32-bit words, same ``random()``
floats, same ``_randbelow`` rejection consumption, and a ``commit``
that lets scalar draws continue the stream seamlessly.  These tests pin
each of those claims directly against CPython's generator, then run
whole walk exchanges with vectorization forced on and forced off and
assert the executions are identical — the guarantee that makes
``VECTOR_THRESHOLD`` a pure performance knob.
"""

import importlib
import math
import random

import pytest

from repro.generators import k_tree
from repro.routing import walk_exchange
from repro.routing._mt_stream import HAVE_NUMPY, MTStream

# The package re-exports the walk_exchange *function* under the same
# name as its defining module; go through importlib for the module.
walk_exchange_module = importlib.import_module("repro.routing.walk_exchange")

pytestmark = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")

#: More than two full twist blocks (624 words each), so the vectorized
#: state transition is exercised repeatedly, not just the tempering.
LONG = 1500


def test_word_stream_matches_getrandbits():
    ours, theirs = random.Random(42), random.Random(42)
    words = MTStream(ours).words(LONG)
    assert [int(w) for w in words] == [
        theirs.getrandbits(32) for _ in range(LONG)
    ]


def test_random_batch_matches_random():
    ours, theirs = random.Random(7), random.Random(7)
    batch = MTStream(ours).random_batch(LONG)
    assert [float(x) for x in batch] == [
        theirs.random() for _ in range(LONG)
    ]


@pytest.mark.parametrize("n", [1, 2, 3, 5, 6, 17, 100, 2**31 - 1])
def test_randbelow_batch_matches_randbelow(n):
    ours, theirs = random.Random(n), random.Random(n)
    batch = MTStream(ours).randbelow_batch(n, 400)
    expected = [theirs._randbelow(n) for _ in range(400)]
    assert [int(x) for x in batch] == expected
    assert all(0 <= value < n for value in expected)


def test_commit_resumes_scalar_stream_exactly():
    ours, theirs = random.Random(99), random.Random(99)
    # Desynchronize from a fresh state: adopt mid-block, mid-word-pair.
    ours.random(), ours.getrandbits(13)
    theirs.random(), theirs.getrandbits(13)
    stream = MTStream(ours)
    reference = [theirs.random() for _ in range(10)]
    assert [float(x) for x in stream.random_batch(10)] == reference
    stream.commit()
    assert ours.getstate() == theirs.getstate()
    assert ours.random() == theirs.random()


def test_randbelow_batch_rejects_nonpositive():
    with pytest.raises(ValueError):
        MTStream(random.Random(0)).randbelow_batch(0, 3)


def _run_exchange():
    g = k_tree(60, 3, seed=5)
    leader = max(g.vertices(), key=g.degree)
    requests = {v: [(v, 1)] for v in g.vertices()}
    return walk_exchange(
        g, leader, requests, phi=0.1, forward_steps=192, seed=8
    )


def test_walk_exchange_invariant_under_threshold(monkeypatch):
    """Forced-scalar and forced-vector executions are identical."""
    monkeypatch.setattr(walk_exchange_module, "VECTOR_THRESHOLD", 1)
    vectorized = _run_exchange()
    monkeypatch.setattr(
        walk_exchange_module, "VECTOR_THRESHOLD", math.inf
    )
    scalar = _run_exchange()
    assert vectorized.requests_delivered == scalar.requests_delivered
    assert vectorized.responses == scalar.responses
    assert vectorized.undelivered == scalar.undelivered
    assert vectorized.unanswered == scalar.unanswered
    assert vectorized.metrics.summary() == scalar.metrics.summary()
