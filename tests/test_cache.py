"""Correctness contract of the content-addressed artifact cache.

The cache is only admissible because a hit is *bit-transparent*: for
one key the stored bytes are a pure function of the inputs, any input
change (param, seed, code salt) changes the key, and a damaged entry
degrades to a recompute rather than an error.  Each of those clauses is
pinned here, along with the LRU memory tier and the ``activate``
scoping the runner relies on.
"""

import os
import pickle
import shutil

import pytest

from repro.cache import (
    ArtifactCache,
    CacheStats,
    activate,
    active_cache,
    cache_key,
    cached_expander_decomposition,
    cached_graph,
    code_salt,
    graph_fingerprint,
    simulation_salt,
)
from repro.decomposition import expander_decomposition
from repro.generators import delaunay_planar_graph


FIXTURES = os.path.join(os.path.dirname(__file__), "data")


@pytest.fixture
def cache(tmp_path):
    return ArtifactCache(root=str(tmp_path / "cache"))


# ----------------------------------------------------------------------
# Keys
# ----------------------------------------------------------------------

def test_same_inputs_same_key_and_identical_bytes(cache):
    params = {"n": 32, "seed": 3}
    key_a = cache_key("graph", "delaunay", params, seed=3)
    key_b = cache_key("graph", "delaunay", dict(reversed(params.items())),
                      seed=3)
    assert key_a == key_b  # dict order is canonicalized away

    g1 = cached_graph("delaunay", {"n": 32, "seed": 3}, cache=cache)
    g2 = cached_graph("delaunay", {"n": 32, "seed": 3}, cache=cache)
    assert pickle.dumps(g1, protocol=4) == pickle.dumps(g2, protocol=4)
    assert cache.stats.misses == 1 and cache.stats.hits == 1


@pytest.mark.parametrize(
    "variant",
    [
        {"params": {"n": 33, "seed": 3}, "seed": 3, "salt": None},
        {"params": {"n": 32, "seed": 4}, "seed": 3, "salt": None},
        {"params": {"n": 32, "seed": 3}, "seed": 4, "salt": None},
        {"params": {"n": 32, "seed": 3}, "seed": 3, "salt": "other-code"},
    ],
)
def test_any_input_change_changes_key(variant):
    base = cache_key("graph", "delaunay", {"n": 32, "seed": 3}, seed=3)
    assert base != cache_key(
        "graph", "delaunay", variant["params"],
        seed=variant["seed"], salt=variant["salt"],
    )


def test_float_params_key_on_exact_bits():
    key_a = cache_key("k", "n", {"phi": 0.1}, seed=0)
    key_b = cache_key("k", "n", {"phi": 0.1 + 1e-18}, seed=0)
    key_c = cache_key("k", "n", {"phi": 0.2}, seed=0)
    assert key_a == key_b  # same double
    assert key_a != key_c


def test_salts_are_hex_and_distinct():
    assert len(code_salt()) == 64
    assert len(simulation_salt()) == 64
    assert code_salt() != simulation_salt()


# ----------------------------------------------------------------------
# Tiers and failure modes
# ----------------------------------------------------------------------

def test_disk_hit_after_fresh_process_equivalent(tmp_path):
    root = str(tmp_path / "cache")
    first = ArtifactCache(root=root)
    g1 = cached_graph("grid", {"rows": 4, "cols": 5}, cache=first)
    assert first.stats.misses == 1

    second = ArtifactCache(root=root)  # cold memory tier, warm disk
    g2 = cached_graph("grid", {"rows": 4, "cols": 5}, cache=second)
    assert second.stats.disk_hits == 1 and second.stats.misses == 0
    assert pickle.dumps(g1, protocol=4) == pickle.dumps(g2, protocol=4)


def test_corrupted_entry_recomputes_not_crashes(tmp_path):
    root = str(tmp_path / "cache")
    cache = ArtifactCache(root=root, memory_items=0)  # force disk path
    cached_graph("cycle", {"n": 9}, cache=cache)

    entries = [
        os.path.join(dirpath, name)
        for dirpath, _dirs, names in os.walk(root)
        for name in names
        if name.endswith(".bin")
    ]
    assert len(entries) == 1
    with open(entries[0], "wb") as handle:
        handle.write(b"not a pickle")

    with pytest.warns(RuntimeWarning, match="evicting corrupt cache entry"):
        g = cached_graph("cycle", {"n": 9}, cache=cache)
    assert g.n == 9
    assert cache.stats.corrupt == 1
    assert cache.stats.evictions == 1
    assert cache.stats.misses == 2  # original + recompute
    # The rewritten entry is healthy again.
    cached_graph("cycle", {"n": 9}, cache=cache)
    assert cache.stats.disk_hits == 1


def test_prepr10_unframed_entry_still_loads(tmp_path):
    """Disk entries written before checksum framing existed are raw
    pickles; they must stay disk hits forever (the committed fixture is
    one such entry), and rehydrate bit-identically to a recompute."""
    cache = ArtifactCache(root=str(tmp_path / "cache"), memory_items=0)
    key = cache.key("graph", "cycle", {"n": 9})
    path = cache._path("graph", key)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    shutil.copy(os.path.join(FIXTURES, "cache_entry_prepr10.bin"), path)
    with open(path, "rb") as handle:
        assert handle.read(4) != b"RSF1"  # genuinely unframed

    g = cached_graph("cycle", {"n": 9}, cache=cache)
    assert cache.stats.disk_hits == 1 and cache.stats.misses == 0
    fresh = cached_graph(
        "cycle", {"n": 9}, cache=ArtifactCache(root=str(tmp_path / "c2"))
    )
    assert pickle.dumps(g, protocol=4) == pickle.dumps(fresh, protocol=4)


def test_new_entries_are_framed_and_flips_are_detected(tmp_path):
    """Freshly written entries carry the storage frame, so a flipped
    bit anywhere in the payload is caught by checksum — evicted and
    recomputed, never silently unpickled."""
    root = str(tmp_path / "cache")
    cache = ArtifactCache(root=root, memory_items=0)
    cached_graph("cycle", {"n": 9}, cache=cache)
    key = cache.key("graph", "cycle", {"n": 9})
    path = cache._path("graph", key)
    with open(path, "rb") as handle:
        blob = bytearray(handle.read())
    assert blob[:4] == b"RSF1"
    blob[-1] ^= 0x01
    with open(path, "wb") as handle:
        handle.write(bytes(blob))

    with pytest.warns(RuntimeWarning, match="evicting corrupt cache entry"):
        g = cached_graph("cycle", {"n": 9}, cache=cache)
    assert g.n == 9
    assert cache.stats.corrupt == 1 and cache.stats.evictions == 1


def test_memory_lru_evicts_oldest(tmp_path):
    cache = ArtifactCache(root=str(tmp_path / "c"), memory_items=2,
                          persist=False)
    for n in (5, 6, 7):  # n=5 evicted when n=7 arrives
        cached_graph("cycle", {"n": n}, cache=cache)
    cached_graph("cycle", {"n": 7}, cache=cache)
    assert cache.stats.memory_hits == 1
    cached_graph("cycle", {"n": 5}, cache=cache)  # gone: recompute
    assert cache.stats.misses == 4


def test_stats_delta_accounting():
    stats = CacheStats()
    before = stats.snapshot()
    stats.misses += 2
    stats.disk_hits += 1
    assert stats.delta_since(before) == {
        "memory_hits": 0, "disk_hits": 1, "misses": 2,
        "stores": 0, "corrupt": 0, "evictions": 0,
    }
    total = CacheStats().add(stats).add({"misses": 1})
    assert total.misses == 3 and total.lookups == 4


# ----------------------------------------------------------------------
# Decomposition artifacts and the activate() scope
# ----------------------------------------------------------------------

def test_cached_decomposition_rehydrates_equal(cache):
    g = delaunay_planar_graph(48, seed=21)
    fresh = expander_decomposition(g, 0.3, phi=0.05, seed=0)
    first = cached_expander_decomposition(g, 0.3, phi=0.05, seed=0,
                                          cache=cache)
    second = cached_expander_decomposition(g, 0.3, phi=0.05, seed=0,
                                           cache=cache)
    assert cache.stats.misses == 1 and cache.stats.hits == 1
    for dec in (first, second):
        assert dec.graph is g
        assert sorted(map(sorted, dec.clusters)) == sorted(
            map(sorted, fresh.clusters)
        )
        assert sorted(dec.cut_edges) == sorted(fresh.cut_edges)
        assert dec.certificates == fresh.certificates


def test_graph_fingerprint_tracks_content():
    a = delaunay_planar_graph(40, seed=1)
    b = delaunay_planar_graph(40, seed=1)
    c = delaunay_planar_graph(40, seed=2)
    assert graph_fingerprint(a) == graph_fingerprint(b)
    assert graph_fingerprint(a) != graph_fingerprint(c)


def test_activate_scoping(cache):
    assert active_cache() is None
    with activate(cache) as installed:
        assert installed is cache and active_cache() is cache
        with activate(None):
            assert active_cache() is None
        assert active_cache() is cache
    assert active_cache() is None


def test_uncached_call_paths_bypass_cleanly(tmp_path):
    # No active cache, none passed: plain computation, no cache files.
    g = cached_graph("cycle", {"n": 6})
    dec = cached_expander_decomposition(g, 0.5, phi=0.05, seed=0)
    assert dec.graph is g
    assert not os.path.exists(str(tmp_path / "never-created"))
