"""Tests for rng helpers, reporting tables, and the error hierarchy."""

import random

import pytest

from repro.analysis import Table, format_ratio
from repro.errors import (
    DecompositionError,
    GraphError,
    MessageTooLargeError,
    ProtocolError,
    ReproError,
    RoutingError,
    SolverError,
)
from repro.rng import derive_seed, ensure_numpy_rng, ensure_rng, split_rng


class TestRng:
    def test_ensure_rng_from_int_is_deterministic(self):
        assert ensure_rng(5).random() == ensure_rng(5).random()

    def test_ensure_rng_passthrough(self):
        rng = random.Random(1)
        assert ensure_rng(rng) is rng

    def test_ensure_numpy_rng(self):
        a = ensure_numpy_rng(3).random()
        b = ensure_numpy_rng(3).random()
        assert a == b

    def test_numpy_passthrough(self):
        import numpy as np

        gen = np.random.default_rng(0)
        assert ensure_numpy_rng(gen) is gen

    def test_split_rng_children_independent(self):
        children = split_rng(random.Random(7), 4)
        values = [c.random() for c in children]
        assert len(set(values)) == 4

    def test_split_rng_negative_rejected(self):
        with pytest.raises(ValueError):
            split_rng(random.Random(0), -1)

    def test_derive_seed_depends_on_stream(self):
        a = derive_seed(random.Random(9), "walk")
        b = derive_seed(random.Random(9), "walk")
        assert isinstance(a, int) and a >= 0
        assert a == b


class TestReporting:
    def test_table_renders_aligned(self):
        t = Table("demo", ["a", "bb"])
        t.add_row(1, 2.5)
        t.add_row(10, 0.333333)
        text = t.render()
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert len({len(line) for line in lines[1:]}) == 1  # aligned

    def test_table_wrong_arity_rejected(self):
        t = Table("demo", ["a"])
        with pytest.raises(ValueError):
            t.add_row(1, 2)

    def test_float_formatting(self):
        t = Table("demo", ["x"])
        t.add_row(0.123456789)
        assert "0.1235" in t.render()

    def test_format_ratio(self):
        assert format_ratio(0.98765) == "0.988"
        assert format_ratio(1.0, digits=1) == "1.0"


class TestErrors:
    def test_hierarchy(self):
        for cls in (
            GraphError,
            MessageTooLargeError,
            ProtocolError,
            DecompositionError,
            RoutingError,
            SolverError,
        ):
            assert issubclass(cls, ReproError)

    def test_message_too_large_fields(self):
        err = MessageTooLargeError(100, 64, detail="x to y")
        assert err.bits == 100
        assert err.budget == 64
        assert "x to y" in str(err)
        assert "100" in str(err)

    def test_catch_all(self):
        with pytest.raises(ReproError):
            raise SolverError("boom")


class TestGeneratorDeterminism:
    def test_all_seeded_generators_are_deterministic(self):
        from repro import generators as G

        cases = [
            lambda s: G.gnp_random_graph(15, 0.3, seed=s),
            lambda s: G.random_tree(20, seed=s),
            lambda s: G.delaunay_planar_graph(30, seed=s),
            lambda s: G.random_planar_graph(30, seed=s),
            lambda s: G.maximal_outerplanar_graph(12, seed=s),
            lambda s: G.k_tree(20, 3, seed=s),
            lambda s: G.partial_k_tree(20, 3, seed=s),
            lambda s: G.series_parallel_graph(20, seed=s),
            lambda s: G.apex_graph(20, seed=s),
        ]
        for make in cases:
            assert make(42) == make(42)

    def test_sign_generators_deterministic(self):
        from repro import generators as G

        g = G.grid_graph(5, 5)
        assert G.random_signs(g, 0.5, seed=3) == G.random_signs(g, 0.5, seed=3)
        a, ca = G.planted_signs(g, 3, seed=4)
        b, cb = G.planted_signs(g, 3, seed=4)
        assert a == b and ca == cb


class TestGatherValidation:
    def test_unknown_transport_rejected(self):
        import pytest as _pytest

        from repro.errors import GraphError
        from repro.generators import cycle_graph
        from repro.routing import gather_topology

        with _pytest.raises(GraphError):
            gather_topology(cycle_graph(4), phi=0.3, transport="pigeon")
