"""Tests for low-diameter decompositions (Theorem 1.5)."""

import math

import pytest

from repro.decomposition import (
    ball_carving_ldd,
    chop_ldd,
    theorem_1_5_ldd,
    verify_ldd,
)
from repro.errors import DecompositionError
from repro.generators import (
    cycle_graph,
    delaunay_planar_graph,
    grid_graph,
    k_tree,
    random_tree,
)


class TestBallCarving:
    @pytest.mark.parametrize("epsilon", [0.15, 0.3, 0.5])
    def test_budget_holds(self, epsilon):
        g = grid_graph(10, 10)
        ldd = ball_carving_ldd(g, epsilon, seed=0)
        report = verify_ldd(ldd)
        assert report["cut_fraction"] <= epsilon

    def test_diameter_bound_log_over_epsilon(self):
        g = delaunay_planar_graph(150, seed=1)
        epsilon = 0.3
        ldd = ball_carving_ldd(g, epsilon, seed=0)
        bound = 4 * math.log(g.m + 2) / epsilon
        assert ldd.max_diameter() <= bound

    def test_invalid_epsilon(self):
        with pytest.raises(DecompositionError):
            ball_carving_ldd(grid_graph(3, 3), 0.0)

    def test_covers_disconnected_graphs(self):
        from repro.graph import Graph

        g = Graph.from_edges([(0, 1), (2, 3)])
        g.add_vertex(9)
        ldd = ball_carving_ldd(g, 0.5, seed=0)
        covered = set().union(*ldd.clusters)
        assert covered == set(g.vertices())


class TestChop:
    @pytest.mark.parametrize("epsilon", [0.2, 0.4])
    def test_diameter_scales_inverse_epsilon(self, epsilon):
        g = grid_graph(14, 14)
        ldd = chop_ldd(g, epsilon, seed=1)
        width = max(2, math.ceil(2 * 3 / epsilon))
        assert ldd.max_diameter() <= 4 * width

    def test_cycle_budget_and_diameter(self):
        """Cycles witness the D = Theta(1/epsilon) optimality remark."""
        g = cycle_graph(120)
        epsilon = 0.2
        ldd = chop_ldd(g, epsilon, seed=2)
        assert ldd.cut_fraction() <= epsilon
        # Each piece is an arc of length >= ~2/epsilon on average:
        # fewer than epsilon * n pieces.
        assert len(ldd.clusters) <= epsilon * g.n + 1

    def test_budget_across_families(self):
        for make, eps in [
            (lambda: grid_graph(12, 12), 0.3),
            (lambda: delaunay_planar_graph(120, seed=3), 0.3),
            (lambda: k_tree(100, 3, seed=4), 0.35),
            (lambda: random_tree(120, seed=5), 0.3),
        ]:
            g = make()
            ldd = chop_ldd(g, eps, seed=6)
            assert ldd.cut_fraction() <= eps, type(g)


class TestTheorem15:
    @pytest.mark.parametrize("sequential", ["chop", "ball"])
    def test_pipeline_budget(self, sequential):
        g = delaunay_planar_graph(90, seed=7)
        epsilon = 0.4
        ldd = theorem_1_5_ldd(g, epsilon, seed=0, sequential=sequential)
        report = verify_ldd(ldd)
        assert report["cut_fraction"] <= epsilon

    def test_pipeline_diameter_inverse_epsilon(self):
        g = grid_graph(12, 12)
        epsilon = 0.4
        ldd = theorem_1_5_ldd(g, epsilon, seed=0)
        # D = O(1/epsilon): constant 12 covers the chop constant stack.
        assert ldd.max_diameter() <= 24 / epsilon

    def test_invalid_sequential(self):
        with pytest.raises(DecompositionError):
            theorem_1_5_ldd(grid_graph(3, 3), 0.3, sequential="nope")

    def test_verify_catches_bad_cut_fraction(self):
        g = cycle_graph(30)
        ldd = ball_carving_ldd(g, 0.3, seed=0)
        ldd.epsilon = 1e-9  # pretend the budget was tiny
        if ldd.cut_edges:
            with pytest.raises(DecompositionError):
                verify_ldd(ldd)

    def test_verify_catches_diameter_violation(self):
        g = grid_graph(8, 8)
        ldd = ball_carving_ldd(g, 0.5, seed=0)
        with pytest.raises(DecompositionError):
            verify_ldd(ldd, max_diameter=0)


class TestWeightedBallCarving:
    def test_weight_budget_holds(self):
        from repro.generators import random_integer_weights

        g = random_integer_weights(grid_graph(10, 10), 50, seed=20)
        epsilon = 0.3
        ldd = ball_carving_ldd(g, epsilon, seed=21, weighted=True)
        assert ldd.cut_weight_fraction() <= epsilon

    def test_weighted_protects_heavy_edges(self):
        from repro.graph import Graph

        # A path with one enormous edge in the middle: the weighted
        # variant must not cut it.
        g = Graph()
        for v in range(19):
            g.add_edge(v, v + 1, 1.0)
        g.add_edge(9, 10, 1000.0)  # reweight the middle edge
        ldd = ball_carving_ldd(g, 0.3, seed=22, weighted=True)
        assignment = ldd.cluster_of()
        assert assignment[9] == assignment[10]

    def test_unweighted_fraction_still_reported(self):
        g = grid_graph(8, 8)
        ldd = ball_carving_ldd(g, 0.4, seed=23, weighted=True)
        # On a unit-weight graph both fractions coincide.
        assert ldd.cut_weight_fraction() == pytest.approx(
            ldd.cut_fraction()
        )

    def test_cut_weight_fraction_empty(self):
        from repro.graph import Graph

        g = Graph()
        g.add_vertex(0)
        ldd = ball_carving_ldd(g, 0.3, seed=24)
        assert ldd.cut_weight_fraction() == 0.0
