"""Metrics aggregation, structured round tracing, and fast-forward laws.

Covers the accounting layer around the engines:

* ``CongestMetrics.merge`` composes phase metrics correctly;
* ``metrics.rounds`` equals the number of rounds the simulator
  executed (no off-by-one between the counter and the aggregate);
* ``RoundTrace`` / ``TraceRecorder`` export: per-round counts, histogram
  totals, and an exact JSONL round-trip;
* a seeded property-based check that fast-forwarding (idle hints) never
  changes ``rounds``, ``effective_rounds``, or outputs relative to the
  same algorithm stepped every round.
"""

import random

import pytest

from repro.congest import (
    CongestMetrics,
    CongestSimulator,
    RoundTrace,
    TraceRecorder,
    TraceSession,
    VertexAlgorithm,
)
from repro.generators import cycle_graph, path_graph, star_graph

ENGINES = ("fast", "reference")


class TestMetricsMerge:
    def test_merge_sums_and_maxes(self):
        a = CongestMetrics(
            rounds=10,
            effective_rounds=14,
            total_messages=100,
            total_bits=900,
            max_message_bits=32,
            max_edge_congestion=3,
            messages_per_round=[10] * 10,
        )
        b = CongestMetrics(
            rounds=5,
            effective_rounds=5,
            total_messages=7,
            total_bits=70,
            max_message_bits=48,
            max_edge_congestion=1,
            messages_per_round=[1, 2, 1, 2, 1],
        )
        merged = a.merge(b)
        assert merged.rounds == 15
        assert merged.effective_rounds == 19
        assert merged.total_messages == 107
        assert merged.total_bits == 970
        assert merged.max_message_bits == 48
        assert merged.max_edge_congestion == 3
        assert merged.messages_per_round == [10] * 10 + [1, 2, 1, 2, 1]

    def test_merge_leaves_operands_untouched(self):
        a = CongestMetrics(rounds=1, messages_per_round=[0])
        b = CongestMetrics(rounds=2, messages_per_round=[3, 4])
        a.merge(b)
        assert a.rounds == 1 and a.messages_per_round == [0]
        assert b.rounds == 2 and b.messages_per_round == [3, 4]

    def test_merge_matches_single_combined_run(self):
        # Running two phases back to back and merging their metrics must
        # equal folding both phases' rounds into one metrics object.
        combined = CongestMetrics()
        phase1 = CongestMetrics()
        phase2 = CongestMetrics()
        for target, rounds in ((phase1, [({0: 2}, 2, 20)]),
                               (phase2, [({}, 0, 0), ({1: 1}, 1, 8)])):
            for per_edge, msgs, bits in rounds:
                target.record_round(per_edge, msgs, bits)
                combined.record_round(per_edge, msgs, bits)
        assert phase1.merge(phase2).summary() == combined.summary()


class CountDown(VertexAlgorithm):
    """Halt after a fixed number of rounds, broadcasting each round."""

    def __init__(self, rounds):
        self.rounds = rounds

    def initialize(self, ctx):
        ctx.broadcast(0)

    def step(self, ctx, inbox):
        if ctx.round_number >= self.rounds:
            ctx.halt(ctx.round_number)
        else:
            ctx.broadcast(ctx.round_number)


@pytest.mark.parametrize("engine", ENGINES)
class TestRoundsCounterAgreement:
    def test_metrics_rounds_equals_rounds_executed(self, engine):
        sim = CongestSimulator(
            cycle_graph(6), lambda v: CountDown(7), seed=0, engine=engine
        )
        result = sim.run(50)
        assert result.halted
        assert result.metrics.rounds == sim.rounds_executed == 7

    def test_truncated_run_counts_executed_rounds(self, engine):
        sim = CongestSimulator(
            cycle_graph(6), lambda v: CountDown(100), seed=0, engine=engine
        )
        result = sim.run(max_rounds=9)
        assert not result.halted
        assert result.metrics.rounds == sim.rounds_executed == 9


@pytest.mark.parametrize("engine", ENGINES)
class TestTraceExport:
    def _traced_run(self, engine):
        trace = TraceRecorder(label="unit")
        sim = CongestSimulator(
            star_graph(4), lambda v: CountDown(4), seed=3,
            engine=engine, trace=trace,
        )
        result = sim.run(20)
        return result, trace

    def test_per_round_counts_sum_to_metrics(self, engine):
        result, trace = self._traced_run(engine)
        assert trace.total_messages() == result.metrics.total_messages
        assert trace.total_bits() == result.metrics.total_bits
        assert trace.total_rounds() == result.metrics.rounds
        assert trace.max_congestion() == result.metrics.max_edge_congestion
        assert [r.messages for r in trace.rounds] == (
            result.metrics.messages_per_round
        )

    def test_histogram_totals_match_message_counts(self, engine):
        _, trace = self._traced_run(engine)
        for r in trace.rounds:
            # Σ multiplicity * edge-count == messages delivered that round.
            assert sum(
                mult * edges for mult, edges in r.congestion_histogram.items()
            ) == r.messages
            assert r.max_congestion == max(r.congestion_histogram, default=0)

    def test_stepped_idle_halted_partition_vertices(self, engine):
        result, trace = self._traced_run(engine)
        n = 5
        # stepped + idle is the live population entering the round;
        # together with the vertices already halted it covers all n.
        prev_halted = 0
        for r in trace.rounds:
            assert r.stepped >= 0 and r.idle >= 0 and r.halted >= 0
            assert r.stepped + r.idle + prev_halted == n
            prev_halted = r.halted
        # Everyone halts by the final recorded round.
        assert result.halted
        assert trace.rounds[-1].halted == n

    def test_jsonl_round_trip_is_exact(self, engine, tmp_path):
        _, trace = self._traced_run(engine)
        path = str(tmp_path / "trace.jsonl")
        trace.write_jsonl(path)
        back = TraceRecorder.read_jsonl(path)
        assert back.label == trace.label
        assert back.rounds == trace.rounds
        assert back.summary() == trace.summary()
        # And dict-level round-trip, independent of the file layer.
        for r in trace.rounds:
            assert RoundTrace.from_dict(r.to_dict()) == r

    def test_session_attaches_recorders_automatically(self, engine):
        with TraceSession() as session:
            sim = CongestSimulator(
                path_graph(3), lambda v: CountDown(3), seed=0, engine=engine
            )
            result = sim.run(10)
        assert len(session.recorders) == 1
        assert session.total_rounds() == result.metrics.rounds
        # Outside the session, no recorder is attached.
        sim2 = CongestSimulator(
            path_graph(3), lambda v: CountDown(3), seed=0, engine=engine
        )
        assert sim2.trace is None


class RandomSleeper(VertexAlgorithm):
    """Randomized wake/sleep schedule driven by a private stdlib RNG.

    On each wake the vertex may message a random neighbor, then sleeps
    for a random stretch.  ``hinted=False`` runs the same schedule
    without idle hints (the simulator steps it every round), which is
    the semantic baseline fast-forwarding must reproduce.
    """

    def __init__(self, vertex, seed, hinted):
        self.hinted = hinted
        self.rng = random.Random(seed * 7919 + vertex)
        self.wake_round = self.rng.randint(1, 6)
        self.remaining = self.rng.randint(2, 5)

    def step(self, ctx, inbox):
        if inbox or ctx.round_number >= self.wake_round:
            if self.rng.random() < 0.6 and ctx.neighbors:
                target = self.rng.choice(ctx.neighbors)
                ctx.send(target, ("tick", ctx.round_number))
            self.remaining -= 1
            if self.remaining <= 0:
                ctx.halt(ctx.round_number)
                return
            self.wake_round = ctx.round_number + self.rng.randint(1, 40)

    def is_idle(self, ctx):
        return self.hinted and ctx.round_number < self.wake_round

    def next_wakeup(self, ctx):
        return self.wake_round


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("seed", range(8))
def test_fast_forward_preserves_round_accounting(engine, seed):
    """Property: idle hints are pure scheduling, never semantics.

    The hinted and unhinted runs draw identical RNG streams (the
    algorithm's own RNG is keyed by (seed, vertex) and is only consulted
    on wake rounds), so every observable — outputs, rounds,
    effective_rounds, traffic — must coincide; the hinted run merely
    skips the quiescent stretches.
    """
    def run(hinted):
        sim = CongestSimulator(
            cycle_graph(5),
            lambda v: RandomSleeper(v, seed, hinted),
            seed=seed,
            engine=engine,
        )
        result = sim.run(max_rounds=400)
        return result

    plain = run(hinted=False)
    hinted = run(hinted=True)
    assert hinted.outputs == plain.outputs
    assert hinted.halted == plain.halted
    assert hinted.metrics.rounds == plain.metrics.rounds
    assert hinted.metrics.effective_rounds == plain.metrics.effective_rounds
    assert hinted.metrics.total_messages == plain.metrics.total_messages
    assert hinted.metrics.total_bits == plain.metrics.total_bits
    assert hinted.metrics.max_edge_congestion == (
        plain.metrics.max_edge_congestion
    )
