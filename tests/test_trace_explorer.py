"""Tests for the trace explorer: diff, explain, timelines, heartbeat.

Four layers are covered: the historical trace schemas (v1-v4 fixtures
must keep loading through the v5 reader, and detail-off recording must
stay byte-identical to v4), the divergence finder (exact first
divergent round/field/vertex on deliberately divergent runs, silence
on bit-identical execution-mode pairs), per-vertex provenance
(``explain``), and the operational surfaces (Chrome trace export, the
runner heartbeat, and the ``repro trace`` / ``repro obs export`` CLI
with their exit-code contracts).
"""

import json
import os

import pytest

from repro.cli import main
from repro.congest import CongestSimulator, FaultPlan, TraceRecorder, VertexAlgorithm
from repro.congest.algorithm import (
    set_batch_delivery_enabled,
    set_kernels_enabled,
)
from repro.congest.trace import BASE_SCHEMA_VERSION, TRACE_SCHEMA_VERSION, RoundTrace
from repro.generators import gnp_random_graph
from repro.obs import (
    Divergence,
    chrome_trace,
    diff_traces,
    explain_vertex,
    load_trace_jsonl,
    split_streams,
    telemetry_scope,
    timeline_from_snapshot,
    validate_chrome_trace,
)
from repro.runner import (
    ProgressLog,
    follow_progress,
    iter_progress,
    render_progress_event,
    run_suite,
)

FIXTURES = os.path.join(os.path.dirname(__file__), "data")


class _Flood(VertexAlgorithm):
    """Max-ID flooding — the standard pure-simulator workload."""

    def __init__(self, budget):
        self.budget = budget
        self.best = None

    def initialize(self, ctx):
        self.best = ctx.vertex
        ctx.broadcast(self.best)

    def step(self, ctx, inbox):
        for payloads in inbox.values():
            for value in payloads:
                if value > self.best:
                    self.best = value
                    ctx.broadcast(self.best)
        if ctx.round_number >= self.budget:
            ctx.halt(self.best)


def _trace_run(seed, label="fast:n=24", detail=False, plan=None, n=24,
               graph_seed=7, rounds=6):
    recorder = TraceRecorder(label, detail=detail)
    g = gnp_random_graph(n, 0.18, seed=graph_seed)
    sim = CongestSimulator(
        g, lambda v: _Flood(4), seed=seed, trace=recorder, faults=plan
    )
    sim.run(max_rounds=rounds)
    return [json.loads(line) for line in recorder.dumps_jsonl().splitlines()]


def _write_jsonl(path, records):
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")


# ----------------------------------------------------------------------
# Historical schema fixtures
# ----------------------------------------------------------------------

class TestHistoricalSchemas:
    @pytest.mark.parametrize("version", (1, 2, 3, 4))
    def test_fixture_loads_through_current_reader(self, version):
        path = os.path.join(FIXTURES, f"trace_v{version}.jsonl")
        records = load_trace_jsonl(path)
        assert records, f"fixture v{version} is empty"
        for record in records:
            upgraded = RoundTrace.from_dict(record).to_dict()
            # No fixture carries detail events, so re-serialization
            # stamps the base schema.
            assert upgraded["schema"] == BASE_SCHEMA_VERSION
            assert upgraded["round"] == record["round"]
            assert upgraded["bits"] == record["bits"]

    def test_fixture_schemas_are_what_they_claim(self):
        for version in (2, 3, 4):
            path = os.path.join(FIXTURES, f"trace_v{version}.jsonl")
            schemas = {
                record.get("schema") for record in load_trace_jsonl(path)
            }
            assert schemas == {version}
        v1 = load_trace_jsonl(os.path.join(FIXTURES, "trace_v1.jsonl"))
        assert all("schema" not in record for record in v1)

    def test_detail_off_recording_is_byte_identical_to_v4(self):
        """The v5 schema is additive: with detail off, today's recorder
        reproduces the pinned v4 fixture byte for byte."""
        records = _trace_run(
            seed=2, plan=FaultPlan(seed=5, drop=0.04, delay=0.1, max_delay=2)
        )
        produced = "".join(
            json.dumps(record, sort_keys=True) + "\n" for record in records
        )
        with open(os.path.join(FIXTURES, "trace_v4.jsonl")) as handle:
            assert produced == handle.read()

    def test_detail_on_stamps_v5(self):
        records = _trace_run(seed=2, detail=True)
        assert all(r["schema"] == TRACE_SCHEMA_VERSION for r in records)
        assert any(r.get("events") for r in records)


# ----------------------------------------------------------------------
# Divergence finder
# ----------------------------------------------------------------------

class TestDiffTraces:
    def test_identical_runs_no_divergence(self):
        assert diff_traces(_trace_run(seed=2), _trace_run(seed=2)) is None

    def test_engine_label_is_ignored(self):
        a = _trace_run(seed=2, label="fast:n=24")
        b = _trace_run(seed=2, label="reference:n=24")
        assert diff_traces(a, b) is None

    def test_divergent_seeds_report_first_round_and_field(self):
        a = _trace_run(seed=2, graph_seed=7)
        b = _trace_run(seed=2, graph_seed=8)
        divergence = diff_traces(a, b)
        assert divergence is not None
        assert divergence.kind == "field"
        assert divergence.round == 1
        assert divergence.field in ("messages", "bits")
        assert divergence.a_value != divergence.b_value

    def test_divergent_fault_seeds_report_fault_field(self):
        a = _trace_run(seed=2, detail=True, plan=FaultPlan(seed=1, drop=0.15))
        b = _trace_run(seed=2, detail=True, plan=FaultPlan(seed=9, drop=0.15))
        divergence = diff_traces(a, b)
        assert divergence is not None
        assert divergence.kind == "field"
        assert divergence.round is not None
        assert divergence.field is not None

    def test_event_divergence_attributes_a_vertex(self):
        a = _trace_run(seed=2, detail=True)
        b = json.loads(json.dumps(a))  # deep copy
        victim = b[1]["events"][4]
        victim["b"] += 1  # one message's bit count flips
        divergence = diff_traces(a, b)
        assert divergence is not None
        assert divergence.round == b[1]["round"]
        assert divergence.field == "events[4]"
        assert divergence.vertex == victim["s"]

    def test_length_mismatch_reported(self):
        a = _trace_run(seed=2)
        divergence = diff_traces(a, a[:-1])
        assert divergence is not None
        assert divergence.kind == "length"

    def test_stream_count_mismatch_reported(self):
        a = _trace_run(seed=2)
        doubled = a + [dict(r, sim="other:n=24") for r in a]
        divergence = diff_traces(a, doubled)
        assert divergence is not None
        assert divergence.kind == "streams"

    def test_divergence_round_trips_to_dict(self):
        divergence = diff_traces(
            _trace_run(seed=2, graph_seed=7),
            _trace_run(seed=2, graph_seed=8),
        )
        payload = divergence.to_dict()
        assert payload["kind"] == "field"
        assert payload["round"] == divergence.round
        assert "field" in payload and "a" in payload and "b" in payload
        assert divergence.render()  # human form is non-empty


class TestExecutionModePairsAreSilent:
    """The bit-identity contract, restated as trace-diff silence."""

    @pytest.fixture(autouse=True)
    def _restore_modes(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_THRESHOLD", "1")
        yield
        set_kernels_enabled(True)
        set_batch_delivery_enabled(True)

    def _run(self, kernels, batched, detail=False):
        set_kernels_enabled(kernels)
        set_batch_delivery_enabled(batched)
        return _trace_run(seed=4, detail=detail, n=30)

    def test_kernels_on_off_identical(self):
        a = self._run(kernels=True, batched=True)
        b = self._run(kernels=False, batched=True)
        assert diff_traces(a, b) is None

    def test_batch_delivery_on_off_identical(self):
        a = self._run(kernels=True, batched=True)
        b = self._run(kernels=True, batched=False)
        assert diff_traces(a, b) is None

    def test_detail_mode_engines_agree(self):
        from repro.congest import use_engine

        plan = FaultPlan(seed=3, drop=0.1, duplicate=0.05, delay=0.1)

        def run(engine):
            with use_engine(engine):
                return _trace_run(
                    seed=4, label=engine, detail=True, plan=plan, n=30
                )

        assert diff_traces(run("fast"), run("reference")) is None


# ----------------------------------------------------------------------
# Per-vertex provenance (explain)
# ----------------------------------------------------------------------

class TestExplainVertex:
    def test_requires_detail_events(self):
        records = _trace_run(seed=2)
        with pytest.raises(ValueError, match="trace-detail"):
            explain_vertex(records, "3", 1)

    def test_inbound_and_outbound(self):
        records = _trace_run(seed=2, detail=True)
        report = explain_vertex(records, "3", 1)
        assert report.found
        assert report.vertex == "3"
        assert all(e["r"] == "3" for e in report.inbound)
        # Fault-free flooding: round-1 broadcasts reach every neighbor.
        assert report.inbound
        assert report.render()

    def test_upstream_depth(self):
        records = _trace_run(seed=2, detail=True)
        report = explain_vertex(records, "3", 2, depth=1)
        assert report.found
        for upstream in report.upstream:
            assert upstream.round == 1

    def test_missing_round_not_found(self):
        records = _trace_run(seed=2, detail=True)
        report = explain_vertex(records, "3", 99)
        assert not report.found

    def test_split_streams_orders_by_first_appearance(self):
        a = _trace_run(seed=2, label="zeta")
        b = _trace_run(seed=2, label="alpha")
        streams = split_streams(a + b)
        assert [label for label, _ in streams] == ["zeta", "alpha"]


# ----------------------------------------------------------------------
# Chrome/Perfetto timeline export
# ----------------------------------------------------------------------

class TestChromeExport:
    def _timeline(self):
        with telemetry_scope(timeline=True) as registry:
            with registry.span("suite"):
                with registry.span("cell"):
                    pass
                with registry.span("cell"):
                    pass
        return registry.timeline

    def test_valid_trace_event_object(self):
        data = chrome_trace(self._timeline())
        assert validate_chrome_trace(data) == []
        assert data["displayTimeUnit"] == "ms"
        events = [e for e in data["traceEvents"] if e["ph"] in "BE"]
        assert [e["ph"] for e in events[:2]] == ["B", "B"]
        assert sum(1 for e in events if e["ph"] == "B") == 3
        assert sum(1 for e in events if e["ph"] == "E") == 3
        # Timestamps are normalized to microseconds from the start.
        assert events[0]["ts"] == 0.0

    def test_nested_span_names_are_paths(self):
        data = chrome_trace(self._timeline())
        names = {e["name"] for e in data["traceEvents"] if e["ph"] == "B"}
        assert names == {"suite", "suite/cell"}

    def test_metadata_names_processes(self):
        data = chrome_trace(self._timeline(), process_label="bench")
        meta = [e for e in data["traceEvents"] if e["ph"] == "M"]
        assert any(
            e["name"] == "process_name" and e["args"]["name"] == "bench"
            for e in meta
        )

    def test_validator_rejects_unbalanced(self):
        timeline = self._timeline()
        unbalanced = [e for e in timeline if e["ph"] == "B"]
        problems = validate_chrome_trace(chrome_trace(unbalanced))
        assert any("unclosed" in p for p in problems)

    def test_timeline_absent_without_flag(self):
        with telemetry_scope() as registry:
            with registry.span("s"):
                pass
        assert registry.timeline is None
        assert "timeline" not in registry.to_dict()

    def test_timeline_from_snapshot_nesting(self):
        with telemetry_scope(timeline=True) as registry:
            with registry.span("s"):
                pass
        payload = registry.to_dict()
        assert timeline_from_snapshot(payload) == payload["timeline"]
        assert (
            timeline_from_snapshot({"telemetry": payload})
            == payload["timeline"]
        )
        assert timeline_from_snapshot({"telemetry": {}}) is None


# ----------------------------------------------------------------------
# Runner heartbeat
# ----------------------------------------------------------------------

class TestProgressHeartbeat:
    def test_serial_run_emits_lifecycle(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        run_suite(
            "E11", limit=2, use_cache=False,
            cache_root=str(tmp_path / "cache"), progress=str(path),
        )
        events = list(iter_progress(str(path)))
        kinds = [e["event"] for e in events]
        assert kinds[0] == "suite_started"
        assert kinds[-1] == "suite_finished"
        assert kinds.count("cell_started") == 2
        assert kinds.count("cell_finished") == 2
        finished = [e for e in events if e["event"] == "cell_finished"]
        assert all("elapsed" in e and "stalled" in e for e in finished)

    def test_parallel_run_emits_lifecycle(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        run_suite(
            "E11", limit=2, jobs=2, use_cache=False,
            cache_root=str(tmp_path / "cache"), progress=str(path),
        )
        kinds = [e["event"] for e in iter_progress(str(path))]
        assert kinds.count("cell_started") == 2
        assert kinds.count("cell_finished") == 2
        assert kinds[-1] == "suite_finished"

    def test_retry_and_quarantine_events(self, tmp_path):
        # The hidden CHAOS suite's "fail" cell raises on every attempt.
        path = tmp_path / "progress.jsonl"
        run = run_suite(
            "CHAOS", limit=3, use_cache=False,
            cache_root=str(tmp_path / "cache"), retries=1,
            progress=str(path),
        )
        kinds = [e["event"] for e in iter_progress(str(path))]
        if run.quarantined:
            assert "cell_quarantined" in kinds
            assert "cell_retried" in kinds

    def test_follow_reads_appended_events(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        with ProgressLog(str(path)) as plog:
            plog.emit("suite_started", suite="X", cells=1)
            plog.emit("cell_started", suite="X", index=0, label="c")
            plog.emit("bench_finished")
        events = list(follow_progress(str(path), idle_timeout=0.5))
        assert [e["event"] for e in events] == [
            "suite_started", "cell_started", "bench_finished",
        ]

    def test_reader_skips_truncated_line(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        with ProgressLog(str(path)) as plog:
            plog.emit("suite_started", suite="X")
        with open(path, "a") as handle:
            handle.write('{"event": "cell_sta')  # torn mid-write
        events = list(iter_progress(str(path)))
        assert [e["event"] for e in events] == ["suite_started"]

    def test_render_covers_every_event(self):
        samples = [
            {"t": 1.0, "event": "bench_started", "suites": ["E11"]},
            {"t": 1.1, "event": "suite_started", "suite": "E11",
             "pending": 2, "replayed": 0, "jobs": 1},
            {"t": 1.2, "event": "cell_started", "suite": "E11",
             "index": 0, "label": "a", "attempt": 1},
            {"t": 1.3, "event": "cell_finished", "suite": "E11",
             "index": 0, "label": "a", "elapsed": 0.5, "stalled": True},
            {"t": 1.4, "event": "cell_retried", "suite": "E11",
             "index": 1, "label": "b", "attempt": 1, "reason": "boom",
             "backoff": 0.05},
            {"t": 1.5, "event": "cell_stalled", "suite": "E11",
             "index": 1, "label": "b", "timeout": 2.0},
            {"t": 1.6, "event": "cell_quarantined", "suite": "E11",
             "index": 1, "label": "b", "attempts": 2, "reason": "boom"},
            {"t": 1.7, "event": "pool_rebuilt", "suite": "E11"},
            {"t": 1.8, "event": "suite_finished", "suite": "E11",
             "cells": 2, "quarantined": 1, "stalled": 1,
             "wall_seconds": 0.9},
            {"t": 1.9, "event": "bench_finished"},
            {"t": 2.0, "event": "mystery", "extra": 1},
        ]
        rendered = [render_progress_event(e, 1.0) for e in samples]
        assert all(isinstance(line, str) and line for line in rendered)
        assert "stalled verdict" in rendered[3]
        assert "quarantined" in rendered[6]

    def test_journal_fingerprint_distinguishes_modes(self):
        from repro.runner import run_fingerprint

        plain = run_fingerprint("E11", None, True, False, salt="s")
        detail = run_fingerprint(
            "E11", None, True, False, salt="s", trace_detail=True
        )
        timeline = run_fingerprint(
            "E11", None, False, True, salt="s", timeline=True
        )
        assert plain != detail
        assert plain != timeline


# ----------------------------------------------------------------------
# CLI surfaces and exit codes
# ----------------------------------------------------------------------

class TestTraceCli:
    def _dump(self, tmp_path, name, graph_seed=7, detail=False):
        path = tmp_path / name
        _write_jsonl(
            str(path),
            _trace_run(seed=2, graph_seed=graph_seed, detail=detail),
        )
        return str(path)

    def test_diff_identical_exits_zero(self, tmp_path, capsys):
        a = self._dump(tmp_path, "a.jsonl")
        b = self._dump(tmp_path, "b.jsonl")
        assert main(["trace", "diff", a, b]) == 0
        assert "identical" in capsys.readouterr().out

    def test_diff_divergent_exits_one_with_json(self, tmp_path, capsys):
        a = self._dump(tmp_path, "a.jsonl")
        b = self._dump(tmp_path, "b.jsonl", graph_seed=8)
        assert main(["trace", "diff", a, b, "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["kind"] == "repro-trace-diff"
        assert report["identical"] is False
        assert report["divergence"]["round"] == 1
        assert report["divergence"]["field"]

    def test_diff_missing_file_exits_two(self, tmp_path, capsys):
        a = self._dump(tmp_path, "a.jsonl")
        assert main(["trace", "diff", a, str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot load trace" in capsys.readouterr().err

    def test_diff_corrupt_file_exits_two(self, tmp_path, capsys):
        a = self._dump(tmp_path, "a.jsonl")
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert main(["trace", "diff", a, str(bad)]) == 2
        assert "cannot load trace" in capsys.readouterr().err

    def test_explain_renders_provenance(self, tmp_path, capsys):
        a = self._dump(tmp_path, "a.jsonl", detail=True)
        assert main(
            ["trace", "explain", a, "--vertex", "3", "--round", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "vertex 3" in out
        assert "inbound" in out

    def test_explain_json(self, tmp_path, capsys):
        a = self._dump(tmp_path, "a.jsonl", detail=True)
        assert main(
            ["trace", "explain", a, "--vertex", "3", "--round", "1",
             "--json"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["vertex"] == "3"
        assert report["found"] is True

    def test_explain_without_detail_exits_two(self, tmp_path, capsys):
        a = self._dump(tmp_path, "a.jsonl")
        assert main(
            ["trace", "explain", a, "--vertex", "3", "--round", "1"]
        ) == 2
        assert "trace-detail" in capsys.readouterr().err

    def test_tail_renders_and_passes_json(self, tmp_path, capsys):
        path = tmp_path / "progress.jsonl"
        with ProgressLog(str(path)) as plog:
            plog.emit("suite_started", suite="E11", pending=1,
                      replayed=0, jobs=1)
            plog.emit("bench_finished")
        assert main(["trace", "tail", str(path)]) == 0
        assert "E11" in capsys.readouterr().out
        assert main(["trace", "tail", str(path), "--json"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert json.loads(lines[0])["event"] == "suite_started"

    def test_tail_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["trace", "tail", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read progress file" in capsys.readouterr().err


class TestCliTracePathErrors:
    def test_bench_unwritable_trace_path_exits_two(self, tmp_path, capsys):
        code = main([
            "bench", "--suite", "E11", "--limit", "1", "--no-cache",
            "--cache-dir", str(tmp_path),
            "--trace", str(tmp_path / "missing" / "t.jsonl"),
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "invalid trace path" in err
        assert "Traceback" not in err

    def test_faults_unwritable_trace_path_exits_two(self, capsys, tmp_path):
        code = main([
            "faults", "--family", "cycle", "--n", "8",
            "--trace", str(tmp_path / "missing" / "t.jsonl"),
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "invalid trace path" in err
        assert "Traceback" not in err

    def test_bench_trace_detail_requires_trace(self, tmp_path, capsys):
        code = main([
            "bench", "--suite", "E11", "--limit", "1", "--no-cache",
            "--cache-dir", str(tmp_path), "--trace-detail",
        ])
        assert code == 2
        assert "--trace-detail requires" in capsys.readouterr().err

    def test_bench_timeline_requires_telemetry(self, tmp_path, capsys):
        code = main([
            "bench", "--suite", "E11", "--limit", "1", "--no-cache",
            "--cache-dir", str(tmp_path), "--timeline",
        ])
        assert code == 2
        assert "--timeline requires" in capsys.readouterr().err


class TestBenchObservabilityPipeline:
    def test_detail_trace_progress_and_chrome_export(self, tmp_path, capsys):
        trace = tmp_path / "bench.jsonl"
        snapshot = tmp_path / "snap.json"
        progress = tmp_path / "progress.jsonl"
        code = main([
            "bench", "--suite", "E11", "--limit", "1", "--no-cache",
            "--cache-dir", str(tmp_path / "cache"),
            "--trace", str(trace), "--trace-detail",
            "--telemetry", str(snapshot), "--timeline",
            "--progress", str(progress),
        ])
        assert code == 0
        capsys.readouterr()

        records = load_trace_jsonl(str(trace))
        assert any(r.get("events") for r in records)
        assert diff_traces(records, records) is None

        kinds = [e["event"] for e in iter_progress(str(progress))]
        assert kinds[0] == "bench_started"
        assert kinds[-1] == "bench_finished"

        assert main(["obs", "export", str(snapshot)]) == 0
        out_path = capsys.readouterr().out.strip()
        assert out_path.endswith(".trace.json")
        with open(out_path) as handle:
            data = json.load(handle)
        assert validate_chrome_trace(data) == []
        assert any(
            e["ph"] == "B" and e["name"].startswith("cell:")
            for e in data["traceEvents"]
        )

    def test_export_without_timeline_exits_two(self, tmp_path, capsys):
        snapshot = tmp_path / "snap.json"
        code = main([
            "bench", "--suite", "E11", "--limit", "1", "--no-cache",
            "--cache-dir", str(tmp_path / "cache"),
            "--telemetry", str(snapshot),
        ])
        assert code == 0
        capsys.readouterr()
        assert main(["obs", "export", str(snapshot)]) == 2
        assert "no timeline events" in capsys.readouterr().err

    def test_obs_diff_json(self, tmp_path, capsys):
        snapshot = tmp_path / "snap.json"
        code = main([
            "bench", "--suite", "E11", "--limit", "1", "--no-cache",
            "--cache-dir", str(tmp_path / "cache"),
            "--telemetry", str(snapshot),
        ])
        assert code == 0
        capsys.readouterr()
        assert main([
            "obs", "diff", str(snapshot), str(snapshot), "--json",
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["kind"] == "repro-obs-diff"
        assert report["ok"] is True
        assert report["budget"] == 1.25
        assert report["regressions"] == []
