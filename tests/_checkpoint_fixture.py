"""Module-level vertex algorithm for checkpoint tests.

Checkpoints pickle live algorithm objects, and pickle resolves classes
by qualified module path — a class defined inside a test function
cannot round-trip.  Keeping the workload here (``tests`` is an
importable package) makes checkpoints of it serializable, and pins the
class path the ``tests/data/checkpoint_v1.json`` fixture refers to.
"""

from repro.congest import CorruptedPayload, VertexAlgorithm


class FixtureFlood(VertexAlgorithm):
    """Min-ID flooding that halts after three quiet rounds."""

    def __init__(self, vertex):
        self.vertex = vertex
        self.best = vertex
        self.quiet = 0

    def initialize(self, ctx):
        self.best = self.vertex
        self.quiet = 0
        ctx.broadcast(self.best)

    def step(self, ctx, inbox):
        improved = False
        for payloads in inbox.values():
            for payload in payloads:
                if isinstance(payload, CorruptedPayload):
                    continue  # survive garbage on the wire
                if payload < self.best:
                    self.best = payload
                    improved = True
        if improved:
            self.quiet = 0
            ctx.broadcast(self.best)
        else:
            self.quiet += 1
            if self.quiet >= 3:
                ctx.halt(self.best)


class FixtureWalker(VertexAlgorithm):
    """RNG-consuming workload: forwards a token on random edges.

    Exists to prove checkpoints preserve per-vertex RNG streams — the
    resumed token path only matches the uninterrupted one if every
    generator restarts exactly where it stopped.
    """

    HOPS = 40

    def __init__(self, vertex):
        self.vertex = vertex
        self.visits = 0

    def initialize(self, ctx):
        if ctx.vertex == 0:
            target = ctx.rng.choice(sorted(ctx.neighbors))
            ctx.send(target, 1)

    def step(self, ctx, inbox):
        for payloads in inbox.values():
            for hop in payloads:
                if isinstance(hop, CorruptedPayload):
                    continue
                self.visits += 1
                if hop < self.HOPS:
                    target = ctx.rng.choice(sorted(ctx.neighbors))
                    ctx.send(target, hop + 1)
        if ctx.round_number >= self.HOPS:
            ctx.halt(self.visits)
