"""Contract of the crash-consistent storage layer (:mod:`repro.storage`).

Four clauses, each pinned here: atomic replace (readers see old bytes
or new bytes, never a tear), checksummed framing and sealed JSONL
records (corruption is *detected*, with legacy unframed/unsealed
artifacts still accepted), bounded retry of transient errors, and
deterministic fault injection (every decision a pure keyed hash of the
plan seed and operation coordinates, replayable across processes —
including the kill-point, exercised in a real subprocess).
"""

import errno
import json
import os
import subprocess
import sys

import pytest

from repro import storage
from repro.errors import ChecksumError, FaultError, StorageError
from repro.storage import (
    KILL_EXIT_CODE,
    DiskFaultPlan,
    DurableAppender,
    atomic_write_bytes,
    atomic_write_text,
    canonical_json,
    check_record,
    frame_bytes,
    iter_sealed_lines,
    read_bytes,
    read_text,
    reset_storage_stats,
    seal_record,
    storage_stats,
    unframe_bytes,
    use_disk_faults,
)


@pytest.fixture(autouse=True)
def clean_stats(monkeypatch):
    monkeypatch.delenv(storage.ENV_PLAN, raising=False)
    monkeypatch.delenv(storage.ENV_STATS, raising=False)
    reset_storage_stats()
    yield
    reset_storage_stats()


# ----------------------------------------------------------------------
# Framing and sealed records
# ----------------------------------------------------------------------

def test_frame_roundtrip_and_legacy_passthrough():
    payload = b"\x80\x04arbitrary pickle-ish bytes"
    assert unframe_bytes(frame_bytes(payload)) == payload
    # Bytes that predate framing (no magic) pass through untouched.
    assert unframe_bytes(payload) == payload
    assert unframe_bytes(b"") == b""
    assert unframe_bytes(b'{"json": 1}') == b'{"json": 1}'


def test_corrupt_frame_is_detected():
    blob = bytearray(frame_bytes(b"the payload"))
    blob[-1] ^= 0x01  # flip a payload bit
    with pytest.raises(ChecksumError, match="checksum"):
        unframe_bytes(bytes(blob))
    # Truncation inside the fixed-size header is equally loud.
    with pytest.raises(ChecksumError, match="truncated"):
        unframe_bytes(frame_bytes(b"x")[:10])


def test_sealed_record_roundtrip_strips_checksum():
    record = {"kind": "cell", "index": 3, "payload": "YWJj"}
    sealed = seal_record(record)
    assert "cs" in sealed and "cs" not in record
    assert check_record(sealed) == record
    # Legacy records without a checksum are accepted as-is.
    assert check_record(record) == record
    # Re-sealing a sealed record reproduces the same digest.
    assert seal_record(sealed) == sealed


def test_tampered_sealed_record_is_detected():
    sealed = seal_record({"kind": "cell", "index": 3})
    sealed["index"] = 4
    with pytest.raises(ChecksumError):
        check_record(sealed)


def test_canonical_json_is_key_order_independent():
    a = canonical_json({"b": 1, "a": [1, 2]})
    b = canonical_json({"a": [1, 2], "b": 1})
    assert a == b == '{"a":[1,2],"b":1}'


# ----------------------------------------------------------------------
# Plan validation and determinism
# ----------------------------------------------------------------------

def test_plan_rejects_invalid_rates():
    with pytest.raises(FaultError):
        DiskFaultPlan(torn_write=1.5)
    with pytest.raises(FaultError):
        DiskFaultPlan(bit_flip=-0.1)
    with pytest.raises(FaultError):
        DiskFaultPlan(slow_seconds=-1.0)
    with pytest.raises(FaultError):
        DiskFaultPlan(kill_at=0)
    with pytest.raises(FaultError):
        DiskFaultPlan.from_dict({"seed": 1, "torn_wrlte": 0.5})
    with pytest.raises(FaultError):
        DiskFaultPlan.from_json("not json")
    with pytest.raises(FaultError):
        DiskFaultPlan.from_json("[1, 2]")


def test_plan_json_roundtrip_and_noop():
    plan = DiskFaultPlan(seed=9, torn_write=0.25, kill_at=7)
    assert DiskFaultPlan.from_json(plan.to_json()) == plan
    assert not plan.is_noop()
    assert DiskFaultPlan().is_noop()
    assert DiskFaultPlan(seed=42).is_noop()  # seed alone injects nothing


def test_injector_decisions_replay_identically():
    plan = DiskFaultPlan(seed=5, torn_write=0.4, bit_flip=0.4)
    ops = [("wal.jsonl", 64), ("wal.jsonl", 64), ("entry.bin", 128)] * 4
    def trace(injector):
        out = []
        for name, size in ops:
            out.append(injector.torn_length(name, size))
            out.append(injector.flip_bit(name, b"\x00" * size))
        return out
    assert trace(plan.compile()) == trace(plan.compile())
    # A different seed draws a different schedule.
    other = trace(DiskFaultPlan(seed=6, torn_write=0.4, bit_flip=0.4).compile())
    assert other != trace(plan.compile())


# ----------------------------------------------------------------------
# Atomic writes and reads under injected faults
# ----------------------------------------------------------------------

def test_atomic_write_replaces_and_leaves_no_temp_files(tmp_path):
    path = str(tmp_path / "artifact.bin")
    atomic_write_bytes(path, b"first")
    atomic_write_bytes(path, b"second")
    assert read_bytes(path) == b"second"
    assert os.listdir(tmp_path) == ["artifact.bin"]
    assert storage_stats().writes == 2 and storage_stats().reads == 1


def test_torn_write_is_caught_by_the_frame(tmp_path):
    path = str(tmp_path / "entry.bin")
    framed = frame_bytes(b"payload bytes that tear")
    # Seed chosen so the tear lands past the 20-byte frame header: a
    # shorter prefix no longer starts with the magic and is handled as
    # a legacy blob by the consumer's deserializer instead.
    with use_disk_faults(DiskFaultPlan(seed=0, torn_write=1.0)):
        atomic_write_bytes(path, framed)
    torn = read_bytes(path)
    assert len(torn) < len(framed)  # a strict prefix reached the disk
    assert storage_stats().torn_writes == 1
    with pytest.raises(ChecksumError):
        unframe_bytes(torn)


def test_dropped_fsync_keeps_the_previous_content(tmp_path):
    path = str(tmp_path / "entry.bin")
    atomic_write_bytes(path, b"old")
    with use_disk_faults(DiskFaultPlan(seed=1, drop_fsync=1.0)):
        atomic_write_bytes(path, b"new")
    assert read_bytes(path) == b"old"  # the replace never landed
    assert storage_stats().dropped_fsyncs == 1
    assert os.listdir(tmp_path) == ["entry.bin"]  # temp cleaned up


def test_bit_flip_on_read_is_caught_by_the_frame(tmp_path):
    path = str(tmp_path / "entry.bin")
    atomic_write_bytes(path, frame_bytes(b"precious payload"))
    with use_disk_faults(DiskFaultPlan(seed=3, bit_flip=1.0)):
        flipped = read_bytes(path)
    assert storage_stats().bit_flips == 1
    with pytest.raises(ChecksumError):
        unframe_bytes(flipped)


def test_verified_write_rewrites_a_torn_artifact(tmp_path):
    """Final artifacts (tables, stats JSON) have no checksummed reader,
    so a lying disk would corrupt them silently; ``verify=True`` reads
    the rename target back and rewrites on mismatch.  Seed 16 tears
    the first attempt only."""
    path = str(tmp_path / "table.txt")
    with use_disk_faults(DiskFaultPlan(seed=16, torn_write=0.6)):
        atomic_write_bytes(path, b"the full rendered result table\n",
                           verify=True)
    assert read_bytes(path) == b"the full rendered result table\n"
    assert storage_stats().torn_writes == 1
    assert storage_stats().retries == 1


def test_verified_write_rewrites_a_dropped_write(tmp_path):
    path = str(tmp_path / "table.txt")  # seed 12: first fsync dropped
    with use_disk_faults(DiskFaultPlan(seed=12, drop_fsync=0.6)):
        atomic_write_bytes(path, b"stats payload", verify=True)
    assert read_bytes(path) == b"stats payload"
    assert storage_stats().dropped_fsyncs == 1


def test_verified_write_goes_loud_when_the_disk_keeps_lying(tmp_path):
    path = str(tmp_path / "table.txt")
    with use_disk_faults(DiskFaultPlan(seed=0, torn_write=1.0)):
        with pytest.raises(StorageError, match="verification"):
            atomic_write_bytes(path, b"0123456789", verify=True)


def test_persistent_enospc_surfaces_as_storage_error(tmp_path):
    path = str(tmp_path / "entry.bin")
    with use_disk_faults(DiskFaultPlan(seed=2, enospc=1.0)):
        with pytest.raises(StorageError, match="no space"):
            atomic_write_bytes(path, b"data")
    assert not os.path.exists(path)
    assert storage_stats().retries == storage._MAX_RETRIES
    assert storage_stats().enospc == storage._MAX_RETRIES + 1


def test_transient_error_is_retried_then_succeeds():
    attempts = []
    def flaky():
        attempts.append(1)
        if len(attempts) < 3:
            raise OSError(errno.ENOSPC, "full")
        return "ok"
    assert storage._retry_transient("write", "x", flaky) == "ok"
    assert len(attempts) == 3
    assert storage_stats().retries == 2


def test_permanent_oserror_is_not_retried():
    def denied():
        raise OSError(errno.EACCES, "denied")
    with pytest.raises(StorageError, match="denied"):
        storage._retry_transient("write", "x", denied)
    assert storage_stats().retries == 0


def test_read_missing_file_raises_plain_file_not_found(tmp_path):
    # Consumers keep their miss handling: no StorageError wrapping.
    with pytest.raises(FileNotFoundError):
        read_bytes(str(tmp_path / "absent.bin"))


def test_use_disk_faults_scopes_and_nests(tmp_path):
    assert storage.active_injector() is None
    with use_disk_faults(DiskFaultPlan(seed=1, slow=1.0, slow_seconds=0.0)):
        outer = storage.active_injector()
        assert outer is not None
        with use_disk_faults(None):
            assert storage.active_injector() is None
        assert storage.active_injector() is outer
    assert storage.active_injector() is None


# ----------------------------------------------------------------------
# Durable appends and verified replay
# ----------------------------------------------------------------------

def test_appender_writes_sealed_lines_that_verify(tmp_path):
    path = str(tmp_path / "log.jsonl")
    with DurableAppender(path, "w") as appender:
        appender.append_record({"kind": "header", "schema": 1})
        appender.append_record({"kind": "cell", "index": 0})
        appender.append("not json at all")  # raw line, like a torn tail
    assert appender.closed
    with pytest.raises(StorageError, match="closed"):
        appender.append("late")

    stats = {}
    records = list(iter_sealed_lines(path, stats))
    assert records == [
        {"kind": "header", "schema": 1},
        {"kind": "cell", "index": 0},
    ]
    assert stats["skipped"] == 1
    assert storage_stats().appends == 3


def test_torn_append_is_skipped_on_replay(tmp_path):
    path = str(tmp_path / "log.jsonl")
    with DurableAppender(path, "w") as appender:
        appender.append_record({"index": 0})
    with use_disk_faults(DiskFaultPlan(seed=4, torn_write=1.0)):
        with DurableAppender(path, "a") as appender:
            appender.append_record({"index": 1})
    stats = {}
    assert list(iter_sealed_lines(path, stats)) == [{"index": 0}]
    assert stats["skipped"] == 1


def test_dropped_append_never_reaches_the_file(tmp_path):
    path = str(tmp_path / "log.jsonl")
    with use_disk_faults(DiskFaultPlan(seed=4, drop_fsync=1.0)):
        with DurableAppender(path, "w") as appender:
            appender.append_record({"index": 0})
    assert read_text(path) == ""
    assert storage_stats().dropped_fsyncs == 1


# ----------------------------------------------------------------------
# Environment mirror and the kill-point (real subprocesses)
# ----------------------------------------------------------------------

def _storage_subprocess(tmp_path, plan, script_body):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    env[storage.ENV_PLAN] = plan.to_json()
    env[storage.ENV_STATS] = str(tmp_path / "stats.json")
    return subprocess.run(
        [sys.executable, "-c", script_body],
        env=env, cwd=str(tmp_path), capture_output=True, text=True,
        timeout=60,
    )


def test_env_plan_governs_subprocess_and_dumps_stats(tmp_path):
    plan = DiskFaultPlan(seed=8, torn_write=1.0)
    proc = _storage_subprocess(
        tmp_path, plan,
        "from repro import storage\n"
        "storage.atomic_write_bytes('out.bin', b'0123456789')\n",
    )
    assert proc.returncode == 0, proc.stderr
    torn = (tmp_path / "out.bin").read_bytes()
    assert len(torn) < 10
    # The atexit hook dumped the subprocess's injection evidence.
    stats = json.loads((tmp_path / "stats.json").read_text())
    assert stats["torn_writes"] == 1 and stats["injected"] == 1
    # The tear is the same one an in-process injector would draw.
    assert plan.compile().torn_length("out.bin", 10) == len(torn)


def test_kill_point_terminates_with_the_reserved_exit_code(tmp_path):
    plan = DiskFaultPlan(seed=8, kill_at=2)
    proc = _storage_subprocess(
        tmp_path, plan,
        "from repro import storage\n"
        "storage.atomic_write_bytes('a.bin', b'a')\n"   # op 1: survives
        "storage.atomic_write_bytes('b.bin', b'b')\n"   # op 2: killed
        "print('unreachable')\n",
    )
    assert proc.returncode == KILL_EXIT_CODE
    assert "unreachable" not in proc.stdout
    assert (tmp_path / "a.bin").read_bytes() == b"a"
    assert not (tmp_path / "b.bin").exists()
    stats = json.loads((tmp_path / "stats.json").read_text())
    assert stats["kills"] == 1
