"""Tests for the §2.3 distributed diameter-check marking protocol."""

import pytest

from repro.errors import GraphError
from repro.generators import (
    complete_graph,
    cycle_graph,
    delaunay_planar_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graph import Graph
from repro.routing import distributed_diameter_check


class TestDecisiveRegimes:
    @pytest.mark.parametrize(
        "graph, b",
        [
            (complete_graph(10), 1),
            (star_graph(12), 2),
            (grid_graph(4, 4), 6),
            (grid_graph(4, 4), 10),
            (path_graph(8), 7),
            (cycle_graph(10), 5),
        ],
        ids=["K10", "star", "grid=b", "grid<b", "path=b", "cycle=b"],
    )
    def test_within_bound_accepts(self, graph, b):
        assert graph.diameter() <= b
        ok, result = distributed_diameter_check(graph, b, seed=0)
        assert ok
        assert set(result.outputs.values()) == {False}

    @pytest.mark.parametrize(
        "graph, b",
        [
            (path_graph(20), 3),
            (path_graph(30), 5),
            (cycle_graph(40), 4),
            (grid_graph(8, 8), 2),
        ],
        ids=["P20", "P30", "C40", "grid8"],
    )
    def test_far_beyond_bound_rejects_uniformly(self, graph, b):
        assert graph.diameter() >= 2 * b + 1
        ok, result = distributed_diameter_check(graph, b, seed=0)
        assert not ok
        # Section 2.3: in this regime *every* vertex is marked.
        assert set(result.outputs.values()) == {True}


class TestConsistency:
    def test_verdict_uniform_even_in_gap_regime(self):
        # diam between b and 2b+1: outcome unspecified but uniform.
        g = path_graph(10)  # diam 9
        for b in (5, 6, 7, 8):
            _, result = distributed_diameter_check(g, b, seed=0)
            assert len(set(result.outputs.values())) == 1

    def test_agrees_with_centralized_check_on_clusters(self):
        from repro.core.failure import diameter_within

        g = delaunay_planar_graph(60, seed=1)
        for b in (3, 5, 20):
            distributed_ok, _ = distributed_diameter_check(g, b, seed=2)
            central_ok = diameter_within(g, b)
            if central_ok:
                # Completeness is exact: diam <= b always accepts.
                assert distributed_ok

    def test_singleton(self):
        g = Graph()
        g.add_vertex(0)
        ok, _ = distributed_diameter_check(g, 3)
        assert ok

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            distributed_diameter_check(Graph(), 2)

    def test_bad_budget_rejected(self):
        with pytest.raises(GraphError):
            distributed_diameter_check(path_graph(3), 0)
