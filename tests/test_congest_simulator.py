"""Tests for the CONGEST simulator: delivery, accounting, scheduling."""

import pytest

from repro.congest import (
    CongestSimulator,
    MessageBudget,
    VertexAlgorithm,
    VertexContext,
)
from repro.errors import MessageTooLargeError, ProtocolError
from repro.generators import cycle_graph, path_graph, star_graph
from repro.graph import Graph


class Flood(VertexAlgorithm):
    """Learn the max ID by flooding; halt after ``budget`` rounds."""

    def __init__(self, budget):
        self.budget = budget
        self.best = None

    def initialize(self, ctx):
        self.best = ctx.vertex
        ctx.broadcast(self.best)

    def step(self, ctx, inbox):
        for payloads in inbox.values():
            for value in payloads:
                if value > self.best:
                    self.best = value
                    ctx.broadcast(self.best)
        if ctx.round_number >= self.budget:
            ctx.halt(self.best)


class SendOnce(VertexAlgorithm):
    def initialize(self, ctx):
        for u in ctx.neighbors:
            ctx.send(u, ("HI", ctx.vertex))

    def step(self, ctx, inbox):
        ctx.halt(sorted(u for u in inbox))


class TestBasicExecution:
    def test_flood_agrees_on_max(self):
        g = cycle_graph(10)
        sim = CongestSimulator(g, lambda v: Flood(budget=12), seed=0)
        result = sim.run(max_rounds=20)
        assert result.halted
        assert set(result.outputs.values()) == {9}

    def test_messages_delivered_next_round(self):
        g = path_graph(3)
        sim = CongestSimulator(g, lambda v: SendOnce(), seed=0)
        result = sim.run(max_rounds=5)
        assert result.outputs[1] == [0, 2]
        assert result.outputs[0] == [1]

    def test_unfinished_run_reports_not_halted(self):
        class Forever(VertexAlgorithm):
            def step(self, ctx, inbox):
                pass

        sim = CongestSimulator(path_graph(2), lambda v: Forever(), seed=0)
        result = sim.run(max_rounds=3)
        assert not result.halted

    def test_send_to_non_neighbor_rejected(self):
        class Bad(VertexAlgorithm):
            def initialize(self, ctx):
                ctx.send("nowhere", 1)

            def step(self, ctx, inbox):
                ctx.halt()

        with pytest.raises(ProtocolError):
            CongestSimulator(path_graph(2), lambda v: Bad(), seed=0).run(2)

    def test_send_after_halt_rejected(self):
        class Zombie(VertexAlgorithm):
            def step(self, ctx, inbox):
                ctx.halt()
                ctx.broadcast(1)

        with pytest.raises(ProtocolError):
            CongestSimulator(path_graph(2), lambda v: Zombie(), seed=0).run(2)


class TestAccounting:
    def test_message_and_bit_counters(self):
        g = path_graph(3)
        sim = CongestSimulator(g, lambda v: SendOnce(), seed=0)
        result = sim.run(max_rounds=5)
        # 0 and 2 send one message each, 1 sends two.
        assert result.metrics.total_messages == 4
        assert result.metrics.total_bits > 0
        assert result.metrics.max_message_bits > 0

    def test_budget_enforced(self):
        class TooBig(VertexAlgorithm):
            def initialize(self, ctx):
                ctx.broadcast(tuple(range(100)))

            def step(self, ctx, inbox):
                ctx.halt()

        sim = CongestSimulator(
            path_graph(2), lambda v: TooBig(), budget=MessageBudget(2, words=2),
            seed=0,
        )
        with pytest.raises(MessageTooLargeError):
            sim.run(2)

    def test_strict_mode_rejects_double_send(self):
        class DoubleSend(VertexAlgorithm):
            def initialize(self, ctx):
                for u in ctx.neighbors:
                    ctx.send(u, 1)
                    ctx.send(u, 2)

            def step(self, ctx, inbox):
                ctx.halt()

        sim = CongestSimulator(
            path_graph(2), lambda v: DoubleSend(), strict=True, seed=0
        )
        with pytest.raises(ProtocolError):
            sim.run(2)

    def test_effective_rounds_charge_congestion(self):
        class Burst(VertexAlgorithm):
            def initialize(self, ctx):
                for u in ctx.neighbors:
                    for i in range(5):
                        ctx.send(u, i)

            def step(self, ctx, inbox):
                ctx.halt()

        sim = CongestSimulator(path_graph(2), lambda v: Burst(), seed=0)
        result = sim.run(3)
        assert result.metrics.max_edge_congestion == 5
        assert result.metrics.effective_rounds >= 5


class TestIdleScheduling:
    def test_wakeup_fast_forwards_but_counts_rounds(self):
        class Sleeper(VertexAlgorithm):
            def __init__(self):
                self.woke = None

            def initialize(self, ctx):
                pass

            def step(self, ctx, inbox):
                if ctx.round_number >= 500:
                    ctx.halt(ctx.round_number)

            def is_idle(self, ctx):
                return ctx.round_number < 500

            def next_wakeup(self, ctx):
                return 500

        sim = CongestSimulator(path_graph(2), lambda v: Sleeper(), seed=0)
        result = sim.run(max_rounds=1000)
        assert result.halted
        # All outputs woke exactly at round 500.
        assert set(result.outputs.values()) == {500}
        assert result.metrics.rounds >= 500

    def test_message_wakes_idle_vertex(self):
        class Pinger(VertexAlgorithm):
            def initialize(self, ctx):
                if ctx.vertex == 0:
                    ctx.broadcast(1)

            def step(self, ctx, inbox):
                if ctx.vertex == 0:
                    ctx.halt("sent")
                elif inbox:
                    ctx.halt("got ping")

            def is_idle(self, ctx):
                return True

            def next_wakeup(self, ctx):
                return None

        sim = CongestSimulator(path_graph(2), lambda v: Pinger(), seed=0)
        result = sim.run(max_rounds=10)
        assert result.outputs[1] == "got ping"

    def test_deadlocked_idle_run_terminates(self):
        class Nothing(VertexAlgorithm):
            def step(self, ctx, inbox):
                pass

            def is_idle(self, ctx):
                return True

            def next_wakeup(self, ctx):
                return None

        sim = CongestSimulator(path_graph(3), lambda v: Nothing(), seed=0)
        result = sim.run(max_rounds=100)
        assert not result.halted  # but it returned instead of spinning


class TestDeterminism:
    def test_same_seed_same_metrics(self):
        def run(seed):
            g = star_graph(6)
            sim = CongestSimulator(g, lambda v: Flood(budget=4), seed=seed)
            r = sim.run(10)
            return r.outputs, r.metrics.total_messages

        assert run(42) == run(42)

    def test_contexts_have_independent_rngs(self):
        class Draw(VertexAlgorithm):
            def step(self, ctx, inbox):
                ctx.halt(ctx.rng.random())

        sim = CongestSimulator(path_graph(4), lambda v: Draw(), seed=7)
        result = sim.run(3)
        values = list(result.outputs.values())
        assert len(set(values)) == len(values)
