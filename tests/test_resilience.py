"""Reliable transport over faulty channels + post-run validators."""

import pytest

from repro.congest import CongestSimulator, FaultPlan, VertexAlgorithm
from repro.decomposition.expander import (
    ExpanderDecomposition,
    expander_decomposition,
)
from repro.generators import delaunay_planar_graph, gnp_random_graph, path_graph
from repro.independent_set.greedy import greedy_min_degree_is
from repro.matching.greedy import maximal_matching
from repro.resilience import (
    ReliableAlgorithm,
    Verdict,
    reliable,
    validate_decomposition,
    validate_framework,
    validate_independent_set,
    validate_matching,
)
from repro.core.framework import run_framework


class Flood(VertexAlgorithm):
    """Max-ID flooding with a round budget."""

    def __init__(self, budget):
        self.budget = budget
        self.best = None

    def initialize(self, ctx):
        self.best = ctx.vertex
        ctx.broadcast(self.best)

    def step(self, ctx, inbox):
        for payloads in inbox.values():
            for value in payloads:
                if value > self.best:
                    self.best = value
                    ctx.broadcast(self.best)
        if ctx.round_number >= self.budget:
            ctx.halt(self.best)


# ----------------------------------------------------------------------
# Transport
# ----------------------------------------------------------------------


def test_reliable_transport_is_transparent_when_fault_free():
    g = gnp_random_graph(20, 0.25, seed=2)
    sim = CongestSimulator(g, reliable(lambda v: Flood(10)), seed=2)
    result = sim.run(max_rounds=60)
    assert result.halted
    best = max(g.vertices())
    assert all(result.output_of(v) == best for v in g.vertices())


@pytest.mark.parametrize("engine", ["fast", "reference"])
def test_reliable_transport_defeats_heavy_drops(engine):
    """30% drops + corruption: the wrapped flood still converges."""
    g = gnp_random_graph(16, 0.3, seed=4)
    plan = FaultPlan(seed=3, drop=0.3, corrupt=0.05)
    wrapped = []

    def factory(v):
        algo = ReliableAlgorithm(Flood(12), timeout=3, max_backoff=24)
        wrapped.append(algo)
        return algo

    sim = CongestSimulator(g, factory, seed=4, engine=engine, faults=plan)
    result = sim.run(max_rounds=400)
    assert result.halted
    best = max(g.vertices())
    assert all(result.output_of(v) == best for v in g.vertices())
    # The channel really was hostile and the transport really worked.
    assert sim.metrics.messages_dropped > 0
    assert sum(a.retransmissions for a in wrapped) > 0
    assert sum(a.invalid_discarded for a in wrapped) > 0


def test_unreliable_flood_fails_where_reliable_succeeds():
    """The control: the same plan breaks the raw algorithm."""
    g = path_graph(8)
    plan = FaultPlan(seed=8, drop=0.5)
    raw = CongestSimulator(g, lambda v: Flood(12), seed=1, faults=plan)
    raw_result = raw.run(max_rounds=400)
    best = max(g.vertices())
    raw_correct = all(raw_result.outputs[v] == best for v in g.vertices())
    assert not raw_correct  # 50% loss on a path must break plain flooding

    cured = CongestSimulator(
        g,
        # The inner flood halts at its round budget whether or not the
        # transport has finished hauling improvements across the lossy
        # hops, so the budget must exceed the worst per-hop latency:
        # tight retries (timeout=1) and a generous attempt cap keep
        # every frame alive until it lands.
        reliable(lambda v: Flood(600), timeout=1, max_attempts=40),
        seed=1,
        faults=plan,
    )
    cured_result = cured.run(max_rounds=8000)
    assert all(cured_result.output_of(v) == best for v in g.vertices())


def test_duplicates_are_discarded_by_seq():
    g = path_graph(4)
    plan = FaultPlan(seed=5, duplicate=0.5)
    wrapped = []

    def factory(v):
        algo = ReliableAlgorithm(Flood(8))
        wrapped.append(algo)
        return algo

    sim = CongestSimulator(g, factory, seed=0, faults=plan)
    result = sim.run(max_rounds=200)
    assert result.halted
    assert all(result.output_of(v) == 3 for v in g.vertices())
    assert sim.metrics.messages_duplicated > 0
    assert sum(a.duplicates_discarded for a in wrapped) > 0


def test_transport_abandons_frames_to_a_crashed_peer():
    """A crashed neighbor must not hold the sender hostage forever."""
    g = path_graph(3)
    plan = FaultPlan(crashes=((2, 1),))
    wrapped = []

    def factory(v):
        algo = ReliableAlgorithm(Flood(6), timeout=2, max_attempts=3)
        wrapped.append(algo)
        return algo

    sim = CongestSimulator(g, factory, seed=0, faults=plan)
    result = sim.run(max_rounds=300)
    assert result.halted  # the survivors finished despite the dead peer
    assert result.crashed == frozenset({2})
    assert sum(a.abandoned for a in wrapped) > 0


def test_transport_exhaustion_grades_failed_deterministically():
    """Heavy loss + tiny attempt caps: abandonment is graded, not hidden.

    With ``max_attempts=2`` on a 70%-loss channel the transport must
    give up on frames, the flood converges on wrong answers, and the
    graded verdict is ``failed`` — identically on every rerun, because
    the fault stream and the retry schedule are both deterministic.
    """
    g = path_graph(10)
    plan = FaultPlan(seed=21, drop=0.7)
    best = max(g.vertices())

    def graded_run():
        wrapped = []

        def factory(v):
            algo = ReliableAlgorithm(Flood(10), timeout=1, max_attempts=2)
            wrapped.append(algo)
            return algo

        sim = CongestSimulator(g, factory, seed=6, faults=plan)
        result = sim.run(max_rounds=400)
        wrong = sum(1 for v in g.vertices() if result.output_of(v) != best)
        verdict = (
            Verdict.correct() if wrong == 0
            else Verdict.failed(f"{wrong} vertices missed the max id")
        )
        return verdict, sum(a.abandoned for a in wrapped)

    verdict, abandoned = graded_run()
    assert verdict.status == "failed" and not verdict.ok
    assert abandoned > 0  # the caps really were exhausted
    again, abandoned_again = graded_run()
    assert (again, abandoned_again) == (verdict, abandoned)


def test_transport_parameter_validation():
    with pytest.raises(ValueError):
        ReliableAlgorithm(Flood(1), timeout=0)
    with pytest.raises(ValueError):
        ReliableAlgorithm(Flood(1), max_attempts=0)


# ----------------------------------------------------------------------
# Validators
# ----------------------------------------------------------------------


def test_verdict_labels_and_roundtrip():
    assert Verdict.correct().label() == "correct"
    assert Verdict.degraded(0.875).label() == "degraded(0.88)"
    assert Verdict.failed("x").label() == "failed"
    assert Verdict.correct().ok and Verdict.degraded(0.5).ok
    assert not Verdict.failed().ok
    v = Verdict.degraded(0.5, "half")
    assert Verdict.from_dict(v.to_dict()) == v


def test_validate_decomposition_grades():
    g = delaunay_planar_graph(40, seed=7)
    decomp = expander_decomposition(g, 0.9, seed=7)
    assert validate_decomposition(decomp).status == "correct"

    # Tighten epsilon after the fact: structurally sound, over budget.
    over_budget = ExpanderDecomposition(
        graph=decomp.graph,
        epsilon=decomp.cut_fraction() / 2 if decomp.cut_fraction() else 0.01,
        phi=decomp.phi,
        clusters=decomp.clusters,
        cut_edges=decomp.cut_edges,
        certificates=decomp.certificates,
    )
    if decomp.cut_fraction() > 0:
        graded = validate_decomposition(over_budget)
        assert graded.status == "degraded"
        assert 0.0 < graded.ratio < 1.0

    # Drop a cluster: the partition no longer covers V -> failed.
    broken = ExpanderDecomposition(
        graph=decomp.graph,
        epsilon=decomp.epsilon,
        phi=decomp.phi,
        clusters=decomp.clusters[:-1],
        cut_edges=decomp.cut_edges,
        certificates=decomp.certificates[:-1],
    )
    assert validate_decomposition(broken).status == "failed"


def test_validate_independent_set_grades():
    g = path_graph(6)
    full = greedy_min_degree_is(g)
    assert validate_independent_set(g, full).status == "correct"
    partial = validate_independent_set(g, {0})
    assert partial.status == "degraded"
    assert 0.0 < partial.ratio < 1.0
    assert validate_independent_set(g, {0, 1}).status == "failed"
    assert validate_independent_set(g, {99}).status == "failed"


def test_validate_matching_grades():
    g = path_graph(6)
    full = maximal_matching(g, seed=0)
    assert validate_matching(g, full).status == "correct"
    partial = validate_matching(g, {(0, 1)})
    assert partial.status == "degraded"
    assert validate_matching(g, {(0, 1), (1, 2)}).status == "failed"
    assert validate_matching(g, {(0, 5)}).status == "failed"


def test_validate_framework_correct_run():
    g = delaunay_planar_graph(48, seed=9)

    def solver(sub, leader, notes):
        return {v: sub.degree(v) for v in sub.vertices()}

    result = run_framework(g, 0.9, solver=solver, phi=0.1, seed=9)
    verdict = validate_framework(result)
    assert verdict.status in ("correct", "degraded")
    if result.all_succeeded and len(result.answers) == g.n:
        assert verdict.status == "correct"


def test_validate_framework_degraded_and_failed():
    class _Gather:
        success = False
        answers = {}

    class _Run:
        success = False

    class _Partial:
        def __init__(self, graph, answers, clusters):
            self.graph = graph
            self.answers = answers
            self.clusters = clusters

    g = path_graph(4)
    half = _Partial(g, {0: 1, 1: 1}, [_Run()])
    verdict = validate_framework(half)
    assert verdict.status == "degraded"
    assert verdict.ratio == pytest.approx(0.5)
    empty = _Partial(g, {}, [_Run()])
    assert validate_framework(empty).status == "failed"
