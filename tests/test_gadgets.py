"""Tests for Lemma 2.5 vertex splitting and sparsity."""

import pytest

from repro.errors import GraphError, SolverError
from repro.generators import (
    complete_graph,
    cycle_graph,
    delaunay_planar_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graph import Graph
from repro.spectral import (
    conductance_lower_bound,
    exact_conductance,
    exact_sparsity,
    expander_gadget,
    split_vertices,
)


class TestGadget:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 8, 16, 40])
    def test_connected_constant_degree(self, size):
        g = expander_gadget(size, seed=1)
        assert g.n == size
        assert g.is_connected()
        assert g.max_degree() <= 5

    @pytest.mark.parametrize("size", [8, 16, 32, 64])
    def test_spectral_gap_bounded_away_from_zero(self, size):
        g = expander_gadget(size, seed=2)
        # Theta(1) conductance certificate: lambda_2/2 stays above a
        # fixed constant as size grows.
        assert conductance_lower_bound(g) >= 0.02

    def test_invalid_size(self):
        with pytest.raises(GraphError):
            expander_gadget(0)


class TestSplitVertices:
    def test_sizes(self):
        g = grid_graph(3, 3)
        split, ports = split_vertices(g, seed=3)
        # One gadget vertex per edge endpoint.
        assert split.n == sum(max(1, g.degree(v)) for v in g.vertices())
        assert len(ports) == 2 * g.m

    def test_constant_max_degree(self):
        g = star_graph(30)  # degree-30 hub
        split, _ = split_vertices(g, seed=4)
        assert split.max_degree() <= 7

    def test_connected_iff_original(self):
        g = delaunay_planar_graph(30, seed=5)
        split, _ = split_vertices(g, seed=6)
        assert split.is_connected()

    def test_ports_carry_original_edges(self):
        g = cycle_graph(5)
        split, ports = split_vertices(g, seed=7)
        for u, v in g.edges():
            assert split.has_edge(ports[(u, v)], ports[(v, u)])

    def test_isolated_vertex_kept(self):
        g = Graph.from_edges([(0, 1)], vertices=[0, 1, 2])
        split, _ = split_vertices(g, seed=8)
        assert (2, 0) in split


class TestSparsityRelation:
    def test_exact_sparsity_path(self):
        g = path_graph(6)
        value, cut = exact_sparsity(g)
        assert value == pytest.approx(1 / 3)

    def test_exact_sparsity_limit(self):
        with pytest.raises(SolverError):
            exact_sparsity(grid_graph(5, 5))

    @pytest.mark.parametrize(
        "make",
        [
            lambda: path_graph(5),
            lambda: cycle_graph(6),
            lambda: complete_graph(4),
            lambda: star_graph(4),
        ],
        ids=["path", "cycle", "K4", "star"],
    )
    def test_lemma_c2_theta_relation(self, make):
        """Psi(G') = Theta(Phi(G)): within generous constants on small
        instances where both sides are exactly computable."""
        g = make()
        phi, _ = exact_conductance(g)
        split, _ = split_vertices(g, seed=9)
        if split.n > 20:
            pytest.skip("split graph too large for exact sparsity")
        psi, _ = exact_sparsity(split)
        assert psi >= phi / 12
        assert psi <= 12 * max(phi, 1e-9)
