"""Tests for the classic graph generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.generators import (
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    gnp_random_graph,
    grid_graph,
    hypercube_graph,
    path_graph,
    random_tree,
    star_graph,
)


class TestDeterministicFamilies:
    def test_path(self):
        g = path_graph(5)
        assert (g.n, g.m) == (5, 4)
        assert g.degree(0) == 1
        assert g.degree(2) == 2

    def test_path_trivial(self):
        assert path_graph(0).n == 0
        assert path_graph(1).m == 0

    def test_cycle(self):
        g = cycle_graph(6)
        assert (g.n, g.m) == (6, 6)
        assert all(g.degree(v) == 2 for v in g.vertices())

    def test_cycle_too_small(self):
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_star(self):
        g = star_graph(7)
        assert g.degree(0) == 7
        assert g.m == 7

    def test_complete(self):
        g = complete_graph(6)
        assert g.m == 15
        assert g.max_degree() == 5

    def test_complete_bipartite(self):
        g = complete_bipartite_graph(3, 4)
        assert g.m == 12
        assert g.degree(0) == 4
        assert g.degree(3) == 3

    def test_grid(self):
        g = grid_graph(4, 5)
        assert g.n == 20
        assert g.m == 4 * 4 + 3 * 5
        assert g.is_connected()

    def test_grid_requires_positive_dims(self):
        with pytest.raises(GraphError):
            grid_graph(0, 3)

    def test_hypercube(self):
        g = hypercube_graph(4)
        assert g.n == 16
        assert all(g.degree(v) == 4 for v in g.vertices())
        assert g.m == 32

    def test_hypercube_vertex_neighbors_differ_in_one_bit(self):
        g = hypercube_graph(3)
        for u, v in g.edges():
            assert bin(u ^ v).count("1") == 1


class TestRandomFamilies:
    def test_gnp_extremes(self):
        assert gnp_random_graph(8, 0.0, seed=1).m == 0
        assert gnp_random_graph(8, 1.0, seed=1).m == 28

    def test_gnp_bad_p(self):
        with pytest.raises(GraphError):
            gnp_random_graph(5, 1.5)

    def test_gnp_deterministic_by_seed(self):
        a = gnp_random_graph(12, 0.4, seed=7)
        b = gnp_random_graph(12, 0.4, seed=7)
        assert a == b

    @given(st.integers(1, 40), st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_random_tree_is_tree(self, n, seed):
        g = random_tree(n, seed=seed)
        assert g.n == n
        assert g.m == n - 1
        assert g.is_connected()

    def test_random_tree_needs_vertex(self):
        with pytest.raises(GraphError):
            random_tree(0)
