"""Adversarial network conditions: the differential matrix.

The faults layer grew three network-level adversities — topology
churn (edge arrivals/departures/up-windows), partition windows with
healing, and deterministic bounded message delay.  This module pins
them to the same contract every other fault class honors:

* fast and reference engines stay bit-identical under every adversity
  plan — outputs, metrics, per-round traces, *and* per-vertex RNG
  end-states;
* the columnar kernels silently fall back to the scalar path for any
  plan carrying an adversity (so kernels-on equals kernels-off under
  every plan, with or without batched delivery);
* a checkpoint captured with delayed messages still in flight
  serializes them and resumes bit-identically on either engine;
* the semantics themselves are observable: a departed edge splits a
  flood, an arriving edge heals it, a partition isolates its block
  until the window closes, and a delayed message arrives late but
  intact.
"""

import json

import pytest

from repro.congest import (
    CongestSimulator,
    EdgeWindow,
    FaultPlan,
    PartitionWindow,
    SimulationCheckpoint,
    TraceRecorder,
    resume_simulation,
    use_engine,
)
from repro.congest.algorithm import (
    set_batch_delivery_enabled,
    set_kernels_enabled,
)
from repro.generators import gnp_random_graph, path_graph
from repro.independent_set.greedy import LubyMIS
from repro.resilience import STALLED, Verdict

from tests._checkpoint_fixture import FixtureFlood
from tests.test_faults import Flood, PersistentFlood

SEEDS = (5, 19)


def _graph(seed):
    return gnp_random_graph(40, 0.12, seed=seed)


def _plan(kind, graph):
    """One plan per adversity class, scaled to ``graph``."""
    edges = sorted(tuple(sorted(e)) for e in graph.edges())
    verts = sorted(graph.vertices())
    if kind == "churn":
        return FaultPlan(
            seed=31,
            edge_arrivals=tuple((u, v, 3) for u, v in edges[::9]),
            edge_departures=tuple((u, v, 7) for u, v in edges[4::9]),
        )
    if kind == "upwindow":
        return FaultPlan(
            seed=32,
            edge_up_windows=tuple(
                EdgeWindow(u, v, 1, 6) for u, v in edges[::7]
            ),
        )
    if kind == "partition":
        half = tuple(verts[: len(verts) // 2])
        return FaultPlan(seed=33, partitions=(PartitionWindow((half,), 2, 5),))
    if kind == "delay":
        return FaultPlan(seed=34, delay=0.3, max_delay=3)
    if kind == "combined":
        return FaultPlan(
            seed=35,
            drop=0.05,
            delay=0.15,
            max_delay=2,
            edge_departures=tuple((u, v, 5) for u, v in edges[::11]),
            partitions=(PartitionWindow((tuple(verts[:6]),), 1, 4),),
            crashes=((verts[3], 6),),
        )
    raise AssertionError(kind)


#: Which fault counter each plan must move, or the test is vacuous.
_BITE = {
    "churn": "messages_lost_topology",
    "upwindow": "messages_lost_topology",
    "partition": "messages_partitioned",
    "delay": "messages_delayed",
    "combined": "messages_delayed",
}


def _rng_states(sim):
    """Per-vertex RNG end-states keyed by vertex (engine-neutral)."""
    engine = sim._engine
    contexts = engine._contexts
    if isinstance(contexts, dict):  # reference engine
        items = contexts.items()
    else:  # fast engine: canonical order list
        items = zip(engine._verts, contexts)
    return {
        v: (None if ctx._rng is None else ctx._rng.getstate())
        for v, ctx in items
    }


def _run(graph, factory, seed, plan, engine, rounds=40):
    recorder = TraceRecorder(engine)
    sim = CongestSimulator(
        graph, factory, seed=seed, faults=plan, trace=recorder, engine=engine
    )
    result = sim.run(max_rounds=rounds)
    return result, recorder, sim


def _assert_identical(pair_a, pair_b):
    res_a, rec_a, sim_a = pair_a
    res_b, rec_b, sim_b = pair_b
    assert res_a.outputs == res_b.outputs
    assert res_a.halted == res_b.halted
    assert res_a.crashed == res_b.crashed
    assert res_a.metrics.summary() == res_b.metrics.summary()
    assert res_a.metrics.fault_summary() == res_b.metrics.fault_summary()
    assert res_a.metrics.messages_per_round == res_b.metrics.messages_per_round
    assert len(rec_a.rounds) == len(rec_b.rounds)
    for a, b in zip(rec_a.rounds, rec_b.rounds):
        assert a == b
    assert _rng_states(sim_a) == _rng_states(sim_b)


# ----------------------------------------------------------------------
# Engine bit-identity under every adversity class
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("kind", sorted(_BITE))
def test_adversity_bit_identical_across_engines(kind, seed):
    graph = _graph(seed)
    plan = _plan(kind, graph)

    def factory(v):
        return LubyMIS(20)

    with use_engine("reference"):
        ref = _run(graph, factory, seed, plan, "reference")
    with use_engine("fast"):
        fast = _run(graph, factory, seed, plan, "fast")
    _assert_identical(ref, fast)
    # The plan must actually have bitten, or this proves nothing.
    assert fast[0].metrics.fault_summary()[_BITE[kind]] > 0


# ----------------------------------------------------------------------
# Kernels fall back — and stay bit-identical — under adversity plans
# ----------------------------------------------------------------------


@pytest.fixture(autouse=True)
def _kernels_restored(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_THRESHOLD", "1")
    yield
    set_kernels_enabled(True)
    set_batch_delivery_enabled(True)


@pytest.mark.parametrize("kind", sorted(_BITE))
@pytest.mark.parametrize("batched", [True, False])
def test_kernels_fall_back_under_adversity(kind, batched):
    graph = _graph(3)
    plan = _plan(kind, graph)

    def run(enabled):
        set_kernels_enabled(enabled)
        set_batch_delivery_enabled(batched)
        try:
            return _run(graph, lambda v: LubyMIS(20), 3, plan, "fast")
        finally:
            set_kernels_enabled(True)
            set_batch_delivery_enabled(True)

    pair_on = run(True)
    pair_off = run(False)
    # Adversity plans force the scalar path: no kernel on either side.
    assert pair_on[2]._engine._kernel is None
    assert pair_off[2]._engine._kernel is None
    _assert_identical(pair_on, pair_off)


def test_kernel_engages_without_adversity():
    """The fallback above is the *plan's* doing, not an accident."""
    from repro.rng import HAVE_NUMPY

    if not HAVE_NUMPY:
        pytest.skip("kernels require numpy")
    graph = _graph(3)
    set_kernels_enabled(True)
    pair = _run(graph, lambda v: LubyMIS(20), 3, None, "fast")
    assert pair[2]._engine._kernel is not None


# ----------------------------------------------------------------------
# Checkpoint resume with delayed messages in flight
# ----------------------------------------------------------------------

ENGINE_PAIRS = [
    ("fast", "fast"),
    ("reference", "reference"),
    ("fast", "reference"),
    ("reference", "fast"),
]


def _fingerprint(result, recorder):
    return (
        result.outputs,
        result.metrics.to_dict(include_per_round=True),
        result.halted,
        set(result.crashed),
        [r.to_dict() for r in recorder.rounds],
    )


@pytest.mark.parametrize("capture_engine,resume_engine", ENGINE_PAIRS)
def test_resume_with_delayed_messages_in_flight(
    capture_engine, resume_engine
):
    graph = _graph(7)
    plan = FaultPlan(seed=41, delay=0.6, max_delay=5)

    recorder = TraceRecorder("baseline")
    sim = CongestSimulator(
        graph, FixtureFlood, seed=3, faults=plan,
        trace=recorder, engine=resume_engine,
    )
    baseline = _fingerprint(sim.run(120), recorder)

    captured = []
    sim = CongestSimulator(
        graph, FixtureFlood, seed=3, faults=plan,
        trace=TraceRecorder("capture"), engine=capture_engine,
    )
    sim.run(120, checkpoint_every=2, on_checkpoint=captured.append)
    # With delay=0.6 and max_delay=5 some boundary must be crossed
    # with messages still queued, or this test is vacuous.  The state
    # blob is an engine-neutral pickle; peek inside it.
    import pickle

    in_flight = [
        cp for cp in captured if pickle.loads(cp.state).get("delayed")
    ]
    assert in_flight, "no checkpoint caught a delayed message in flight"

    for checkpoint in in_flight:
        checkpoint = SimulationCheckpoint.from_dict(
            json.loads(json.dumps(checkpoint.to_dict()))
        )
        rec = TraceRecorder("resumed")
        resumed = resume_simulation(
            graph, FixtureFlood, checkpoint,
            engine=resume_engine, trace=rec,
        )
        assert _fingerprint(resumed.run(120), rec) == baseline


# ----------------------------------------------------------------------
# Observable semantics of each adversity
# ----------------------------------------------------------------------


@pytest.mark.parametrize("engine", ["fast", "reference"])
def test_edge_departure_splits_a_flood(engine):
    g = path_graph(6)
    plan = FaultPlan(edge_departures=((2, 3, 0),))
    sim = CongestSimulator(
        g, lambda v: Flood(10), seed=0, engine=engine, faults=plan
    )
    result = sim.run(max_rounds=30)
    assert [result.output_of(v) for v in range(6)] == [2, 2, 2, 5, 5, 5]
    assert result.metrics.messages_lost_topology > 0


@pytest.mark.parametrize("engine", ["fast", "reference"])
def test_edge_arrival_heals_a_flood(engine):
    """The middle edge only exists from round 4 on; a persistent
    flood still converges once it appears."""
    g = path_graph(6)
    plan = FaultPlan(edge_arrivals=((2, 3, 4),))
    sim = CongestSimulator(
        g, lambda v: PersistentFlood(15), seed=0, engine=engine, faults=plan
    )
    result = sim.run(max_rounds=40)
    assert [result.output_of(v) for v in range(6)] == [5] * 6
    assert result.metrics.messages_lost_topology > 0


@pytest.mark.parametrize("engine", ["fast", "reference"])
def test_partition_heals_when_window_closes(engine):
    g = path_graph(6)
    plan = FaultPlan(
        partitions=(PartitionWindow(((0, 1, 2),), 0, 5),)
    )
    sim = CongestSimulator(
        g, lambda v: PersistentFlood(15), seed=0, engine=engine, faults=plan
    )
    result = sim.run(max_rounds=40)
    # After the heal the flood completes despite the early isolation.
    assert [result.output_of(v) for v in range(6)] == [5] * 6
    assert result.metrics.messages_partitioned > 0


@pytest.mark.parametrize("engine", ["fast", "reference"])
def test_permanent_partition_isolates_its_block(engine):
    g = path_graph(6)
    plan = FaultPlan(
        partitions=(PartitionWindow(((0, 1, 2),), 0, 10_000),)
    )
    sim = CongestSimulator(
        g, lambda v: Flood(10), seed=0, engine=engine, faults=plan
    )
    result = sim.run(max_rounds=30)
    assert [result.output_of(v) for v in range(6)] == [2, 2, 2, 5, 5, 5]


@pytest.mark.parametrize("engine", ["fast", "reference"])
def test_delayed_messages_arrive_late_but_intact(engine):
    g = path_graph(5)
    plan = FaultPlan(seed=9, delay=1.0, max_delay=3)
    sim = CongestSimulator(
        g, lambda v: PersistentFlood(20), seed=0, engine=engine, faults=plan
    )
    result = sim.run(max_rounds=80)
    # Every message is delayed, yet the flood still converges: delay
    # reorders delivery, it never loses or corrupts payloads.
    assert result.halted
    assert [result.output_of(v) for v in range(5)] == [4] * 5
    assert result.metrics.messages_delayed > 0
    assert result.metrics.messages_dropped == 0


@pytest.mark.parametrize("engine", ["fast", "reference"])
def test_delay_is_bounded_by_max_delay(engine):
    """With max_delay=1 a delayed message lands exactly one round
    late, so a path flood finishes within twice its diameter."""
    g = path_graph(4)
    plan = FaultPlan(seed=9, delay=1.0, max_delay=1)
    sim = CongestSimulator(
        g, lambda v: PersistentFlood(12), seed=0, engine=engine, faults=plan
    )
    result = sim.run(max_rounds=30)
    assert result.halted
    assert [result.output_of(v) for v in range(4)] == [3] * 4


# ----------------------------------------------------------------------
# The stalled verdict
# ----------------------------------------------------------------------


def test_stalled_verdict_semantics():
    verdict = Verdict.stalled("not halted after 40 rounds")
    assert verdict.status == STALLED
    assert not verdict.ok
    assert verdict.ratio == 0.0
    assert verdict.label() == "stalled"
    assert Verdict.from_dict(verdict.to_dict()) == verdict
