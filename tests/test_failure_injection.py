"""Failure-injection tests for the Section 2.3 semantics.

The paper's framework must *detect* its own failures: lost routing
messages (via reverse routing), undersized leader-election budgets,
violated density promises, and non-minor-free inputs.  These tests
inject each failure and assert it is surfaced, never silently wrong.
"""

import pytest

from repro.core import partition_minor_free, singletonize_failed_clusters
from repro.core.failure import degree_condition_holds
from repro.errors import DecompositionError
from repro.generators import (
    complete_graph,
    delaunay_planar_graph,
    gnp_random_graph,
    grid_graph,
    hypercube_graph,
)
from repro.graph import Graph
from repro.routing import gather_topology, walk_exchange


class TestRoutingFailures:
    def test_truncated_walk_detected_by_reverse_routing(self):
        g = grid_graph(6, 6)
        requests = {v: [(v,)] for v in g.vertices()}
        result = walk_exchange(g, 0, requests, phi=0.1, forward_steps=3, seed=0)
        assert not result.success
        # Every undelivered token's origin can see it is missing.
        assert len(result.undelivered) > 0
        delivered_origins = {k[0] for k in result.requests_delivered}
        undelivered_origins = {k[0] for k in result.undelivered}
        assert undelivered_origins <= set(g.vertices())
        # Delivered + undelivered account for all tokens.
        assert len(result.requests_delivered) + len(result.undelivered) == g.n

    def test_failed_gather_keeps_answers_partial_not_wrong(self):
        g = grid_graph(6, 6)
        calls = []

        def solver(sub, leader, notes):
            calls.append(sub.n)
            return {v: sub.degree(v) for v in sub.vertices()}

        result = gather_topology(g, phi=0.1, solver=solver, seed=0,
                                 forward_steps=3)
        assert not result.success
        # Whatever answers did arrive are correct for the *partial*
        # topology the leader saw — never fabricated.
        assert calls  # solver ran on the partial gather
        assert result.failure_reason is not None

    def test_framework_reports_per_cluster_failures(self):
        # Force failure by patching gather to use a tiny walk: emulate
        # by running on a graph whose clusters we then check.
        g = delaunay_planar_graph(60, seed=1)
        result = partition_minor_free(g, 0.3, seed=2)
        # Healthy run: all succeeded and flags are all set.
        assert result.all_succeeded
        for run in result.clusters:
            assert run.success
            assert run.degree_condition_ok


class TestModelViolations:
    def test_degree_condition_rejects_expander(self):
        g = hypercube_graph(8)
        assert not degree_condition_holds(g, phi=0.2)

    def test_degree_condition_accepts_minor_free_cluster(self):
        g = delaunay_planar_graph(80, seed=3)
        # The certificate phi of such a cluster is small; the condition
        # holds comfortably.
        from repro.spectral import conductance_lower_bound

        assert degree_condition_holds(g, conductance_lower_bound(g))

    def test_budget_enforcement_raises_not_corrupts(self):
        g = grid_graph(8, 8)
        with pytest.raises(DecompositionError):
            partition_minor_free(g, 0.05, phi=0.3, seed=4)

    def test_non_minor_free_input_still_partitions_without_budget(self):
        g = gnp_random_graph(40, 0.4, seed=5)
        result = partition_minor_free(g, 0.2, seed=6, enforce_budget=False)
        covered = set()
        for run in result.clusters:
            covered |= run.vertices
        assert covered == set(g.vertices())


class TestRecovery:
    def test_singletonization_preserves_coverage(self):
        clusters = [{0, 1, 2}, {3, 4}, {5}]
        fixed = singletonize_failed_clusters(clusters, failed=[0, 2])
        covered = set().union(*fixed)
        assert covered == {0, 1, 2, 3, 4, 5}
        assert {0} in fixed and {5} in fixed

    def test_singletonize_no_failures_is_identity(self):
        clusters = [{0, 1}, {2}]
        assert singletonize_failed_clusters(clusters, []) == [
            {0, 1},
            {2},
        ]

    def test_property_tester_survives_clique_input(self):
        # A clique is as far from minor-free as possible; the tester
        # must terminate with a verdict, not crash.
        from repro.property_testing import PLANARITY, distributed_property_test

        g = complete_graph(20)
        result = distributed_property_test(g, PLANARITY, 0.1, seed=7)
        assert not result.accepted
