"""CI stub: see ``ci/no_numpy_stub/numpy/__init__.py``."""

raise ImportError("scipy is stubbed out by ci/no_numpy_stub")
