"""CI stub: simulates an environment without NumPy installed.

Prepending ``ci/no_numpy_stub`` to ``PYTHONPATH`` shadows the real
NumPy (and SciPy) with packages whose import fails, so the no-NumPy
degradation paths (``repro.rng.HAVE_NUMPY``, the scalar CONGEST
kernels fallback, gated generators) run exactly as they would on a
minimal install.
"""

raise ImportError("numpy is stubbed out by ci/no_numpy_stub")
