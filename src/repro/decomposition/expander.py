"""(epsilon, phi) expander decomposition.

An (epsilon, phi) expander decomposition removes at most an epsilon
fraction of the edges so that every remaining connected component is a
phi-expander (Section 2 of the paper).  The paper consumes the
distributed construction of Chang-Saranurak (FOCS 2020) as a black box;
per the substitution policy in DESIGN.md we provide a from-scratch
*centralized reference construction* with the same interface and
machine-checkable certificates, and charge its distributed round cost
analytically (Theorems 2.1/2.2 formulas, exposed via
:meth:`ExpanderDecomposition.theoretical_rounds`).

Construction: recursive spectral refinement.  For each working cluster,
certify expansion via Cheeger (lambda_2 / 2 >= phi) — or exact
conductance for tiny clusters — and otherwise split along a Fiedler
sweep cut and recurse on the connected components of both sides.
Every emitted cluster carries a *certified* conductance lower bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import DecompositionError
from ..graph import Graph, edge_key
from ..obs import registry as _telemetry
from ..rng import SeedLike, ensure_rng
from ..spectral.conductance import (
    EXACT_CONDUCTANCE_LIMIT,
    conductance_lower_bound,
    exact_conductance,
    lambda2_and_fiedler,
    sweep_cut,
)


def phi_for_epsilon(epsilon: float, m: int) -> float:
    """Default conductance target phi = Theta(epsilon / log m).

    Matches the existentially optimal trade-off (Section 2): an
    (epsilon, phi) decomposition exists for phi = Omega(epsilon/log n),
    and the hypercube shows this is tight.  The constant 8 is the
    safety margin that lets the recursive construction meet its edge
    budget on every graph family in the benchmark suite.
    """
    if not 0.0 < epsilon < 1.0:
        raise DecompositionError("epsilon must lie in (0, 1)")
    return epsilon / (8.0 * max(1.0, math.log2(m + 2)))


@dataclass
class ExpanderDecomposition:
    """The output of :func:`expander_decomposition`.

    ``clusters``
        Vertex sets V_1, ..., V_k partitioning V; each induced subgraph
        (after removing cut edges) is connected.
    ``cut_edges``
        The inter-cluster edge set E^r.
    ``certificates``
        Per-cluster certified conductance lower bounds (Cheeger or
        exact); ``certificates[i]`` refers to ``clusters[i]``.
    """

    graph: Graph
    epsilon: float
    phi: float
    clusters: List[Set] = field(default_factory=list)
    cut_edges: List[Tuple] = field(default_factory=list)
    certificates: List[float] = field(default_factory=list)

    @property
    def k(self) -> int:
        return len(self.clusters)

    def cut_fraction(self) -> float:
        """|E^r| / |E| — must be at most epsilon."""
        if self.graph.m == 0:
            return 0.0
        return len(self.cut_edges) / self.graph.m

    def cluster_of(self) -> Dict:
        """Map each vertex to its cluster index."""
        assignment: Dict = {}
        for i, cluster in enumerate(self.clusters):
            for v in cluster:
                assignment[v] = i
        return assignment

    def cluster_subgraph(self, i: int) -> Graph:
        """G[V_i] (note: may contain cut edges' endpoints internally)."""
        return self.graph.subgraph(self.clusters[i])

    def min_certificate(self) -> float:
        """The weakest per-cluster conductance certificate."""
        return min(self.certificates, default=1.0)

    def theoretical_rounds(self, randomized: bool = True) -> float:
        """The Theorem 2.1 / 2.2 round cost charged for construction.

        The centralized reference construction replaces the distributed
        Chang-Saranurak algorithm (see DESIGN.md substitution 1); this
        is the round count the black box would have consumed:
        eps^{-O(1)} log^{O(1)} n randomized, or
        eps^{-O(1)} 2^{O(sqrt(log n log log n))} deterministic.  We
        instantiate the O(1) exponents as 3 (the exponent pair used in
        the paper's building blocks).
        """
        n = max(2, self.graph.n)
        eps_factor = self.epsilon ** -3
        if randomized:
            return eps_factor * math.log2(n) ** 3
        return eps_factor * 2 ** (3 * math.sqrt(math.log2(n) * math.log2(max(2, math.log2(n)))))


def expander_decomposition(
    graph: Graph,
    epsilon: float,
    phi: Optional[float] = None,
    seed: SeedLike = None,
    enforce_budget: bool = True,
    cut_slack: float = 1.0,
    max_cluster_size: Optional[int] = None,
) -> ExpanderDecomposition:
    """Compute an (epsilon, phi) expander decomposition of ``graph``.

    Parameters
    ----------
    graph:
        Any graph; the guarantees are strongest on sparse (H-minor-free)
        inputs, but the construction never *assumes* minor-freeness —
        matching the failure semantics of Section 2.3 that the property
        tester relies on.
    epsilon:
        Edge budget: at most ``epsilon * graph.m`` inter-cluster edges.
    phi:
        Conductance target for the clusters.  Defaults to
        :func:`phi_for_epsilon`.  Each emitted cluster carries a
        certificate >= phi.
    enforce_budget:
        When true (default), raise :class:`DecompositionError` if the
        final cut exceeds the epsilon budget; the property tester turns
        this off and inspects the overflow itself.
    cut_slack:
        With ``cut_slack > 1`` and a seed, each split is a random sweep
        prefix whose conductance is within the slack factor of the best
        one, so repeated runs with different seeds produce different
        cluster boundaries (used by iterated algorithms such as the
        distributed MWM).
    max_cluster_size:
        Keep splitting clusters larger than this even when certified.
        On minor-free graphs a phi-expander cluster has
        O(Delta / phi^2) vertices anyway (Lemma 2.3), so a size cap is
        a phi floor in disguise; applications use it to keep the
        leaders' exact solvers within their practical envelope.
    """
    if not 0.0 < epsilon < 1.0:
        raise DecompositionError("epsilon must lie in (0, 1)")
    if phi is None:
        phi = phi_for_epsilon(epsilon, graph.m)
    if phi <= 0:
        raise DecompositionError("phi must be positive")

    rng = ensure_rng(seed)
    result = ExpanderDecomposition(graph=graph, epsilon=epsilon, phi=phi)

    with _telemetry.span("decompose"):
        # Work on connected pieces; isolated vertices become singletons.
        stack: List[Set] = [set(c) for c in graph.connected_components()]
        while stack:
            cluster = stack.pop()
            sub = graph.subgraph(cluster)
            small_enough = (
                max_cluster_size is None
                or len(cluster) <= max(1, max_cluster_size)
            )
            # Certify and (if that fails) split off ONE eigensolve: the
            # Cheeger certificate lambda_2 / 2 and the Fiedler sweep vector
            # come from the same normalized Laplacian, so large clusters
            # that fail certification hand their vector straight to
            # sweep_cut instead of solving again (see _certify for the
            # equivalent single-purpose check).
            certificate = None
            fiedler = None
            if small_enough:
                with _telemetry.span("certify"):
                    if sub.n <= 1:
                        certificate = 1.0
                    elif sub.n == 2:
                        certificate = 1.0 if sub.m == 1 else None
                    elif sub.n <= min(12, EXACT_CONDUCTANCE_LIMIT):
                        value, _ = exact_conductance(sub)
                        certificate = value if value >= phi else None
                    else:
                        gap, fiedler = lambda2_and_fiedler(sub)
                        lower = gap / 2.0
                        certificate = lower if lower >= phi else None
            if certificate is not None:
                result.clusters.append(cluster)
                result.certificates.append(certificate)
                continue
            # Not certified: split along a (possibly randomized) sweep cut.
            with _telemetry.span("split"):
                _, side = sweep_cut(
                    sub, vector=fiedler, rng=rng, slack=cut_slack
                )
                if not side or len(side) == len(cluster):
                    # Degenerate sweep (should not happen); fall back to a
                    # single-vertex shave to guarantee progress.
                    side = {next(iter(cluster))}
                for u, v in sub.boundary(side):
                    result.cut_edges.append(edge_key(u, v))
                for piece in (side, cluster - side):
                    piece_sub = sub.subgraph(piece)
                    for comp in piece_sub.connected_components():
                        stack.append(set(comp))
            _telemetry.count("decompose.splits")

    if enforce_budget and result.cut_fraction() > epsilon + 1e-12:
        raise DecompositionError(
            f"cut fraction {result.cut_fraction():.4f} exceeds epsilon="
            f"{epsilon} (phi={phi:.5f} too aggressive for this graph)"
        )
    _telemetry.count("decompose.runs")
    _telemetry.count("decompose.clusters", result.k)
    _telemetry.count("decompose.cut_edges", len(result.cut_edges))
    return result


def _certify(sub: Graph, phi: float) -> Optional[float]:
    """Certified conductance lower bound if >= phi, else None."""
    if sub.n <= 1:
        return 1.0
    if sub.n == 2:
        return 1.0 if sub.m == 1 else None
    if sub.n <= min(12, EXACT_CONDUCTANCE_LIMIT):
        value, _ = exact_conductance(sub)
        return value if value >= phi else None
    lower = conductance_lower_bound(sub)
    return lower if lower >= phi else None


def verify_expander_decomposition(
    decomposition: ExpanderDecomposition,
    recheck_conductance: bool = True,
) -> Dict[str, float]:
    """Independently validate a decomposition; raises on violation.

    Checks: the clusters partition V; cut edges are exactly the
    inter-cluster edges; the edge budget holds; every cluster (minus
    cut edges) is connected; and (optionally) every certificate is a
    genuine conductance lower bound of its cluster.  Returns a summary
    report used by the benchmark tables.
    """
    graph = decomposition.graph
    assignment: Dict = {}
    for i, cluster in enumerate(decomposition.clusters):
        for v in cluster:
            if v in assignment:
                raise DecompositionError(f"vertex {v!r} is in two clusters")
            assignment[v] = i
    if set(assignment) != set(graph.vertices()):
        raise DecompositionError("clusters do not cover the vertex set")

    cut_set = {edge_key(u, v) for u, v in decomposition.cut_edges}
    for u, v in graph.edges():
        crossing = assignment[u] != assignment[v]
        in_cut = edge_key(u, v) in cut_set
        if crossing and not in_cut:
            raise DecompositionError(
                f"inter-cluster edge ({u!r}, {v!r}) missing from cut set"
            )

    if decomposition.cut_fraction() > decomposition.epsilon + 1e-12:
        raise DecompositionError("edge budget violated")

    min_cert = 1.0
    for i, cluster in enumerate(decomposition.clusters):
        sub = graph.subgraph(cluster).remove_edges(cut_set)
        if len(sub.connected_components()) > 1:
            raise DecompositionError(f"cluster {i} is disconnected")
        cert = decomposition.certificates[i]
        min_cert = min(min_cert, cert)
        if recheck_conductance and sub.n > 2:
            lower = conductance_lower_bound(sub)
            if sub.n <= 12:
                lower = max(lower, exact_conductance(sub)[0])
            if lower + 1e-9 < cert and lower < decomposition.phi:
                raise DecompositionError(
                    f"cluster {i} certificate {cert:.5f} not supported "
                    f"(recheck gives {lower:.5f})"
                )
    return {
        "clusters": float(decomposition.k),
        "cut_fraction": decomposition.cut_fraction(),
        "min_certificate": min_cert,
        "max_cluster_size": float(
            max((len(c) for c in decomposition.clusters), default=0)
        ),
    }
