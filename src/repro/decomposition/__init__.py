"""Graph decompositions.

Two decompositions drive the paper: the (epsilon, phi) *expander
decomposition* (Theorems 2.1/2.2, consumed as a black box by the
framework of Theorem 2.6) and the *low-diameter decomposition* the
framework itself produces (Theorem 1.5).  Both are implemented here
with machine-checkable certificates.
"""

from .expander import (
    ExpanderDecomposition,
    expander_decomposition,
    phi_for_epsilon,
    verify_expander_decomposition,
)
from .low_diameter import (
    LowDiameterDecomposition,
    ball_carving_ldd,
    chop_ldd,
    theorem_1_5_ldd,
    verify_ldd,
)
from .mpx import MPXClustering, mpx_ldd

__all__ = [
    "ExpanderDecomposition",
    "expander_decomposition",
    "phi_for_epsilon",
    "verify_expander_decomposition",
    "LowDiameterDecomposition",
    "ball_carving_ldd",
    "chop_ldd",
    "theorem_1_5_ldd",
    "verify_ldd",
    "MPXClustering",
    "mpx_ldd",
]
