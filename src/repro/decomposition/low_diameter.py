"""Low-diameter decompositions (Theorem 1.5 and its ingredients).

An (epsilon, D) low-diameter decomposition partitions V so that at most
``epsilon * |E|`` edges cross clusters and every induced cluster has
diameter at most D.  The paper improves the distributed dependence from
D = epsilon^{-O(1)} to the optimal D = O(1/epsilon) on H-minor-free
networks by composing the Theorem 2.6 framework with *any sequential*
LDD run locally at cluster leaders.

This module provides the sequential ingredients:

* :func:`ball_carving_ldd` — classic region growing; works on every
  graph with D = O(log(m)/epsilon) (the Linial-Saks-style guarantee).
* :func:`chop_ldd` — iterated BFS-layer chopping with random offsets
  (the Klein-Plotkin-Rao recipe the paper cites [68]); on minor-free
  graphs a constant number of chopping rounds yields D = O(1/epsilon).

and the headline composition :func:`theorem_1_5_ldd`, which performs
an expander decomposition and refines each cluster with a sequential
LDD at parameter epsilon/2, exactly as Section 3.5 prescribes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import DecompositionError
from ..graph import Graph, edge_key
from ..rng import SeedLike, ensure_rng


@dataclass
class LowDiameterDecomposition:
    """Partition with per-cluster diameters and the crossing edge set."""

    graph: Graph
    epsilon: float
    clusters: List[Set] = field(default_factory=list)
    cut_edges: List[Tuple] = field(default_factory=list)

    def cut_fraction(self) -> float:
        if self.graph.m == 0:
            return 0.0
        return len(self.cut_edges) / self.graph.m

    def cut_weight_fraction(self) -> float:
        """Weight of crossing edges over total weight (the weighted
        guarantee of Czygrinow et al., paper §1.1)."""
        total = self.graph.total_weight()
        if total == 0:
            return 0.0
        crossing = sum(self.graph.weight(u, v) for u, v in self.cut_edges)
        return crossing / total

    def max_diameter(self) -> int:
        """Largest induced-subgraph diameter over all clusters."""
        worst = 0
        for cluster in self.clusters:
            sub = self.graph.subgraph(cluster)
            for comp in sub.connected_components():
                worst = max(worst, sub.subgraph(comp).diameter())
        return worst

    def cluster_of(self) -> Dict:
        assignment: Dict = {}
        for i, cluster in enumerate(self.clusters):
            for v in cluster:
                assignment[v] = i
        return assignment


def _crossing_edges(graph: Graph, clusters: Sequence[Set]) -> List[Tuple]:
    assignment: Dict = {}
    for i, cluster in enumerate(clusters):
        for v in cluster:
            assignment[v] = i
    return [
        edge_key(u, v)
        for u, v in graph.edges()
        if assignment[u] != assignment[v]
    ]


def ball_carving_ldd(
    graph: Graph,
    epsilon: float,
    seed: SeedLike = None,
    weighted: bool = False,
) -> LowDiameterDecomposition:
    """Region-growing LDD: D = O(log(m)/epsilon), cut <= epsilon|E|.

    Repeatedly grow a BFS ball from an arbitrary uncarved vertex,
    stopping at the first radius where the boundary has at most
    ``epsilon/2`` times the edges inside the ball (plus one); such a
    radius exists within O(log m / epsilon) layers by the standard
    charging argument, giving the diameter bound unconditionally.

    With ``weighted=True`` the growth condition compares edge *weights*
    instead of counts — the edge-weighted guarantee of Czygrinow et al.
    (paper §1.1): the weight of inter-cluster edges is at most an
    epsilon fraction of the total weight.  Hop diameter is still what
    is bounded (the paper's weighted setting weights costs, not
    distances).
    """
    if not 0.0 < epsilon < 1.0:
        raise DecompositionError("epsilon must lie in (0, 1)")
    rng = ensure_rng(seed)
    remaining = set(graph.vertices())
    clusters: List[Set] = []
    growth = epsilon / 2.0
    while remaining:
        root = min(remaining, key=repr)
        sub = graph.subgraph(remaining)
        layers = sub.bfs_layers(root)
        ball: Set = set()
        internal = 0.0
        chosen: Optional[Set] = None
        for i, layer in enumerate(layers):
            new = set(layer)
            # Edges incident to the new layer that land inside the ball
            # or the layer itself become internal.
            for v in new:
                for u in sub.neighbors(v):
                    if u in ball or (u in new and repr(u) < repr(v)):
                        internal += sub.weight(u, v) if weighted else 1
            ball |= new
            boundary = (
                sub.cut_weight(ball) if weighted else sub.cut_size(ball)
            )
            if boundary <= growth * (internal + 1):
                chosen = set(ball)
                break
        if chosen is None:
            chosen = set(ball)  # whole component
        clusters.append(chosen)
        remaining -= chosen
    result = LowDiameterDecomposition(
        graph=graph, epsilon=epsilon, clusters=clusters
    )
    result.cut_edges = _crossing_edges(graph, clusters)
    return result


def chop_ldd(
    graph: Graph,
    epsilon: float,
    depth: int = 3,
    seed: SeedLike = None,
) -> LowDiameterDecomposition:
    """Iterated BFS-layer chopping (the KPR recipe, [68] in the paper).

    Each round chops every current piece into bands of
    ``width = ceil(2 * depth / epsilon)`` consecutive BFS layers with a
    random offset, then recurses on the connected components of the
    bands.  Each round cuts an expected ``epsilon / depth`` fraction of
    edges, so ``depth`` rounds stay within the epsilon budget while, on
    minor-free graphs, a constant depth suffices to bring the strong
    diameter down to O(width) = O(1/epsilon).
    """
    if not 0.0 < epsilon < 1.0:
        raise DecompositionError("epsilon must lie in (0, 1)")
    if depth < 1:
        raise DecompositionError("depth must be at least 1")
    rng = ensure_rng(seed)
    width = max(2, math.ceil(2.0 * depth / epsilon))
    target_diameter = 4 * width

    pieces: List[Set] = [set(c) for c in graph.connected_components()]
    for _ in range(depth):
        next_pieces: List[Set] = []
        for piece in pieces:
            sub = graph.subgraph(piece)
            if sub.n <= 2 or sub.diameter() <= target_diameter:
                next_pieces.append(piece)
                continue
            root = min(piece, key=repr)
            layers = sub.bfs_layers(root)
            offset = rng.randrange(width)
            bands: Dict[int, Set] = {}
            for depth_index, layer in enumerate(layers):
                band = (depth_index + offset) // width
                bands.setdefault(band, set()).update(layer)
            for band in bands.values():
                band_sub = sub.subgraph(band)
                for comp in band_sub.connected_components():
                    next_pieces.append(set(comp))
        pieces = next_pieces

    result = LowDiameterDecomposition(
        graph=graph, epsilon=epsilon, clusters=pieces
    )
    result.cut_edges = _crossing_edges(graph, pieces)
    return result


def theorem_1_5_ldd(
    graph: Graph,
    epsilon: float,
    seed: SeedLike = None,
    sequential: str = "chop",
) -> LowDiameterDecomposition:
    """The Section 3.5 composition: expander decomposition, then local LDD.

    Runs the Theorem 2.6 partition with parameter epsilon/2, then (as
    each leader would, on its gathered topology) refines every cluster
    with a sequential LDD at parameter epsilon/2.  The total cut is at
    most epsilon|E| and each final cluster has diameter O(1/epsilon).

    ``sequential`` picks the local algorithm: "chop" (KPR-style,
    O(1/epsilon) on minor-free inputs) or "ball" (region growing,
    O(log m/epsilon) on anything).
    """
    from ..core.framework import partition_minor_free

    if sequential not in ("chop", "ball"):
        raise DecompositionError("sequential must be 'chop' or 'ball'")
    rng = ensure_rng(seed)
    outer = partition_minor_free(graph, epsilon / 2.0, seed=rng)

    final_clusters: List[Set] = []
    for cluster in outer.decomposition.clusters:
        sub = graph.subgraph(cluster)
        if sequential == "chop":
            inner = chop_ldd(sub, epsilon / 2.0, seed=rng)
        else:
            inner = ball_carving_ldd(sub, epsilon / 2.0, seed=rng)
        final_clusters.extend(inner.clusters)

    result = LowDiameterDecomposition(
        graph=graph, epsilon=epsilon, clusters=final_clusters
    )
    result.cut_edges = _crossing_edges(graph, final_clusters)
    return result


def verify_ldd(
    decomposition: LowDiameterDecomposition,
    max_diameter: Optional[int] = None,
) -> Dict[str, float]:
    """Validate partition/cut consistency and the diameter bound.

    Returns a report with the cut fraction and worst diameter; raises
    :class:`DecompositionError` on partition violations, on a cut
    fraction above epsilon, or (when ``max_diameter`` is given) on a
    cluster exceeding it.
    """
    graph = decomposition.graph
    seen: Set = set()
    for cluster in decomposition.clusters:
        overlap = seen & cluster
        if overlap:
            raise DecompositionError(f"vertices in two clusters: {overlap}")
        seen |= cluster
    if seen != set(graph.vertices()):
        raise DecompositionError("clusters do not cover the vertex set")
    expected_cut = {
        edge_key(u, v) for u, v in _crossing_edges(graph, decomposition.clusters)
    }
    actual_cut = {edge_key(u, v) for u, v in decomposition.cut_edges}
    if expected_cut != actual_cut:
        raise DecompositionError("cut edge set inconsistent with clusters")
    if decomposition.cut_fraction() > decomposition.epsilon + 1e-12:
        raise DecompositionError(
            f"cut fraction {decomposition.cut_fraction():.4f} exceeds "
            f"epsilon={decomposition.epsilon}"
        )
    worst = decomposition.max_diameter()
    if max_diameter is not None and worst > max_diameter:
        raise DecompositionError(
            f"cluster diameter {worst} exceeds bound {max_diameter}"
        )
    return {
        "clusters": float(len(decomposition.clusters)),
        "cut_fraction": decomposition.cut_fraction(),
        "max_diameter": float(worst),
    }
