"""Distributed low-diameter decomposition via exponential shifts (MPX).

The Miller-Peng-Xu clustering is the classic *distributed* LDD the
paper's Theorem 1.5 improves upon on minor-free networks: every vertex
u draws a shift delta_u ~ Exp(beta), and each vertex v joins the
cluster of the u maximizing delta_u - d(u, v).  With beta = eps / 2
each edge is cut with probability O(eps) and clusters have diameter
O(log n / eps) with high probability — the eps^{-1} log n diameter that
Theorem 1.5's O(1/eps) beats.

The construction here runs genuinely message-by-message on the CONGEST
simulator: each vertex floods its best known (shift - distance) key and
adopts improvements, a shifted-BFS wave that stabilizes within
max-shift + cluster-diameter rounds.  Shifts travel as fixed-point
integers so messages stay within the O(log n)-bit budget.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

from ..congest import (
    CongestSimulator,
    SimulationResult,
    VertexAlgorithm,
    VertexContext,
)
from ..errors import DecompositionError
from ..graph import Graph
from ..rng import SeedLike, ensure_rng
from .low_diameter import LowDiameterDecomposition, _crossing_edges

#: Fixed-point denominator for shipping fractional shifts in messages.
SHIFT_SCALE = 1_000_000


class MPXClustering(VertexAlgorithm):
    """One vertex of the exponential-shift clustering protocol.

    State: the best key (shift_u - d(u, v), tie-broken by root ID) seen
    so far.  Protocol: broadcast your own candidacy at start; whenever
    the best key improves, re-broadcast it with the distance
    incremented.  Halt at the round budget with the adopted root.
    """

    def __init__(self, beta: float, shift_cap: float, budget: int) -> None:
        self.beta = beta
        self.shift_cap = shift_cap
        self.budget = budget
        # (scaled shift of root, root, hop distance to root); the
        # adoption key is (scaled_shift - dist * SCALE, root).
        self.best: Optional[Tuple[int, Any, int]] = None

    @staticmethod
    def _key(scaled: int, root: Any, dist: int) -> Tuple[int, Any]:
        return (scaled - dist * SHIFT_SCALE, root)

    def initialize(self, ctx: VertexContext) -> None:
        shift = min(ctx.rng.expovariate(self.beta), self.shift_cap)
        scaled = int(shift * SHIFT_SCALE)
        self.best = (scaled, ctx.vertex, 0)
        ctx.broadcast((ctx.vertex, scaled, 0))

    def step(self, ctx: VertexContext, inbox: Dict[Any, List[Any]]) -> None:
        improved = False
        for payloads in inbox.values():
            for root, scaled, dist in payloads:
                candidate = (scaled, root, dist + 1)
                if self._key(*candidate) > self._key(*self.best):
                    self.best = candidate
                    improved = True
        if improved:
            scaled, root, dist = self.best
            ctx.broadcast((root, scaled, dist))
        if ctx.round_number >= self.budget:
            ctx.halt(self.best[1])


def mpx_ldd(
    graph: Graph,
    epsilon: float,
    seed: SeedLike = None,
    beta: Optional[float] = None,
) -> Tuple[LowDiameterDecomposition, SimulationResult]:
    """Run the distributed MPX clustering; returns (LDD, simulation).

    ``beta`` defaults to epsilon / 2, so the expected cut fraction is
    at most epsilon (each edge is cut with probability <= 1 - e^{-beta}
    <= beta per endpoint ordering).  The LDD's cut budget is therefore
    probabilistic — callers that need a hard budget retry with a fresh
    seed (the benchmark does, and reports the observed distribution).
    """
    if not 0.0 < epsilon < 1.0:
        raise DecompositionError("epsilon must lie in (0, 1)")
    if graph.n == 0:
        raise DecompositionError("cannot decompose an empty graph")
    rng = ensure_rng(seed)
    if beta is None:
        beta = epsilon / 2.0
    shift_cap = 4.0 * math.log(graph.n + 2) / beta
    budget = int(math.ceil(shift_cap)) + 4

    simulator = CongestSimulator(
        graph,
        lambda v: MPXClustering(beta, shift_cap, budget),
        seed=rng.getrandbits(64),
    )
    result = simulator.run(max_rounds=budget + 2)

    by_root: Dict[Any, set] = {}
    for v, root in result.outputs.items():
        by_root.setdefault(root, set()).add(v)
    clusters = list(by_root.values())
    ldd = LowDiameterDecomposition(
        graph=graph, epsilon=epsilon, clusters=clusters
    )
    ldd.cut_edges = _crossing_edges(graph, clusters)
    return ldd, result
