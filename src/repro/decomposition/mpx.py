"""Distributed low-diameter decomposition via exponential shifts (MPX).

The Miller-Peng-Xu clustering is the classic *distributed* LDD the
paper's Theorem 1.5 improves upon on minor-free networks: every vertex
u draws a shift delta_u ~ Exp(beta), and each vertex v joins the
cluster of the u maximizing delta_u - d(u, v).  With beta = eps / 2
each edge is cut with probability O(eps) and clusters have diameter
O(log n / eps) with high probability — the eps^{-1} log n diameter that
Theorem 1.5's O(1/eps) beats.

The construction here runs genuinely message-by-message on the CONGEST
simulator: each vertex floods its best known (shift - distance) key and
adopts improvements, a shifted-BFS wave that stabilizes within
max-shift + cluster-diameter rounds.  Shifts travel as fixed-point
integers so messages stay within the O(log n)-bit budget.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

from ..congest import (
    CongestSimulator,
    SimulationResult,
    VertexAlgorithm,
    VertexContext,
)
from ..congest.algorithm import register_kernel
from ..congest.kernels import KernelBase, int_bit_lengths, seg_max
from ..errors import DecompositionError
from ..graph import Graph
from ..rng import SeedLike, ensure_rng
from .low_diameter import LowDiameterDecomposition, _crossing_edges

#: Fixed-point denominator for shipping fractional shifts in messages.
SHIFT_SCALE = 1_000_000


class MPXClustering(VertexAlgorithm):
    """One vertex of the exponential-shift clustering protocol.

    State: the best key (shift_u - d(u, v), tie-broken by root ID) seen
    so far.  Protocol: broadcast your own candidacy at start; whenever
    the best key improves, re-broadcast it with the distance
    incremented.  Halt at the round budget with the adopted root.
    """

    def __init__(self, beta: float, shift_cap: float, budget: int) -> None:
        self.beta = beta
        self.shift_cap = shift_cap
        self.budget = budget
        # (scaled shift of root, root, hop distance to root); the
        # adoption key is (scaled_shift - dist * SCALE, root).
        self.best: Optional[Tuple[int, Any, int]] = None

    @staticmethod
    def _key(scaled: int, root: Any, dist: int) -> Tuple[int, Any]:
        return (scaled - dist * SHIFT_SCALE, root)

    def initialize(self, ctx: VertexContext) -> None:
        shift = min(ctx.rng.expovariate(self.beta), self.shift_cap)
        scaled = int(shift * SHIFT_SCALE)
        self.best = (scaled, ctx.vertex, 0)
        ctx.broadcast((ctx.vertex, scaled, 0))

    def step(self, ctx: VertexContext, inbox: Dict[Any, List[Any]]) -> None:
        improved = False
        for payloads in inbox.values():
            for root, scaled, dist in payloads:
                candidate = (scaled, root, dist + 1)
                if self._key(*candidate) > self._key(*self.best):
                    self.best = candidate
                    improved = True
        if improved:
            scaled, root, dist = self.best
            ctx.broadcast((root, scaled, dist))
        if ctx.round_number >= self.budget:
            ctx.halt(self.best[1])


@register_kernel(MPXClustering)
class MPXKernel(KernelBase):
    """Columnar twin of :class:`MPXClustering` (see ``docs/kernels.md``).

    A vertex's last broadcast always equals its current best (any
    improvement re-broadcasts), so inbound candidates reconstruct from
    the senders' best columns masked by who broadcast last round.  The
    lexicographic max over (key, root) runs as three masked segment
    maxima; the exponential shifts are drawn through the columnar RNG
    but mapped through ``math.log`` per vertex, because NumPy's SIMD
    ``log`` is not guaranteed ULP-identical to libm's.
    """

    emits_send_plans = True

    #: Sentinel below any reachable adoption key.
    _KEY_MIN = -(2**62)

    @classmethod
    def _supports_population(cls, engine) -> bool:
        first = engine._algorithms[0]
        return all(
            a.beta == first.beta
            and a.shift_cap == first.shift_cap
            and a.budget == first.budget
            for a in engine._algorithms
        )

    def _load_columns(self) -> None:
        np = self.np
        n = self.n
        algo = self.algorithms[0]
        self.beta = algo.beta
        self.shift_cap = algo.shift_cap
        self.budget = algo.budget
        index = self.engine._index
        # Label column for vectorized payload sizing (labels are ints
        # wherever a kernel engages).
        self.labels = np.array(self.verts, dtype=np.int64)
        self.started = np.zeros(n, bool)
        self.best_scaled = np.zeros(n, np.int64)
        self.best_root = np.zeros(n, np.int64)
        self.best_dist = np.zeros(n, np.int64)
        self.best_key = np.full(n, self._KEY_MIN, np.int64)
        self.sent = np.zeros(n, bool)  # broadcast in the last round
        for i, a in enumerate(self.algorithms):
            if a.best is not None:
                scaled, root, dist = a.best
                self.started[i] = True
                self.best_scaled[i] = scaled
                self.best_root[i] = index[root]
                self.best_dist[i] = dist
                self.best_key[i] = scaled - dist * SHIFT_SCALE

    def _write_columns(self) -> None:
        verts = self.verts
        started = self.started.tolist()
        scaled = self.best_scaled.tolist()
        root = self.best_root.tolist()
        dist = self.best_dist.tolist()
        for i, algo in enumerate(self.algorithms):
            if started[i]:
                algo.best = (scaled[i], verts[root[i]], dist[i])

    def _broadcast(self, rows) -> None:
        verts = self.verts
        scaled = self.best_scaled[rows]
        root = self.best_root[rows]
        dist = self.best_dist[rows]
        self.sent[:] = False
        self.sent[rows] = True

        def payloads():
            s = scaled.tolist()
            r = root.tolist()
            d = dist.tolist()
            return [(verts[r[k]], s[k], d[k]) for k in range(len(r))]

        if self._batched:
            # (label, scaled, dist) int triples: 2 bits of tuple
            # framing plus three (bit_length + 3)-bit fields, computed
            # columnar so the hot path builds no payload objects.
            sizes = (
                11
                + int_bit_lengths(self.labels[root])
                + int_bit_lengths(scaled)
                + int_bit_lengths(dist)
            )
            self._emit_broadcast(rows, payloads, size=sizes)
        else:
            self._emit_broadcast(rows, payloads())

    def _initialize_rows(self, rows) -> None:
        # One scalar draw per vertex (the only draw of the protocol);
        # per-vertex math.log keeps bit-parity with rng.expovariate.
        # See "RNG discipline" in docs/kernels.md for why draws this
        # sparse stay on the scalar generators.
        contexts = self.contexts
        log = math.log
        beta = self.beta
        cap = self.shift_cap
        scaled = [
            int(
                min(-log(1.0 - contexts[i].rng.random()) / beta, cap)
                * SHIFT_SCALE
            )
            for i in rows.tolist()
        ]
        self.started[rows] = True
        self.best_scaled[rows] = scaled
        self.best_root[rows] = rows
        self.best_dist[rows] = 0
        self.best_key[rows] = self.best_scaled[rows]
        self._broadcast(rows)

    def _step_rows(self, rows, round_number: int, boxes) -> None:
        np = self.np
        if boxes is not None:
            improved_rows = self._adopt_from_dicts(rows, boxes)
            self.sent[:] = False
            if improved_rows.size:
                self._broadcast(improved_rows)
        else:
            nbr = self.nbr
            indptr = self.indptr
            dst = self.edge_dst
            key_min = self._KEY_MIN
            cand_key = self.best_scaled[nbr] - (
                self.best_dist[nbr] + 1
            ) * SHIFT_SCALE
            cand_root = self.best_root[nbr]
            masked = np.where(self.sent[nbr], cand_key, key_min)
            key_max = seg_max(masked, indptr, key_min)
            # Lexicographic tie-break on the root, then recover the
            # winner's distance (equal-key equal-root candidates share
            # one distance, since a root's scaled shift is constant).
            tie = self.sent[nbr] & (cand_key == key_max[dst])
            root_max = seg_max(np.where(tie, cand_root, -1), indptr, -1)
            tie &= cand_root == root_max[dst]
            dist_win = seg_max(
                np.where(tie, self.best_dist[nbr] + 1, -1), indptr, -1
            )
            due = np.zeros(self.n, bool)
            due[rows] = True
            improved = due & (
                (key_max > self.best_key)
                | ((key_max == self.best_key) & (root_max > self.best_root))
            )
            improved_rows = np.nonzero(improved)[0]
            if improved_rows.size:
                self.best_key[improved_rows] = key_max[improved_rows]
                self.best_root[improved_rows] = root_max[improved_rows]
                self.best_dist[improved_rows] = dist_win[improved_rows]
                self.best_scaled[improved_rows] = (
                    key_max[improved_rows]
                    + dist_win[improved_rows] * SHIFT_SCALE
                )
            if improved_rows.size:
                self._broadcast(improved_rows)
            else:
                self.sent[:] = False
        if round_number >= self.budget:
            verts = self.verts
            for i, r in zip(rows.tolist(), self.best_root[rows].tolist()):
                self._halt(i, verts[r])

    def _adopt_from_dicts(self, rows, boxes):
        np = self.np
        index = self.engine._index
        improved: list = []
        for i, box in zip(rows.tolist(), boxes):
            cur = (int(self.best_key[i]), int(self.best_root[i]))
            best = None
            for payloads in box.values():
                for root, scaled, dist in payloads:
                    cand = (scaled - (dist + 1) * SHIFT_SCALE, index[root])
                    if best is None or cand > best:
                        best = (cand[0], cand[1], scaled, dist + 1)
            if best is not None and (best[0], best[1]) > cur:
                self.best_key[i] = best[0]
                self.best_root[i] = best[1]
                self.best_scaled[i] = best[2]
                self.best_dist[i] = best[3]
                improved.append(i)
        return np.array(improved, dtype=np.intp)


def mpx_ldd(
    graph: Graph,
    epsilon: float,
    seed: SeedLike = None,
    beta: Optional[float] = None,
) -> Tuple[LowDiameterDecomposition, SimulationResult]:
    """Run the distributed MPX clustering; returns (LDD, simulation).

    ``beta`` defaults to epsilon / 2, so the expected cut fraction is
    at most epsilon (each edge is cut with probability <= 1 - e^{-beta}
    <= beta per endpoint ordering).  The LDD's cut budget is therefore
    probabilistic — callers that need a hard budget retry with a fresh
    seed (the benchmark does, and reports the observed distribution).
    """
    if not 0.0 < epsilon < 1.0:
        raise DecompositionError("epsilon must lie in (0, 1)")
    if graph.n == 0:
        raise DecompositionError("cannot decompose an empty graph")
    rng = ensure_rng(seed)
    if beta is None:
        beta = epsilon / 2.0
    shift_cap = 4.0 * math.log(graph.n + 2) / beta
    budget = int(math.ceil(shift_cap)) + 4

    simulator = CongestSimulator(
        graph,
        lambda v: MPXClustering(beta, shift_cap, budget),
        seed=rng.getrandbits(64),
    )
    result = simulator.run(max_rounds=budget + 2)

    by_root: Dict[Any, set] = {}
    for v, root in result.outputs.items():
        by_root.setdefault(root, set()).add(v)
    clusters = list(by_root.values())
    ldd = LowDiameterDecomposition(
        graph=graph, epsilon=epsilon, clusters=clusters
    )
    ldd.cut_edges = _crossing_edges(graph, clusters)
    return ldd, result
