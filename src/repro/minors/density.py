"""Edge density, degeneracy, and exact checkers for small minor-closed classes.

Section 2.2 of the paper leans on two sparsity facts: H-minor-free
graphs have edge density O(1) (Thomason), and Barenboim-Elkin
orientation turns a density bound d into an O(d) out-degree orientation.
This module provides the centralized versions (the distributed
orientation lives in :mod:`repro.routing.orientation`), plus exact
membership tests for the concrete minor-closed classes the property
tester exercises: forests (treewidth 1), series-parallel graphs
(treewidth <= 2, equivalently K_4-minor-free), and outerplanar graphs.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple

from ..graph import Graph


def degeneracy_ordering(graph: Graph) -> Tuple[int, List]:
    """Compute the degeneracy d and a d-degenerate vertex ordering.

    The ordering repeatedly removes a minimum-degree vertex; every
    vertex has at most d neighbors *later* in the returned order.  For
    an H-minor-free graph d = O(1), which is what makes the paper's
    "each vertex only announces its outgoing edges" trick work.
    """
    remaining = {v: set(graph.neighbors(v)) for v in graph.vertices()}
    heap = [(len(nbrs), v) for v, nbrs in remaining.items()]
    heapq.heapify(heap)
    order: List = []
    removed = set()
    degeneracy = 0
    while heap:
        deg, v = heapq.heappop(heap)
        if v in removed or deg != len(remaining[v]):
            continue  # stale heap entry
        degeneracy = max(degeneracy, deg)
        order.append(v)
        removed.add(v)
        for u in remaining[v]:
            remaining[u].discard(v)
            heapq.heappush(heap, (len(remaining[u]), u))
        remaining[v] = set()
    return degeneracy, order


def degeneracy(graph: Graph) -> int:
    """The degeneracy of the graph (max min-degree over subgraphs)."""
    return degeneracy_ordering(graph)[0]


def greedy_orientation(graph: Graph) -> Dict:
    """Orient edges along a degeneracy ordering: out-degree <= degeneracy.

    Returns a dict mapping each vertex to the list of its *out*
    neighbors.  This is the centralized analogue of the
    Barenboim-Elkin O(log n)-round distributed orientation the paper
    invokes for information gathering (Section 2.2).
    """
    _, order = degeneracy_ordering(graph)
    position = {v: i for i, v in enumerate(order)}
    out: Dict = {v: [] for v in graph.vertices()}
    for u, v in graph.edges():
        if position[u] < position[v]:
            out[u].append(v)
        else:
            out[v].append(u)
    return out


def is_forest(graph: Graph) -> bool:
    """Forests: the minor-closed class excluding K_3."""
    # A graph is a forest iff every component has |E| = |V| - 1.
    return graph.m == graph.n - len(graph.connected_components())


def is_series_parallel(graph: Graph) -> bool:
    """Treewidth <= 2, equivalently K_4-minor-free.

    Exact linear-ish check by the classic reduction: repeatedly delete
    vertices of degree <= 1 and *bypass* vertices of degree 2 (connect
    their two neighbors).  The graph has treewidth <= 2 iff the
    reduction reaches the empty graph.
    """
    g = graph.copy()
    queue = [v for v in g.vertices() if g.degree(v) <= 2]
    in_queue = set(queue)
    while queue:
        v = queue.pop()
        in_queue.discard(v)
        if not g.has_vertex(v):
            continue
        deg = g.degree(v)
        if deg > 2:
            continue
        neighbors = g.neighbors(v)
        g.remove_vertex(v)
        if deg == 2:
            a, b = neighbors
            if not g.has_edge(a, b):
                g.add_edge(a, b)
        for u in neighbors:
            if g.degree(u) <= 2 and u not in in_queue:
                queue.append(u)
                in_queue.add(u)
    return g.n == 0


def is_outerplanar(graph: Graph) -> bool:
    """Outerplanar graphs: K_4- and K_{2,3}-minor-free.

    Exact check via the apex trick: G is outerplanar iff G plus a new
    vertex adjacent to every vertex of G is planar (the new vertex
    forces all of G onto one face).
    """
    from .planarity import is_planar

    apex = object()  # guaranteed-fresh vertex label
    g = graph.copy()
    g.add_vertex(apex)
    for v in graph.vertices():
        g.add_edge(apex, v)
    return is_planar(g)
