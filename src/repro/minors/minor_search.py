"""Branch-and-bound minor containment search.

Decides whether a fixed small pattern graph H is a minor of a host
graph G by searching for a *minor model*: a family of vertex-disjoint
connected branch sets, one per vertex of H, such that every edge of H
is realized by at least one host edge between the corresponding branch
sets.

Minor containment is NP-hard for variable H, and this search is
exponential in the worst case; it is intended for small patterns
(K_4, K_5, K_{3,3}, ...) and cluster-sized hosts, which is exactly the
regime the property-testing experiments (Theorem 1.4) and the generator
validation tests need.  Cheap necessary/sufficient conditions (vertex
and edge counts, degree sums, planarity shortcuts) are applied first.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..graph import Graph
from .planarity import is_planar


def _quick_no(host: Graph, pattern: Graph) -> bool:
    """Cheap certificates that the pattern cannot be a minor."""
    if pattern.n > host.n or pattern.m > host.m:
        return True
    # A minor's max degree cannot exceed... (not true in general: a
    # branch set can aggregate degree), so only count-based checks and
    # planarity shortcuts are safe.
    if is_planar(host):
        # Planar graphs contain neither K_5 nor K_{3,3} as minors, and
        # minors of planar graphs are planar.
        if not is_planar(pattern):
            return True
    return False


def _components_within(graph: Graph, allowed: Set) -> List[Set]:
    """Connected components of graph restricted to ``allowed``."""
    seen: Set = set()
    comps: List[Set] = []
    for start in allowed:
        if start in seen:
            continue
        comp = {start}
        frontier = [start]
        while frontier:
            u = frontier.pop()
            for w in graph.neighbors(u):
                if w in allowed and w not in comp:
                    comp.add(w)
                    frontier.append(w)
        seen |= comp
        comps.append(comp)
    return comps


class _MinorSearch:
    """Backtracking search for a minor model of ``pattern`` in ``host``."""

    def __init__(self, host: Graph, pattern: Graph, max_nodes: int) -> None:
        self.host = host
        self.pattern = pattern
        self.max_nodes = max_nodes
        self.nodes_expanded = 0
        # Process pattern vertices from highest degree down: they are
        # the most constrained and fail fastest.
        self.pattern_order = sorted(
            pattern.vertices(), key=pattern.degree, reverse=True
        )

    def search(self) -> Optional[Dict]:
        return self._extend({}, set())

    # ------------------------------------------------------------------
    def _extend(
        self, model: Dict, used: Set
    ) -> Optional[Dict]:
        """Try to assign a branch set to the next pattern vertex."""
        self.nodes_expanded += 1
        if self.nodes_expanded > self.max_nodes:
            raise TimeoutError("minor search exceeded its node budget")
        idx = len(model)
        if idx == len(self.pattern_order):
            return dict(model)
        p = self.pattern_order[idx]
        assigned_nbrs = [
            q for q in self.pattern.neighbors(p) if q in model
        ]
        free = set(self.host.vertices()) - used

        # Feasibility: remaining free vertices must cover remaining
        # pattern vertices one-to-one at minimum.
        if len(free) < len(self.pattern_order) - idx:
            return None

        for seed in sorted(free, key=self.host.degree, reverse=True):
            for branch in self._grow_branch_sets(seed, free, assigned_nbrs, model):
                model[p] = branch
                result = self._extend(model, used | branch)
                if result is not None:
                    return result
                del model[p]
        return None

    def _grow_branch_sets(
        self,
        seed,
        free: Set,
        assigned_nbrs: List,
        model: Dict,
    ):
        """Yield candidate branch sets containing ``seed``.

        Branch sets are grown greedily from ``seed``: start with the
        singleton and, while some required adjacency (to an
        already-assigned neighbor branch set) is unmet, absorb a free
        neighbor that makes progress toward it.  To bound the fan-out
        we yield each distinct prefix of one greedy growth per unmet
        requirement ordering, rather than all connected subsets.
        """
        targets = []
        for q in assigned_nbrs:
            targets.append(model[q])

        def touches(branch: Set, other: Set) -> bool:
            return any(
                w in other for u in branch for w in self.host.neighbors(u)
            )

        # Candidate 0: the singleton (checked for all requirements).
        branch = {seed}
        unmet = [t for t in targets if not touches(branch, t)]
        if not unmet:
            yield frozenset(branch)
        # Greedy growth: BFS from the branch toward each unmet target.
        attempt = set(branch)
        for target in list(unmet):
            path = self._connect(attempt, target, free)
            if path is None:
                return
            attempt |= path
        if all(touches(attempt, t) for t in targets):
            yield frozenset(attempt)

    def _connect(
        self, branch: Set, target: Set, free: Set
    ) -> Optional[Set]:
        """Shortest path of free vertices from ``branch`` to N(target)."""
        from collections import deque

        goal = set()
        for u in target:
            for w in self.host.neighbors(u):
                if w in free:
                    goal.add(w)
        if branch & goal:
            return set()
        parents: Dict = {}
        queue = deque(branch)
        seen = set(branch)
        while queue:
            u = queue.popleft()
            for w in self.host.neighbors(u):
                if w in seen or w not in free:
                    continue
                parents[w] = u if u not in branch else None
                if w in goal:
                    path = {w}
                    cur = parents[w]
                    while cur is not None:
                        path.add(cur)
                        cur = parents.get(cur)
                    return path
                seen.add(w)
                queue.append(w)
        return None


def has_minor(
    host: Graph, pattern: Graph, max_nodes: int = 200_000
) -> bool:
    """Decide whether ``pattern`` is a minor of ``host``.

    Exact for the regimes the quick certificates cover (planar hosts
    vs. non-planar patterns, count bounds); otherwise performs a
    bounded branch-and-bound search.  Raises ``TimeoutError`` when the
    search budget is exhausted without a verdict, so callers can fall
    back to a coarser test instead of silently getting a wrong answer.

    Note the search enumerates a *restricted* family of branch sets
    (greedy connectors), so a ``True`` answer is always correct (the
    model is verified), while a ``False`` answer is exact only when the
    host is small enough that the restricted family is exhaustive in
    practice; the test suite pins its accuracy against networkx-based
    oracles on such instances.
    """
    if pattern.n == 0:
        return True
    if _quick_no(host, pattern):
        return False
    # Work component by component: a connected pattern must embed in a
    # single host component.
    pattern_comps = pattern.connected_components()
    if len(pattern_comps) > 1:
        # A disjoint pattern is a minor iff its components can be packed
        # into host components; we approximate with the common case of
        # searching each pattern component in the full host minus the
        # previously used vertices.  Exact for our test patterns.
        remaining = host.copy()
        for comp in sorted(pattern_comps, key=len, reverse=True):
            sub = pattern.subgraph(comp)
            model = _find_model(remaining, sub, max_nodes)
            if model is None:
                return False
            for branch in model.values():
                remaining.remove_vertices(branch)
        return True
    model = _find_model(host, pattern, max_nodes)
    return model is not None


def _find_model(host: Graph, pattern: Graph, max_nodes: int) -> Optional[Dict]:
    for comp in host.connected_components():
        if len(comp) < pattern.n:
            continue
        sub = host.subgraph(comp)
        search = _MinorSearch(sub, pattern, max_nodes)
        model = search.search()
        if model is not None and _verify_model(sub, pattern, model):
            return model
    return None


def _verify_model(host: Graph, pattern: Graph, model: Dict) -> bool:
    """Check that ``model`` really is a minor model (safety net)."""
    branches = list(model.values())
    for i, a in enumerate(branches):
        for b in branches[i + 1:]:
            if a & b:
                return False
    for branch in branches:
        sub = host.subgraph(branch)
        if not sub.is_connected():
            return False
    for p, q in pattern.edges():
        bp, bq = model[p], model[q]
        if not any(w in bq for u in bp for w in host.neighbors(u)):
            return False
    return True
