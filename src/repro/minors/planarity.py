"""Left-Right planarity test.

A from-scratch implementation of the Brandes formulation of the
de Fraysseix-Rosenstiehl Left-Right criterion.  Planarity is the
keystone property of the paper's experiments (Theorem 3.2 works on
planar networks; Theorem 1.4's flagship instance is planarity testing),
so the library carries its own linear-ish time test and uses networkx
only as an independent oracle in the test suite.

The algorithm, in two DFS phases:

1. *Orientation*: a DFS orients every edge, computing for each oriented
   edge its low point ``lowpt`` (lowest DFS height reachable through
   it), second-lowest point ``lowpt2``, and a ``nesting_depth`` used to
   pre-sort adjacency lists so that phase 2 visits edges innermost
   first.

2. *Testing*: a second DFS maintains a stack of *conflict pairs* of
   intervals of back edges.  Back edges that must be embedded on the
   same side are merged into intervals; two intervals that must be on
   different sides form a conflict pair.  The graph is planar iff no
   step forces two return edges onto both sides at once.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional, Tuple

from ..graph import Graph

Edge = Tuple[object, object]


class _NotPlanar(Exception):
    """Internal control-flow signal: a conflict cannot be resolved."""


class _Interval:
    """An interval of back edges, identified by its low and high edges."""

    __slots__ = ("low", "high")

    def __init__(self, low: Optional[Edge] = None, high: Optional[Edge] = None):
        self.low = low
        self.high = high

    def empty(self) -> bool:
        return self.low is None and self.high is None

    def copy(self) -> "_Interval":
        return _Interval(self.low, self.high)


class _ConflictPair:
    """A pair of intervals whose back edges must go to opposite sides."""

    __slots__ = ("left", "right")

    def __init__(
        self,
        left: Optional[_Interval] = None,
        right: Optional[_Interval] = None,
    ):
        self.left = left if left is not None else _Interval()
        self.right = right if right is not None else _Interval()

    def swap(self) -> None:
        self.left, self.right = self.right, self.left

    def empty(self) -> bool:
        return self.left.empty() and self.right.empty()


class _LRPlanarity:
    """One run of the Left-Right test over a single graph."""

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self.height: Dict = {v: None for v in graph.vertices()}
        self.lowpt: Dict[Edge, int] = {}
        self.lowpt2: Dict[Edge, int] = {}
        self.nesting_depth: Dict[Edge, int] = {}
        self.parent_edge: Dict = {v: None for v in graph.vertices()}
        self.oriented: set = set()
        self.adj: Dict = {v: graph.neighbors(v) for v in graph.vertices()}
        self.ordered_adj: Dict = {}
        self.ref: Dict[Edge, Optional[Edge]] = {}
        self.side: Dict[Edge, int] = {}
        self.stack: List[_ConflictPair] = []
        self.stack_bottom: Dict[Edge, Optional[_ConflictPair]] = {}
        self.lowpt_edge: Dict[Edge, Edge] = {}

    # ------------------------------------------------------------------
    def run(self) -> bool:
        g = self.graph
        if g.n <= 4:
            return True
        if g.m > 3 * g.n - 6:
            # Euler bound: planar graphs are sparse.
            return False

        roots = []
        for v in g.vertices():
            if self.height[v] is None:
                self.height[v] = 0
                roots.append(v)
                self._dfs_orient(v)

        # Sort adjacency lists by nesting depth (innermost loops first).
        for v in g.vertices():
            out_edges = [
                (v, w) for w in self.adj[v] if (v, w) in self.oriented
            ]
            out_edges.sort(key=lambda e: self.nesting_depth[e])
            self.ordered_adj[v] = out_edges

        try:
            for root in roots:
                self._dfs_test(root)
        except _NotPlanar:
            return False
        return True

    # ------------------------------------------------------------------
    # Phase 1: orientation
    # ------------------------------------------------------------------
    def _dfs_orient(self, root) -> None:
        # Iterative DFS to avoid Python recursion limits on long paths.
        stack = [(root, iter(self.adj[root]))]
        while stack:
            v, it = stack[-1]
            advanced = False
            for w in it:
                ei = (v, w)
                if ei in self.oriented or (w, v) in self.oriented:
                    continue
                self.oriented.add(ei)
                self.lowpt[ei] = self.height[v]
                self.lowpt2[ei] = self.height[v]
                if self.height[w] is None:
                    # Tree edge: descend.
                    self.parent_edge[w] = ei
                    self.height[w] = self.height[v] + 1
                    stack.append((w, iter(self.adj[w])))
                    advanced = True
                    break
                # Back edge.
                self.lowpt[ei] = self.height[w]
                self._finish_edge(ei, v)
            if not advanced:
                stack.pop()
                e = self.parent_edge[v]
                if e is not None:
                    self._finish_edge(e, e[0])

    def _finish_edge(self, ei: Edge, v) -> None:
        """Set nesting depth of ``ei`` and fold its lowpoints into parent."""
        self.nesting_depth[ei] = 2 * self.lowpt[ei]
        if self.lowpt2[ei] < self.height[v]:
            # Chordal edge: nest it one level deeper.
            self.nesting_depth[ei] += 1
        e = self.parent_edge[v]
        if e is not None and e != ei:
            if self.lowpt[ei] < self.lowpt[e]:
                self.lowpt2[e] = min(self.lowpt[e], self.lowpt2[ei])
                self.lowpt[e] = self.lowpt[ei]
            elif self.lowpt[ei] > self.lowpt[e]:
                self.lowpt2[e] = min(self.lowpt2[e], self.lowpt[ei])
            else:
                self.lowpt2[e] = min(self.lowpt2[e], self.lowpt2[ei])

    # ------------------------------------------------------------------
    # Phase 2: testing
    # ------------------------------------------------------------------
    def _dfs_test(self, root) -> None:
        # Iterative DFS mirroring the recursive formulation: each frame
        # remembers which outgoing edge index it is processing and
        # whether it is returning from a tree-edge descent.
        stack: List[List] = [[root, 0, False]]
        while stack:
            frame = stack[-1]
            v, idx, returning = frame
            edges = self.ordered_adj[v]
            e = self.parent_edge[v]

            if returning:
                # We just came back from the tree edge edges[idx].
                ei = edges[idx]
                self._after_child(v, e, ei, idx)
                frame[1] = idx + 1
                frame[2] = False
                continue

            if idx < len(edges):
                ei = edges[idx]
                self.stack_bottom[ei] = self.stack[-1] if self.stack else None
                w = ei[1]
                if ei == self.parent_edge[w]:
                    # Tree edge: descend, then handle constraints on return.
                    frame[2] = True
                    stack.append([w, 0, False])
                else:
                    # Back edge: it is its own return edge.
                    self.lowpt_edge[ei] = ei
                    self.stack.append(
                        _ConflictPair(right=_Interval(ei, ei))
                    )
                    self._after_child(v, e, ei, idx)
                    frame[1] = idx + 1
                continue

            # All outgoing edges of v processed.
            stack.pop()
            if e is not None:
                u = e[0]
                self._trim_back_edges(u)
                if self.lowpt[e] < self.height[u] and self.stack:
                    # e has a return edge: remember the highest one.
                    hl = self.stack[-1].left.high
                    hr = self.stack[-1].right.high
                    if hl is not None and (
                        hr is None or self.lowpt[hl] > self.lowpt[hr]
                    ):
                        self.ref[e] = hl
                    else:
                        self.ref[e] = hr

    def _after_child(self, v, e: Optional[Edge], ei: Edge, idx: int) -> None:
        """Integrate the constraints produced by outgoing edge ``ei``."""
        if self.lowpt[ei] < self.height[v]:
            # ei has a return edge below v.
            if idx == 0 and e is not None:
                self.lowpt_edge[e] = self.lowpt_edge[ei]
            else:
                self._add_constraints(ei, e)

    def _add_constraints(self, ei: Edge, e: Optional[Edge]) -> None:
        p = _ConflictPair()
        # Merge the return edges of ei into p.right.
        while True:
            q = self.stack.pop()
            if not q.left.empty():
                q.swap()
            if not q.left.empty():
                raise _NotPlanar
            assert q.right.low is not None
            if e is not None and self.lowpt[q.right.low] > self.lowpt[e]:
                # Merge interval.
                if p.right.empty():
                    p.right.high = q.right.high
                else:
                    self.ref[p.right.low] = q.right.high
                p.right.low = q.right.low
            else:
                # Align.
                self.ref[q.right.low] = self.lowpt_edge[e] if e else None
            top = self.stack[-1] if self.stack else None
            if top is self.stack_bottom[ei]:
                break
        # Merge conflicting return edges of earlier siblings into p.left.
        while self.stack and (
            self._conflicting(self.stack[-1].left, ei)
            or self._conflicting(self.stack[-1].right, ei)
        ):
            q = self.stack.pop()
            if self._conflicting(q.right, ei):
                q.swap()
            if self._conflicting(q.right, ei):
                raise _NotPlanar
            # Merge the interval below lowpt(ei) into p.right.
            if p.right.low is not None:
                self.ref[p.right.low] = q.right.high
            if q.right.low is not None:
                p.right.low = q.right.low
            if p.left.empty():
                p.left.high = q.left.high
            else:
                self.ref[p.left.low] = q.left.high
            p.left.low = q.left.low
        if not p.empty():
            self.stack.append(p)

    def _conflicting(self, interval: _Interval, b: Edge) -> bool:
        return (
            not interval.empty()
            and interval.high is not None
            and self.lowpt[interval.high] > self.lowpt[b]
        )

    def _lowest(self, p: _ConflictPair) -> int:
        if p.left.empty():
            return self.lowpt[p.right.low]
        if p.right.empty():
            return self.lowpt[p.left.low]
        return min(self.lowpt[p.left.low], self.lowpt[p.right.low])

    def _trim_back_edges(self, u) -> None:
        """Drop back edges that end at DFS height of ``u``."""
        while self.stack and self._lowest(self.stack[-1]) == self.height[u]:
            p = self.stack.pop()
            if p.left.low is not None:
                self.side[p.left.low] = -1
        if self.stack:
            p = self.stack.pop()
            # Trim left interval.
            while p.left.high is not None and p.left.high[1] == u:
                p.left.high = self.ref.get(p.left.high)
            if p.left.high is None and p.left.low is not None:
                self.ref[p.left.low] = p.right.low
                self.side[p.left.low] = -1
                p.left.low = None
            # Trim right interval (symmetric).
            while p.right.high is not None and p.right.high[1] == u:
                p.right.high = self.ref.get(p.right.high)
            if p.right.high is None and p.right.low is not None:
                self.ref[p.right.low] = p.left.low
                self.side[p.right.low] = -1
                p.right.low = None
            self.stack.append(p)


def is_planar(graph: Graph) -> bool:
    """Decide planarity of ``graph`` via the Left-Right criterion.

    Works on disconnected graphs; a graph is planar iff each component
    is.  Runs in near-linear time, so it is safe to call on whole
    networks, not just clusters.
    """
    return _LRPlanarity(graph).run()
