"""Minor-related machinery.

The paper's framework is parameterized by an excluded minor H.  This
package supplies the pieces needed to *work with* that parameterization
in code: a from-scratch Left-Right planarity test (planar = K_5-free and
K_{3,3}-minor-free), exact checkers for the small minor-closed classes
the experiments use, a branch-and-bound minor-containment search for
small H, and the degeneracy/edge-density tools behind the paper's
"H-minor-free graphs have O(1) edge density" arguments (Section 2.2).
"""

from .planarity import is_planar
from .minor_search import has_minor
from .density import (
    degeneracy,
    degeneracy_ordering,
    greedy_orientation,
    is_forest,
    is_outerplanar,
    is_series_parallel,
)

__all__ = [
    "is_planar",
    "has_minor",
    "degeneracy",
    "degeneracy_ordering",
    "greedy_orientation",
    "is_forest",
    "is_outerplanar",
    "is_series_parallel",
]
