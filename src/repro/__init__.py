"""repro — reproduction of Chang & Su, "Narrowing the LOCAL-CONGEST Gaps
in Sparse Networks via Expander Decompositions" (PODC 2022).

The package builds the system the paper describes: a CONGEST-model
simulator, (epsilon, phi) expander decompositions with certificates,
random-walk cluster routing, the Theorem 2.6 partition-gather-solve
framework, and every application the paper proves theorems about --
matching, independent set, correlation clustering, property testing,
and low-diameter decomposition -- each with sequential exact baselines.

Quickstart::

    from repro import generators, run_framework

    g = generators.delaunay_planar_graph(200, seed=0)
    result = run_framework(
        g, epsilon=0.2,
        solver=lambda sub, leader: {v: sub.degree(v) for v in sub.vertices()},
        seed=0,
    )
    print(result.metrics.summary())

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
per-theorem experiment results.
"""

from . import generators
from .core.framework import (
    FrameworkResult,
    PartitionResult,
    partition_minor_free,
    run_framework,
)
from .decomposition.expander import (
    ExpanderDecomposition,
    expander_decomposition,
    verify_expander_decomposition,
)
from .decomposition.low_diameter import (
    LowDiameterDecomposition,
    theorem_1_5_ldd,
    verify_ldd,
)
from .graph import Graph

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "generators",
    "run_framework",
    "partition_minor_free",
    "FrameworkResult",
    "PartitionResult",
    "expander_decomposition",
    "verify_expander_decomposition",
    "ExpanderDecomposition",
    "theorem_1_5_ldd",
    "verify_ldd",
    "LowDiameterDecomposition",
    "__version__",
]
