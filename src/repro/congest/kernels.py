"""Shared runtime for columnar round kernels (fast engine only).

A registered :class:`~repro.congest.algorithm.RoundKernel` replaces the
fast engine's per-vertex ``initialize``/``step`` loop with NumPy
columns — one entry per vertex, with CSR adjacency for neighborhood
reductions.  Everything else (message collection, fault channel,
metrics, traces, scheduling) stays on the engine's scalar path, which
is what keeps kernelized runs bit-identical: kernels write real
per-context outboxes, so the single accounting path in
``FastEngine._collect`` charges identical bits either way.  Random
draws also stay on the per-vertex scalar generators (``ctx.rng``):
the registered protocols consume O(log n) words per vertex, far too
few to amortize columnar stream adoption (see the measurements in
``docs/kernels.md``); :class:`~repro.rng.MTColumn` remains available
for draw-heavy kernels.

Activation (:func:`maybe_build_kernel`) is deliberately conservative.
A kernel engages only when

* kernels are enabled (``repro bench --no-kernels`` / the
  ``REPRO_NO_KERNELS`` environment variable flip this off),
* NumPy is importable (``HAVE_NUMPY`` — otherwise everything silently
  degrades to scalar),
* the population is uniform (every vertex runs the same registered
  algorithm class) and at least ``kernel_threshold()`` vertices big,
* the fault plan cannot touch messages: kernels reconstruct inbound
  traffic from the sender-side columns of the previous round, which is
  only faithful on a lossless channel.  Crash-only plans qualify
  (crashed vertices are filtered before the kernel sees the round);
  drop/duplicate/corrupt/link-failure/rejoin plans fall back, and the
  first round after a checkpoint restore replays the restored inbox
  dictionaries before switching to columnar reconstruction.

The fallback is always silent and always bit-identical — a kernel is a
pure performance feature (``tests/test_kernels.py`` pins this).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .. import rng as _rng
from .algorithm import (
    RoundKernel,
    kernel_class_for,
    kernel_threshold,
    kernels_enabled,
)


def maybe_build_kernel(engine, resume: bool = False) -> Optional[RoundKernel]:
    """Build the columnar kernel for ``engine``, or ``None`` to run
    scalar.  See the module docstring for the activation rules."""
    algorithms = engine._algorithms
    if not algorithms:
        return None
    cls = type(algorithms[0])
    kernel_cls = kernel_class_for(cls)
    if kernel_cls is None:
        return None
    reason = None
    if not kernels_enabled():
        reason = "disabled"
    elif not _rng.HAVE_NUMPY:
        reason = "no-numpy"
    elif engine._n < kernel_threshold():
        reason = "below-threshold"
    elif any(type(a) is not cls for a in algorithms):
        reason = "mixed-population"
    else:
        injector = engine.faults
        if injector is not None:
            plan = injector.plan
            if (
                plan.drop
                or plan.duplicate
                or plan.corrupt
                or plan.link_failures
                or plan.rejoins
            ):
                reason = "faulty-channel"
    if reason is None and not kernel_cls.supports(engine):
        reason = "unsupported-population"
    registry = engine._registry
    if reason is not None:
        # Diagnostic only: congest.kernel.* counters are excluded from
        # telemetry identity comparisons (see Registry.comparable_dict).
        if registry is not None:
            registry.count("congest.kernel.fallback")
        return None
    kernel = kernel_cls(engine, resume=resume)
    if registry is not None:
        registry.count("congest.kernel.engaged")
    return kernel


def _np():
    return _rng.np


# -- CSR segment reductions --------------------------------------------------

def seg_count(flags, indptr):
    """Per-row count of true flags over CSR edge data."""
    np = _np()
    csum = np.concatenate(
        (np.zeros(1, np.int64), np.cumsum(flags, dtype=np.int64))
    )
    return csum[indptr[1:]] - csum[indptr[:-1]]


def seg_any(flags, indptr):
    """Per-row "any flag true" over CSR edge data."""
    return seg_count(flags, indptr) > 0


def seg_max(vals, indptr, empty):
    """Per-row max over CSR edge data; empty rows yield ``empty``.

    ``np.maximum.reduceat`` mishandles empty segments (it returns the
    element *at* the segment start); padding with a sentinel and
    overwriting empty rows afterwards restores exact semantics.
    """
    np = _np()
    n_rows = indptr.shape[0] - 1
    if vals.shape[0] == 0:
        return np.full(n_rows, empty, dtype=vals.dtype)
    padded = np.append(vals, vals.dtype.type(empty))
    starts = np.minimum(indptr[:-1], vals.shape[0])
    out = np.maximum.reduceat(padded, starts)
    out[indptr[:-1] == indptr[1:]] = empty
    return out


class KernelBase(RoundKernel):
    """Plumbing shared by every concrete kernel.

    Subclasses implement ``_load_columns`` (scalar objects -> columns,
    run at construction so a restored checkpoint resumes mid-protocol),
    ``_write_columns`` (columns -> scalar objects, run at ``sync``),
    ``_initialize_rows`` and ``_step_rows``.
    """

    @classmethod
    def supports(cls, engine) -> bool:
        # Columnar tie-breaks compare dense indices instead of vertex
        # labels, which is only faithful when canonical order is label
        # order — true exactly for the int-labelled graphs the
        # generators produce.  bool is an int subclass; exclude it.
        return all(
            type(v) is int for v in engine._verts
        ) and cls._supports_population(engine)

    @classmethod
    def _supports_population(cls, engine) -> bool:
        return True

    def __init__(self, engine, resume: bool = False) -> None:
        np = _np()
        self.np = np
        self.engine = engine
        self.n = n = engine._n
        self.contexts = engine._contexts
        self.algorithms = engine._algorithms
        self.verts = engine._verts
        # CSR adjacency in canonical order: row i's slice lists i's
        # neighbors exactly as ``ctx.neighbors`` does (ascending label
        # order), so "the k-th active neighbor" means the same thing
        # columnar and scalar.
        index = engine._index
        indptr = np.zeros(n + 1, np.int64)
        flat: List[int] = []
        for i, ctx in enumerate(self.contexts):
            flat.extend(index[u] for u in ctx.neighbors)
            indptr[i + 1] = len(flat)
        self.indptr = indptr
        self.nbr = np.array(flat, dtype=np.int64) if flat else np.zeros(
            0, np.int64
        )
        degrees = indptr[1:] - indptr[:-1]
        self.edge_dst = np.repeat(np.arange(n, dtype=np.int64), degrees)
        # Rounds in which each vertex last stepped, mirrored into
        # ``ctx.round_number`` at sync (the scalar path sets it per
        # step; doing that eagerly would cost a Python attribute write
        # per vertex per round).
        self.last_step = np.array(
            [ctx.round_number for ctx in self.contexts], dtype=np.int64
        )
        self._rn_dirty = np.zeros(n, dtype=bool)
        self._state_dirty = False
        # After a checkpoint restore the previous round's sends are only
        # available as the restored inbox dictionaries; replay those
        # once, then trust the columns.
        self._use_dicts = bool(resume)
        self._load_columns()

    # -- engine-facing entry points ------------------------------------
    def initialize(self, live: Sequence[int]) -> None:
        np = self.np
        rows = np.fromiter(live, np.intp, count=len(live))
        self._state_dirty = True
        self._initialize_rows(rows)

    def step_round(self, due: Sequence[int], round_number: int) -> None:
        np = self.np
        engine = self.engine
        rows = np.fromiter(due, np.intp, count=len(due))
        self.last_step[rows] = round_number
        self._rn_dirty[rows] = True
        self._state_dirty = True
        boxes = None
        if self._use_dicts:
            boxes = [engine._pending[i] or {} for i in due]
        # Consume the pending inboxes exactly like the scalar loop.
        pids = engine._pending_ids
        if pids:
            pending = engine._pending
            for i in pids.intersection(due):
                pending[i] = None
            pids.difference_update(due)
        self._step_rows(rows, round_number, boxes)
        self._use_dicts = False

    def sync(self) -> None:
        np = self.np
        for i in np.nonzero(self._rn_dirty)[0].tolist():
            self.contexts[i].round_number = int(self.last_step[i])
        self._rn_dirty[:] = False
        if self._state_dirty:
            self._write_columns()
            self._state_dirty = False

    # -- helpers for concrete kernels ----------------------------------
    def _halt(self, i: int, output) -> None:
        ctx = self.contexts[i]
        ctx._halted = True
        ctx._output = output

    # -- subclass responsibilities -------------------------------------
    def _load_columns(self) -> None:
        raise NotImplementedError

    def _write_columns(self) -> None:
        raise NotImplementedError

    def _initialize_rows(self, rows) -> None:
        raise NotImplementedError

    def _step_rows(self, rows, round_number: int, boxes) -> None:
        raise NotImplementedError
