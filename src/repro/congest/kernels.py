"""Shared runtime for columnar round kernels (fast engine only).

A registered :class:`~repro.congest.algorithm.RoundKernel` replaces the
fast engine's per-vertex ``initialize``/``step`` loop with NumPy
columns — one entry per vertex, with CSR adjacency for neighborhood
reductions.  Everything else (message collection, fault channel,
metrics, traces, scheduling) stays on the engine's scalar path, which
is what keeps kernelized runs bit-identical: kernels write real
per-context outboxes, so the single accounting path in
``FastEngine._collect`` charges identical bits either way.  Random
draws also stay on the per-vertex scalar generators (``ctx.rng``):
the registered protocols consume O(log n) words per vertex, far too
few to amortize columnar stream adoption (see the measurements in
``docs/kernels.md``); :class:`~repro.rng.MTColumn` remains available
for draw-heavy kernels.

Activation (:func:`maybe_build_kernel`) is deliberately conservative.
A kernel engages only when

* kernels are enabled (``repro bench --no-kernels`` / the
  ``REPRO_NO_KERNELS`` environment variable flip this off),
* NumPy is importable (``HAVE_NUMPY`` — otherwise everything silently
  degrades to scalar),
* the population is uniform (every vertex runs the same registered
  algorithm class) and at least ``kernel_threshold()`` vertices big,
* the fault plan cannot touch messages: kernels reconstruct inbound
  traffic from the sender-side columns of the previous round, which is
  only faithful on a lossless, static channel.  Crash-only plans
  qualify (crashed vertices are filtered before the kernel sees the
  round); drop/duplicate/corrupt/link-failure/rejoin plans fall back,
  as do the network-adversity plans (topology churn, partition
  windows, message delay — each rewrites what the receiver sees), and
  the first round after a checkpoint restore replays the restored
  inbox dictionaries before switching to columnar reconstruction.

The fallback is always silent and always bit-identical — a kernel is a
pure performance feature (``tests/test_kernels.py`` pins this).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .. import rng as _rng
from ..errors import MessageTooLargeError, ProtocolError
from .algorithm import (
    RoundKernel,
    batch_delivery_enabled,
    kernel_class_for,
    kernel_threshold,
    kernels_enabled,
)
from .message import message_bits

#: Private sentinel distinguishing "no shared payload" from a shared
#: payload of ``None`` (a legal CONGEST signal).
_NO_PAYLOAD = object()


def maybe_build_kernel(engine, resume: bool = False) -> Optional[RoundKernel]:
    """Build the columnar kernel for ``engine``, or ``None`` to run
    scalar.  See the module docstring for the activation rules."""
    algorithms = engine._algorithms
    if not algorithms:
        return None
    cls = type(algorithms[0])
    kernel_cls = kernel_class_for(cls)
    if kernel_cls is None:
        return None
    reason = None
    if not kernels_enabled():
        reason = "disabled"
    elif not _rng.HAVE_NUMPY:
        reason = "no-numpy"
    elif engine._n < kernel_threshold():
        reason = "below-threshold"
    elif any(type(a) is not cls for a in algorithms):
        reason = "mixed-population"
    elif getattr(engine, "_want_detail", False):
        # Per-message provenance tracing needs the scalar channel;
        # batched plans never materialize individual transmissions.
        reason = "trace-detail"
    else:
        injector = engine.faults
        if injector is not None:
            plan = injector.plan
            if (
                plan.drop
                or plan.duplicate
                or plan.corrupt
                or plan.link_failures
                or plan.rejoins
                or plan.edge_arrivals
                or plan.edge_departures
                or plan.edge_up_windows
                or plan.partitions
                or plan.delay
            ):
                reason = "faulty-channel"
    if reason is None and not kernel_cls.supports(engine):
        reason = "unsupported-population"
    registry = engine._registry
    if reason is not None:
        # Diagnostic only: congest.kernel.* counters are excluded from
        # telemetry identity comparisons (see Registry.comparable_dict).
        if registry is not None:
            registry.count("congest.kernel.fallback")
        return None
    kernel = kernel_cls(engine, resume=resume)
    if registry is not None:
        registry.count("congest.kernel.engaged")
    return kernel


def _np():
    return _rng.np


# -- CSR segment reductions --------------------------------------------------

def seg_count(flags, indptr):
    """Per-row count of true flags over CSR edge data."""
    np = _np()
    csum = np.concatenate(
        (np.zeros(1, np.int64), np.cumsum(flags, dtype=np.int64))
    )
    return csum[indptr[1:]] - csum[indptr[:-1]]


def seg_any(flags, indptr):
    """Per-row "any flag true" over CSR edge data."""
    return seg_count(flags, indptr) > 0


def seg_max(vals, indptr, empty):
    """Per-row max over CSR edge data; empty rows yield ``empty``.

    ``np.maximum.reduceat`` mishandles empty segments (it returns the
    element *at* the segment start); padding with a sentinel and
    overwriting empty rows afterwards restores exact semantics.
    """
    np = _np()
    n_rows = indptr.shape[0] - 1
    if vals.shape[0] == 0:
        return np.full(n_rows, empty, dtype=vals.dtype)
    padded = np.append(vals, vals.dtype.type(empty))
    starts = np.minimum(indptr[:-1], vals.shape[0])
    out = np.maximum.reduceat(padded, starts)
    out[indptr[:-1] == indptr[1:]] = empty
    return out


# -- batched delivery --------------------------------------------------------

def int_bit_lengths(vals):
    """Vectorized ``int.bit_length() or 1`` for an integer column.

    Matches :func:`repro.congest.message.message_bits`'s charge for an
    int field (before the sign/framing extra): ``frexp`` on the exact
    float64 image of the magnitude yields the bit length, which is
    exact for ``|value| < 2**53`` — far beyond any vertex label or
    fixed-point shift the kernels ship.  Zero maps to 1, like scalar.
    """
    np = _np()
    mags = np.abs(vals)
    if mags.size and int(mags.max()) >= 2**53:
        raise ValueError("int_bit_lengths requires |values| < 2**53")
    return np.maximum(
        np.frexp(mags.astype(np.float64))[1], 1
    ).astype(np.int64)


class SendPlan:
    """One round of kernel sends in columnar form.

    A plan holds the segments a kernel emitted through
    :meth:`KernelBase._emit_broadcast` / :meth:`KernelBase._emit_send`
    this round.  Each segment is ``(kind, rows, targets, payloads,
    shared, size)``:

    * ``kind`` — ``"b"`` (broadcast to every CSR neighbor of each row)
      or ``"u"`` (one explicit target per row);
    * ``rows`` — ascending dense sender indices;
    * ``targets`` — dense receiver indices aligned with ``rows``
      (``kind == "u"`` only);
    * ``payloads`` — a per-row payload column, a zero-argument
      callable returning one (built only if the plan materializes, so
      the hot path never constructs payload objects), or ``None`` when
      every row sends the ``shared`` payload object;
    * ``size`` — the ``message_bits`` of the payloads: a uniform int,
      a per-row ``int64`` column aligned with ``rows`` (computed
      vectorized by the kernel, e.g. via :func:`int_bit_lengths`), or
      ``None`` to measure (once per distinct payload, not per edge).

    The engine charges the whole plan vectorized in :meth:`account` —
    per-edge congestion via ``bincount``-style unique/count reduction
    over dense ``sender * n + receiver`` edge keys, budget and strict
    checks as array comparisons that reproduce the scalar error text
    and attribution exactly — and defers building per-receiver inbox
    dictionaries until something needs object-level messages
    (:meth:`materialize`: checkpoint capture or crash filtering).

    Faithfulness constraint (holds for every shipped kernel, asserted
    nowhere for speed): the flattened segment-major order of a plan
    must equal the order the scalar path would drain the same sends —
    i.e. a sender appears in at most one segment per round, or only
    single-sender plans span segments.  Error attribution and
    materialized inbox insertion order both rely on it.
    """

    __slots__ = ("kernel", "segments")

    def __init__(self, kernel: "KernelBase", segments: List[tuple]) -> None:
        self.kernel = kernel
        self.segments = segments

    def account(self, engine):
        """Vectorized twin of the scalar ``_collect`` accounting.

        Returns ``(per_edge, messages, bits, bits_hist, max_bits,
        receivers)`` without touching any pending inbox; raises
        ``MessageTooLargeError`` / ``ProtocolError`` for the same first
        offending message, with the same text, as the scalar path.
        """
        kernel = self.kernel
        np = kernel.np
        indptr = kernel.indptr
        nbr = kernel.nbr
        n = engine._n
        verts = engine._verts
        budget_bits = engine.budget.bits
        want_hist = engine._want_bits_hist
        messages = 0
        bits = 0
        max_bits = 0
        bits_hist: dict = {}
        key_arrays = []
        # Earliest over-budget message, as (flat position in plan
        # order, measured bits, sender index, receiver index).  The
        # scalar loop checks budget before strict capacity on each
        # message, so ties at the same position resolve to budget.
        first_budget = None
        flat_base = 0
        for kind, rows, targets, payloads, shared, size in self.segments:
            rows = rows.astype(np.int64, copy=False)
            if kind == "b":
                deg = indptr[rows + 1] - indptr[rows]
                total = int(deg.sum())
                if total == 0:
                    continue
                starts = indptr[rows]
                cum = np.cumsum(deg)
                flat = np.repeat(starts - (cum - deg), deg) + np.arange(
                    total, dtype=np.int64
                )
                tgt = nbr[flat]
                senders = np.repeat(rows, deg)
            else:
                total = int(rows.shape[0])
                if total == 0:
                    continue
                deg = None
                tgt = targets.astype(np.int64, copy=False)
                senders = rows
            if payloads is None or (
                size is not None and not isinstance(size, np.ndarray)
            ):
                # One distinct payload (or one declared size): measure
                # once, charge everywhere.
                if size is None:
                    size = message_bits(shared)
                if size > budget_bits and first_budget is None:
                    first_budget = (
                        flat_base, size, int(senders[0]), int(tgt[0])
                    )
                bits += size * total
                if size > max_bits:
                    max_bits = size
                if want_hist:
                    bits_hist[size] = bits_hist.get(size, 0) + total
            else:
                # Per-sender size column (vectorized by the kernel) or
                # one measurement per payload (never per edge).
                if size is not None:
                    row_sizes = size.astype(np.int64, copy=False)
                else:
                    if callable(payloads):
                        payloads = payloads()
                    row_sizes = np.fromiter(
                        (message_bits(p) for p in payloads),
                        np.int64,
                        count=len(payloads),
                    )
                edge_sizes = (
                    np.repeat(row_sizes, deg) if deg is not None else row_sizes
                )
                if first_budget is None:
                    over = edge_sizes > budget_bits
                    if over.any():
                        k = int(np.argmax(over))
                        first_budget = (
                            flat_base + k,
                            int(edge_sizes[k]),
                            int(senders[k]),
                            int(tgt[k]),
                        )
                bits += int(edge_sizes.sum())
                if deg is not None:
                    charged = row_sizes[deg > 0]
                else:
                    charged = row_sizes
                if charged.shape[0]:
                    m = int(charged.max())
                    if m > max_bits:
                        max_bits = m
                if want_hist:
                    if deg is not None:
                        uniq, inv = np.unique(row_sizes, return_inverse=True)
                        weights = np.bincount(
                            inv, weights=deg, minlength=uniq.shape[0]
                        ).astype(np.int64)
                    else:
                        uniq, weights = np.unique(
                            row_sizes, return_counts=True
                        )
                    for s, c in zip(uniq.tolist(), weights.tolist()):
                        if c:
                            bits_hist[s] = bits_hist.get(s, 0) + c
            key_arrays.append(senders * n + tgt)
            messages += total
            flat_base += total
        if not key_arrays:
            return {}, 0, 0, {}, 0, []
        all_keys = (
            key_arrays[0]
            if len(key_arrays) == 1
            else np.concatenate(key_arrays)
        )
        uniq_keys, counts = np.unique(all_keys, return_counts=True)
        first_strict = None
        capacity = engine.capacity
        if engine.strict and int(counts.max()) > capacity:
            # Per-position occurrence rank of each edge key, in plan
            # order: the first position whose edge already carried
            # ``capacity`` messages is exactly where the scalar loop
            # raises.
            order = np.argsort(all_keys, kind="stable")
            sorted_keys = all_keys[order]
            new_group = np.empty(sorted_keys.shape[0], dtype=bool)
            new_group[0] = True
            np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=new_group[1:])
            group_start = np.nonzero(new_group)[0]
            group_idx = np.cumsum(new_group) - 1
            occurrence = np.empty(sorted_keys.shape[0], dtype=np.int64)
            occurrence[order] = (
                np.arange(sorted_keys.shape[0], dtype=np.int64)
                - group_start[group_idx]
            )
            over = occurrence >= capacity
            k = int(np.argmax(over))
            first_strict = (k, int(all_keys[k]))
        if first_budget is not None and (
            first_strict is None or first_budget[0] <= first_strict[0]
        ):
            _, size, si, ti = first_budget
            raise MessageTooLargeError(
                size,
                budget_bits,
                detail=f"from {verts[si]!r} to {verts[ti]!r}",
            )
        if first_strict is not None:
            _, key = first_strict
            v = verts[key // n]
            neighbor = verts[key % n]
            raise ProtocolError(
                f"edge {(v, neighbor)!r} carried {capacity + 1} messages "
                f"in one round (capacity {capacity})"
            )
        per_edge = dict(zip(uniq_keys.tolist(), counts.tolist()))
        receivers = np.unique(uniq_keys % n).tolist()
        return per_edge, messages, bits, bits_hist, max_bits, receivers

    def materialize(self, engine) -> None:
        """Build the per-receiver inbox dictionaries this plan deferred.

        Iterates the segments in plan (= scalar send) order and writes
        structurally identical boxes — same payload objects, one shared
        object per broadcast, insertion order matching the scalar
        drain — so checkpoint capture and crash filtering observe
        exactly the state the scalar path would have built.
        """
        contexts = engine._contexts
        pending = engine._pending
        pending_ids_add = engine._pending_ids.add
        verts = engine._verts
        index = engine._index
        for kind, rows, targets, payloads, shared, _size in self.segments:
            if callable(payloads):
                payloads = payloads()
            row_list = rows.tolist()
            if kind == "b":
                for k, i in enumerate(row_list):
                    payload = shared if payloads is None else payloads[k]
                    v = verts[i]
                    for neighbor in contexts[i].neighbors:
                        j = index[neighbor]
                        box = pending[j]
                        if box is None:
                            pending[j] = {v: [payload]}
                            pending_ids_add(j)
                        else:
                            lst = box.get(v)
                            if lst is None:
                                box[v] = [payload]
                            else:
                                lst.append(payload)
            else:
                target_list = targets.tolist()
                for k, i in enumerate(row_list):
                    payload = shared if payloads is None else payloads[k]
                    j = target_list[k]
                    v = verts[i]
                    box = pending[j]
                    if box is None:
                        pending[j] = {v: [payload]}
                        pending_ids_add(j)
                    else:
                        lst = box.get(v)
                        if lst is None:
                            box[v] = [payload]
                        else:
                            lst.append(payload)


class KernelBase(RoundKernel):
    """Plumbing shared by every concrete kernel.

    Subclasses implement ``_load_columns`` (scalar objects -> columns,
    run at construction so a restored checkpoint resumes mid-protocol),
    ``_write_columns`` (columns -> scalar objects, run at ``sync``),
    ``_initialize_rows`` and ``_step_rows``.
    """

    @classmethod
    def supports(cls, engine) -> bool:
        # Columnar tie-breaks compare dense indices instead of vertex
        # labels, which is only faithful when canonical order is label
        # order — true exactly for the int-labelled graphs the
        # generators produce.  bool is an int subclass; exclude it.
        return all(
            type(v) is int for v in engine._verts
        ) and cls._supports_population(engine)

    @classmethod
    def _supports_population(cls, engine) -> bool:
        return True

    def __init__(self, engine, resume: bool = False) -> None:
        np = _np()
        self.np = np
        self.engine = engine
        self.n = n = engine._n
        self.contexts = engine._contexts
        self.algorithms = engine._algorithms
        self.verts = engine._verts
        # CSR adjacency in canonical order: row i's slice lists i's
        # neighbors exactly as ``ctx.neighbors`` does (ascending label
        # order), so "the k-th active neighbor" means the same thing
        # columnar and scalar.
        index = engine._index
        indptr = np.zeros(n + 1, np.int64)
        flat: List[int] = []
        for i, ctx in enumerate(self.contexts):
            flat.extend(index[u] for u in ctx.neighbors)
            indptr[i + 1] = len(flat)
        self.indptr = indptr
        self.nbr = np.array(flat, dtype=np.int64) if flat else np.zeros(
            0, np.int64
        )
        degrees = indptr[1:] - indptr[:-1]
        self.edge_dst = np.repeat(np.arange(n, dtype=np.int64), degrees)
        # Rounds in which each vertex last stepped, mirrored into
        # ``ctx.round_number`` at sync (the scalar path sets it per
        # step; doing that eagerly would cost a Python attribute write
        # per vertex per round).
        self.last_step = np.array(
            [ctx.round_number for ctx in self.contexts], dtype=np.int64
        )
        self._rn_dirty = np.zeros(n, dtype=bool)
        self._state_dirty = False
        # After a checkpoint restore the previous round's sends are only
        # available as the restored inbox dictionaries; replay those
        # once, then trust the columns.
        self._use_dicts = bool(resume)
        # Sends emitted through _emit_broadcast/_emit_send either
        # accumulate into a SendPlan (batched delivery) or write the
        # classic per-context outboxes; sampled once per kernel build,
        # like the kernel flag itself.
        self._plan_segments: List[tuple] = []
        self._batched = bool(
            type(self).emits_send_plans and batch_delivery_enabled()
        )
        self._load_columns()

    # -- engine-facing entry points ------------------------------------
    def initialize(self, live: Sequence[int]) -> None:
        np = self.np
        rows = np.fromiter(live, np.intp, count=len(live))
        self._state_dirty = True
        self._initialize_rows(rows)
        self._flush_plan()

    def step_round(self, due: Sequence[int], round_number: int) -> None:
        np = self.np
        engine = self.engine
        rows = np.fromiter(due, np.intp, count=len(due))
        self.last_step[rows] = round_number
        self._rn_dirty[rows] = True
        self._state_dirty = True
        boxes = None
        if self._use_dicts:
            boxes = [engine._pending[i] or {} for i in due]
        # Consume the pending inboxes exactly like the scalar loop.
        pids = engine._pending_ids
        if pids:
            pending = engine._pending
            for i in pids.intersection(due):
                pending[i] = None
            pids.difference_update(due)
        self._step_rows(rows, round_number, boxes)
        self._use_dicts = False
        self._flush_plan()

    def _flush_plan(self) -> None:
        segments = self._plan_segments
        if segments:
            self._plan_segments = []
            self.engine._send_plan = SendPlan(self, segments)

    def sync(self) -> None:
        np = self.np
        for i in np.nonzero(self._rn_dirty)[0].tolist():
            self.contexts[i].round_number = int(self.last_step[i])
        self._rn_dirty[:] = False
        if self._state_dirty:
            self._write_columns()
            self._state_dirty = False

    # -- helpers for concrete kernels ----------------------------------
    def _halt(self, i: int, output) -> None:
        ctx = self.contexts[i]
        ctx._halted = True
        ctx._output = output

    def _emit_broadcast(self, rows, payloads=None, shared=_NO_PAYLOAD,
                        size=None) -> None:
        """Queue a broadcast from each of ``rows`` to all its neighbors.

        Pass either ``payloads`` (a list aligned with ``rows`` — or a
        zero-argument callable building one, deferred until an inbox
        must actually materialize; each row's object is shared across
        its neighbors, as the scalar path does) or ``shared`` (one
        object for every row).  ``size`` optionally declares the
        ``message_bits`` of the payloads — a uniform int or a per-row
        ``int64`` column — skipping measurement on the batched path.
        """
        if rows.shape[0] == 0:
            return
        if self._batched:
            self._plan_segments.append(
                ("b", rows, None, payloads, shared, size)
            )
            return
        contexts = self.contexts
        if callable(payloads):
            payloads = payloads()
        row_list = rows.tolist()
        for k, i in enumerate(row_list):
            ctx = contexts[i]
            payload = shared if payloads is None else payloads[k]
            queued = [(u, payload) for u in ctx.neighbors]
            outbox = ctx._outbox
            if outbox:
                outbox.extend(queued)
            else:
                ctx._outbox = queued

    def _emit_send(self, rows, targets, payload, size=None) -> None:
        """Queue one ``payload`` from each of ``rows`` to the aligned
        dense index in ``targets`` (a unicast column)."""
        if rows.shape[0] == 0:
            return
        if self._batched:
            self._plan_segments.append(
                ("u", rows, targets, None, payload, size)
            )
            return
        contexts = self.contexts
        verts = self.verts
        for i, t in zip(rows.tolist(), targets.tolist()):
            ctx = contexts[i]
            outbox = ctx._outbox
            if outbox:
                outbox.append((verts[t], payload))
            else:
                ctx._outbox = [(verts[t], payload)]

    # -- subclass responsibilities -------------------------------------
    def _load_columns(self) -> None:
        raise NotImplementedError

    def _write_columns(self) -> None:
        raise NotImplementedError

    def _initialize_rows(self, rows) -> None:
        raise NotImplementedError

    def _step_rows(self, rows, round_number: int, boxes) -> None:
        raise NotImplementedError
