"""Message size accounting for the CONGEST model.

The CONGEST model allows ``O(log n)``-bit messages.  "O(log n)" hides a
constant; we make the constant explicit and configurable via
:class:`MessageBudget`, whose default allows a small constant number of
machine words of ``ceil(log2 n)`` bits each — enough to carry a few
vertex IDs plus a tag, which is exactly what the paper's algorithms
send.  The simulator measures every payload with :func:`message_bits`
and refuses payloads over budget, so staying inside the model is
enforced at runtime rather than assumed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from ..errors import MessageTooLargeError

#: Bits charged for a float payload field (an IEEE double).
FLOAT_BITS = 64

#: Per-field framing overhead, covering the type tag of each field.
FIELD_OVERHEAD_BITS = 2


def _int_bits(value: int) -> int:
    """Bits to encode a (signed) integer: magnitude bits plus sign."""
    return max(1, value.bit_length()) + 1

#: Precomputed per-type costs, used by the exact-type fast path below.
_INT_EXTRA = 1 + FIELD_OVERHEAD_BITS  # sign bit + framing
_BOOL_BITS = 1 + FIELD_OVERHEAD_BITS
_FLOAT_TOTAL = FLOAT_BITS + FIELD_OVERHEAD_BITS


def _message_bits_general(payload: Any) -> int:
    """Subclass-tolerant measurement (the original isinstance chain)."""
    if payload is None:
        return 1
    if isinstance(payload, bool):
        return _BOOL_BITS
    if isinstance(payload, int):
        return _int_bits(payload) + FIELD_OVERHEAD_BITS
    if isinstance(payload, float):
        return _FLOAT_TOTAL
    if isinstance(payload, str):
        return 8 * len(payload) + FIELD_OVERHEAD_BITS
    if isinstance(payload, (tuple, list)):
        return FIELD_OVERHEAD_BITS + sum(message_bits(item) for item in payload)
    # Wire-level stand-ins (e.g. repro.congest.faults.CorruptedPayload)
    # declare their own encoded size instead of extending this chain.
    declared = getattr(type(payload), "congest_bits", None)
    if isinstance(declared, int):
        return declared
    raise TypeError(
        f"unsupported CONGEST payload type {type(payload).__name__!r}; "
        "send tuples of ints/floats/short strings"
    )


def message_bits(payload: Any) -> int:
    """Measure the encoded size of ``payload`` in bits.

    Supported payload types mirror what a real CONGEST algorithm can
    put on the wire: ``None`` (pure signal), booleans, integers
    (charged by bit length), floats (64 bits), short strings (8 bits
    per character — used for message tags), and tuples/lists of the
    above.  Anything else raises ``TypeError`` so that accidentally
    sending a rich Python object (a whole graph, say) fails loudly
    instead of silently breaking the model.

    This is the single hottest call in a simulation (once per message),
    so the common shapes — ints and flat tuples of tag/int fields — are
    measured with exact-type checks and no recursion; anything unusual
    falls back to the general isinstance chain with identical results.
    """
    t = type(payload)
    if t is int:
        return (payload.bit_length() or 1) + _INT_EXTRA
    if t is tuple or t is list:
        total = FIELD_OVERHEAD_BITS
        for item in payload:
            ti = type(item)
            if ti is int:
                total += (item.bit_length() or 1) + _INT_EXTRA
            elif ti is str:
                total += 8 * len(item) + FIELD_OVERHEAD_BITS
            elif item is None:
                total += 1
            elif ti is float:
                total += _FLOAT_TOTAL
            elif ti is bool:
                total += _BOOL_BITS
            elif ti is tuple:
                # One nesting level inline: routing tokens wrap the
                # original request tuple, so this shape is hot too.
                total += FIELD_OVERHEAD_BITS
                for sub in item:
                    ts = type(sub)
                    if ts is int:
                        total += (sub.bit_length() or 1) + _INT_EXTRA
                    elif ts is str:
                        total += 8 * len(sub) + FIELD_OVERHEAD_BITS
                    elif sub is None:
                        total += 1
                    else:
                        total += message_bits(sub)
            else:
                total += message_bits(item)
        return total
    if payload is None:
        return 1
    if t is bool:
        return _BOOL_BITS
    if t is float:
        return _FLOAT_TOTAL
    if t is str:
        return 8 * len(payload) + FIELD_OVERHEAD_BITS
    return _message_bits_general(payload)


@dataclass(frozen=True)
class MessageBudget:
    """The per-message bit budget B = words · ceil(log2(n+2)).

    ``words`` is the explicit constant hidden in the paper's
    ``O(log n)``: the number of log-sized fields one message may carry.
    The default of 16 comfortably fits the largest messages our
    algorithms send (a tag plus a handful of vertex IDs and counters)
    while still scaling as Θ(log n).
    """

    n: int
    words: int = 16

    @property
    def bits_per_word(self) -> int:
        """ceil(log2(n+2)), floored at a nibble.

        The floor keeps the budget meaningful on toy networks (a
        one-character message tag alone costs 10 bits); asymptotically
        it is irrelevant.
        """
        return max(4, math.ceil(math.log2(self.n + 2)))

    @property
    def bits(self) -> int:
        """Total bits allowed per message."""
        return self.words * self.bits_per_word

    def check(self, payload: Any, detail: str = "") -> int:
        """Measure ``payload``; raise if it exceeds the budget.

        Returns the measured size in bits so callers can aggregate.
        """
        bits = message_bits(payload)
        if bits > self.bits:
            raise MessageTooLargeError(bits, self.bits, detail=detail)
        return bits
