"""Deterministic fault injection for the CONGEST engines.

The paper's round-complexity theorems assume a perfectly synchronous,
lossless network.  This module lets experiments *remove* that
assumption in a controlled way: a :class:`FaultPlan` declares message
drop / duplicate / corrupt probabilities, scheduled link failures, and
vertex crash rounds, and compiles into a :class:`FaultInjector` that
both engines (:class:`~repro.congest.engine.FastEngine` and
:class:`~repro.congest.reference.ReferenceEngine`) consult at delivery
time.

Determinism contract
--------------------
Every fault decision is a pure function of
``(plan seed, send round, sender, receiver, per-edge sequence number)``
via a keyed hash — *not* a sequentially drawn RNG stream.  Iteration
order therefore cannot influence any decision, which is what makes
faulted runs bit-identical across the two engines (pinned by
``tests/test_faults.py``) and across repeated executions.

Accounting semantics
--------------------
Fault decisions happen on the wire, *after* the sender has paid for the
transmission: a dropped, duplicated, or corrupted message still counts
once in ``total_messages`` / ``total_bits`` / per-edge congestion (and
once against strict-mode capacity — a duplicate is the network's fault,
not the sender's protocol violation).  What the channel then did is
tracked separately in the ``messages_dropped`` / ``messages_duplicated``
/ ``messages_corrupted`` / ``vertices_crashed`` counters of
:class:`~repro.congest.metrics.CongestMetrics` and per round in
:class:`~repro.congest.trace.RoundTrace`.

Scoping
-------
Like tracing, fault injection is opt-in and zero-overhead when off:
pass ``faults=FaultPlan(...)`` to ``CongestSimulator``, or open a
:func:`use_faults` region to subject every simulator constructed inside
(framework runs, whole experiment cells) to the same plan.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from hashlib import blake2b
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..errors import FaultError
from ..graph import edge_key

#: Fault classification outcomes, in decision order.
DELIVER = 0
DROP = 1
DUPLICATE = 2
CORRUPT = 3

#: Zero per-round fault counters: (dropped, duplicated, corrupted).
NO_FAULTS: Tuple[int, int, int] = (0, 0, 0)


class CorruptedPayload:
    """Deterministic stand-in delivered in place of a corrupted message.

    Algorithms that inspect payload shapes can detect it (the
    :mod:`repro.resilience` transport treats it as a lost frame and
    retransmits); algorithms that don't will typically raise on it,
    which the post-run validators report as a ``failed`` verdict rather
    than a silently wrong number.  The nonce is derived from the same
    keyed hash as the fault decision, so both engines deliver *equal*
    corrupted payloads.
    """

    __slots__ = ("nonce",)

    #: Wire size charged if an algorithm forwards a corrupted payload
    #: (a tag plus a 32-bit garbage word); consumed by ``message_bits``.
    congest_bits = 34

    def __init__(self, nonce: int) -> None:
        self.nonce = nonce

    def __repr__(self) -> str:
        return f"CorruptedPayload(0x{self.nonce:08x})"

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, CorruptedPayload) and other.nonce == self.nonce

    def __hash__(self) -> int:
        return hash(("CorruptedPayload", self.nonce))


@dataclass(frozen=True)
class LinkFailure:
    """Undirected link ``{u, v}`` down for send rounds [start, end]."""

    u: Any
    v: Any
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start > self.end:
            raise FaultError(
                f"link failure window [{self.start}, {self.end}] is empty"
            )


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, fully deterministic description of what goes wrong.

    ``drop`` / ``duplicate`` / ``corrupt`` are independent per-message
    probabilities (their sum must stay <= 1; a single uniform draw per
    message is partitioned between them).  ``link_failures`` silence an
    undirected edge for a window of *send* rounds.  ``crashes`` maps a
    vertex to the round at which it fail-stops: it never steps at or
    after that round and its output is permanently ``None``.

    ``rejoins`` upgrades fail-stop to crash-*recovery*: it maps a
    crashed vertex to the deterministic round at which it comes back.
    A rejoining vertex restores from the most recent local snapshot the
    engine took of it (see ``checkpoint_interval``), or re-initializes
    from scratch if none was taken; mail queued while it was dead is
    lost either way.  Every rejoin round must be strictly greater than
    the vertex's scheduled crash round.  ``checkpoint_interval`` is the
    number of rounds between local snapshots of rejoin-scheduled
    vertices; ``None`` means no snapshots are ever taken, so every
    rejoin is a fresh re-initialization.
    """

    seed: int = 0
    drop: float = 0.0
    duplicate: float = 0.0
    corrupt: float = 0.0
    link_failures: Tuple[LinkFailure, ...] = ()
    crashes: Tuple[Tuple[Any, int], ...] = ()
    rejoins: Tuple[Tuple[Any, int], ...] = ()
    checkpoint_interval: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "corrupt"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise FaultError(f"{name} rate {rate!r} outside [0, 1]")
        if self.drop + self.duplicate + self.corrupt > 1.0 + 1e-12:
            raise FaultError(
                "drop + duplicate + corrupt rates sum past 1 "
                f"({self.drop} + {self.duplicate} + {self.corrupt})"
            )
        # Normalize mutable inputs so plans hash and compare by value.
        object.__setattr__(
            self,
            "link_failures",
            tuple(
                f if isinstance(f, LinkFailure) else LinkFailure(*f)
                for f in self.link_failures
            ),
        )
        object.__setattr__(
            self, "crashes", tuple((v, int(r)) for v, r in self.crashes)
        )
        object.__setattr__(
            self, "rejoins", tuple((v, int(r)) for v, r in self.rejoins)
        )
        if self.checkpoint_interval is not None:
            if int(self.checkpoint_interval) < 1:
                raise FaultError(
                    f"checkpoint_interval {self.checkpoint_interval!r} "
                    "must be a positive round count"
                )
            object.__setattr__(
                self, "checkpoint_interval", int(self.checkpoint_interval)
            )
        # A rejoin only makes sense for a vertex that is scheduled to
        # crash first; validate against the earliest crash round, which
        # is the one the engines honor.
        earliest_crash: Dict[Any, int] = {}
        for vertex, round_number in self.crashes:
            previous = earliest_crash.get(vertex)
            if previous is None or round_number < previous:
                earliest_crash[vertex] = round_number
        for vertex, round_number in self.rejoins:
            crash = earliest_crash.get(vertex)
            if crash is None:
                raise FaultError(
                    f"rejoin scheduled for {vertex!r} at round "
                    f"{round_number}, but the plan never crashes it"
                )
            if round_number <= crash:
                raise FaultError(
                    f"rejoin round {round_number} for {vertex!r} must be "
                    f"strictly after its crash round {crash}"
                )

    def is_empty(self) -> bool:
        """True iff this plan can never inject anything."""
        return (
            self.drop == 0.0
            and self.duplicate == 0.0
            and self.corrupt == 0.0
            and not self.link_failures
            and not self.crashes
        )

    def compile(self) -> Optional["FaultInjector"]:
        """The engine-facing hook, or ``None`` for an empty plan."""
        if self.is_empty():
            return None
        return FaultInjector(self)

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "seed": self.seed,
            "drop": self.drop,
            "duplicate": self.duplicate,
            "corrupt": self.corrupt,
            "link_failures": [
                [f.u, f.v, f.start, f.end] for f in self.link_failures
            ],
            "crashes": [[v, r] for v, r in self.crashes],
            "rejoins": [[v, r] for v, r in self.rejoins],
        }
        if self.checkpoint_interval is not None:
            data["checkpoint_interval"] = self.checkpoint_interval
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        return cls(
            seed=data.get("seed", 0),
            drop=data.get("drop", 0.0),
            duplicate=data.get("duplicate", 0.0),
            corrupt=data.get("corrupt", 0.0),
            link_failures=tuple(
                LinkFailure(u, v, start, end)
                for u, v, start, end in data.get("link_failures", ())
            ),
            crashes=tuple(
                (v, r) for v, r in data.get("crashes", ())
            ),
            rejoins=tuple(
                (v, r) for v, r in data.get("rejoins", ())
            ),
            checkpoint_interval=data.get("checkpoint_interval"),
        )


class FaultInjector:
    """Compiled :class:`FaultPlan`, consulted by the engines per message.

    One injector is built per simulator; it is stateless across calls
    (every answer is recomputed from the keyed hash), so sharing or
    rebuilding it cannot change any outcome.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._key = blake2b(
            str(plan.seed).encode("utf-8"), digest_size=16
        ).digest()
        # Cumulative thresholds partitioning the unit interval.
        self._drop_at = plan.drop
        self._duplicate_at = plan.drop + plan.duplicate
        self._corrupt_at = plan.drop + plan.duplicate + plan.corrupt
        self._has_message_faults = self._corrupt_at > 0.0
        self._links: Dict[Tuple, List[Tuple[int, int]]] = {}
        for failure in plan.link_failures:
            key = edge_key(failure.u, failure.v)
            self._links.setdefault(key, []).append(
                (failure.start, failure.end)
            )
        self._crashes: Dict[Any, int] = {}
        for vertex, round_number in plan.crashes:
            previous = self._crashes.get(vertex)
            if previous is None or round_number < previous:
                self._crashes[vertex] = round_number
        self._rejoins: Dict[Any, int] = {}
        for vertex, round_number in plan.rejoins:
            previous = self._rejoins.get(vertex)
            if previous is None or round_number < previous:
                self._rejoins[vertex] = round_number

    # -- crash schedule -------------------------------------------------
    def crash_round(self, vertex: Any) -> Optional[int]:
        """Round at which ``vertex`` fail-stops, or None."""
        return self._crashes.get(vertex)

    def rejoin_round(self, vertex: Any) -> Optional[int]:
        """Round at which a crashed ``vertex`` rejoins, or None."""
        return self._rejoins.get(vertex)

    @property
    def checkpoint_interval(self) -> Optional[int]:
        """Rounds between local snapshots of rejoin-scheduled vertices."""
        return self.plan.checkpoint_interval

    # -- link schedule --------------------------------------------------
    def link_down(self, u: Any, v: Any, send_round: int) -> bool:
        """Is the undirected link {u, v} failed for this send round?"""
        if not self._links:
            return False
        windows = self._links.get(edge_key(u, v))
        if not windows:
            return False
        return any(start <= send_round <= end for start, end in windows)

    # -- per-message classification -------------------------------------
    def _hash64(self, send_round: int, sender: Any, receiver: Any,
                seq: int) -> int:
        token = f"{send_round}|{sender!r}|{receiver!r}|{seq}"
        digest = blake2b(
            token.encode("utf-8"), digest_size=8, key=self._key
        ).digest()
        return int.from_bytes(digest, "big")

    def classify(self, send_round: int, sender: Any, receiver: Any,
                 seq: int) -> int:
        """DELIVER / DROP / DUPLICATE / CORRUPT for one transmission.

        ``seq`` is the zero-based index of the message among those sent
        over the same directed edge in the same round, which both
        engines derive from the identical per-edge congestion count.
        """
        if not self._has_message_faults:
            return DELIVER
        unit = self._hash64(send_round, sender, receiver, seq) / 2.0 ** 64
        if unit < self._drop_at:
            return DROP
        if unit < self._duplicate_at:
            return DUPLICATE
        if unit < self._corrupt_at:
            return CORRUPT
        return DELIVER

    def corrupted_payload(self, send_round: int, sender: Any, receiver: Any,
                          seq: int) -> CorruptedPayload:
        """The deterministic garbage delivered for a corrupted message."""
        nonce = self._hash64(send_round, sender, receiver, seq + 1_000_003)
        return CorruptedPayload(nonce & 0xFFFFFFFF)


# ----------------------------------------------------------------------
# Session scoping: subject every simulator in a region to one plan.
# ----------------------------------------------------------------------

_ACTIVE_PLANS: List[FaultPlan] = []


def active_fault_plan() -> Optional[FaultPlan]:
    """The innermost :func:`use_faults` plan, if any."""
    return _ACTIVE_PLANS[-1] if _ACTIVE_PLANS else None


@contextlib.contextmanager
def use_faults(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Apply ``plan`` to every simulator constructed in this region.

    High-level entry points (``run_framework``, ``distributed_maxis``,
    experiment cells) build many simulators internally; this is how a
    whole pipeline is run under one fault model without threading a
    plan through every call signature::

        with use_faults(FaultPlan(seed=1, drop=0.05)):
            result = run_framework(g, eps, solver=solver, seed=0)
    """
    if not isinstance(plan, FaultPlan):
        raise FaultError(f"use_faults expects a FaultPlan, got {plan!r}")
    _ACTIVE_PLANS.append(plan)
    try:
        yield plan
    finally:
        _ACTIVE_PLANS.remove(plan)
