"""Deterministic fault injection for the CONGEST engines.

The paper's round-complexity theorems assume a perfectly synchronous,
lossless network.  This module lets experiments *remove* that
assumption in a controlled way: a :class:`FaultPlan` declares message
drop / duplicate / corrupt probabilities, scheduled link failures,
vertex crash rounds, and — the network-level adversity layer — topology
churn (edge arrivals / departures / up-windows), partition windows
that split the vertex set into isolated blocks for a stretch of
rounds, and a bounded deterministic per-message delay.  The plan
compiles into a :class:`FaultInjector` that both engines
(:class:`~repro.congest.engine.FastEngine` and
:class:`~repro.congest.reference.ReferenceEngine`) consult at delivery
time.

Determinism contract
--------------------
Every fault decision is a pure function of
``(plan seed, send round, sender, receiver, per-edge sequence number)``
via a keyed hash — *not* a sequentially drawn RNG stream.  Iteration
order therefore cannot influence any decision, which is what makes
faulted runs bit-identical across the two engines (pinned by
``tests/test_faults.py``) and across repeated executions.  Schedules
(links, churn, partitions, crashes) are pure functions of the round
number alone; the per-message delay draws from the same keyed hash
under a disjoint sequence-number domain, so delay decisions never
correlate with drop/duplicate/corrupt decisions.

Accounting semantics
--------------------
Fault decisions happen on the wire, *after* the sender has paid for the
transmission: a dropped, duplicated, corrupted, delayed, or
topology-lost message still counts once in ``total_messages`` /
``total_bits`` / per-edge congestion (and once against strict-mode
capacity — a duplicate is the network's fault, not the sender's
protocol violation).  A *delayed* message is charged at its normal
delivery slot; the channel merely withholds the payload for the extra
rounds.  What the channel then did is tracked separately in the
``messages_dropped`` / ``messages_duplicated`` / ``messages_corrupted``
/ ``messages_delayed`` / ``messages_lost_topology`` /
``messages_partitioned`` / ``vertices_crashed`` counters of
:class:`~repro.congest.metrics.CongestMetrics` and per round in
:class:`~repro.congest.trace.RoundTrace`.

Scoping
-------
Like tracing, fault injection is opt-in and zero-overhead when off:
pass ``faults=FaultPlan(...)`` to ``CongestSimulator``, or open a
:func:`use_faults` region to subject every simulator constructed inside
(framework runs, whole experiment cells) to the same plan.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from hashlib import blake2b
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..errors import FaultError
from ..graph import edge_key

#: Fault classification outcomes, in decision order.
DELIVER = 0
DROP = 1
DUPLICATE = 2
CORRUPT = 3

#: Zero per-round fault counters: (dropped, duplicated, corrupted,
#: delayed, topology-lost, partitioned).
NO_FAULTS: Tuple[int, int, int, int, int, int] = (0, 0, 0, 0, 0, 0)


def pad_fault_counts(counts) -> Tuple[int, ...]:
    """Normalize a historical (dropped, duplicated, corrupted) triple
    to the current six-counter layout (checkpoints written before the
    adversity counters existed carry the short form)."""
    padded = tuple(counts)
    if len(padded) >= len(NO_FAULTS):
        return padded
    return padded + (0,) * (len(NO_FAULTS) - len(padded))


class CorruptedPayload:
    """Deterministic stand-in delivered in place of a corrupted message.

    Algorithms that inspect payload shapes can detect it (the
    :mod:`repro.resilience` transport treats it as a lost frame and
    retransmits); algorithms that don't will typically raise on it,
    which the post-run validators report as a ``failed`` verdict rather
    than a silently wrong number.  The nonce is derived from the same
    keyed hash as the fault decision, so both engines deliver *equal*
    corrupted payloads.
    """

    __slots__ = ("nonce",)

    #: Wire size charged if an algorithm forwards a corrupted payload
    #: (a tag plus a 32-bit garbage word); consumed by ``message_bits``.
    congest_bits = 34

    def __init__(self, nonce: int) -> None:
        self.nonce = nonce

    def __repr__(self) -> str:
        return f"CorruptedPayload(0x{self.nonce:08x})"

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, CorruptedPayload) and other.nonce == self.nonce

    def __hash__(self) -> int:
        return hash(("CorruptedPayload", self.nonce))


@dataclass(frozen=True)
class LinkFailure:
    """Undirected link ``{u, v}`` down for send rounds [start, end]."""

    u: Any
    v: Any
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start > self.end:
            raise FaultError(
                f"link failure window [{self.start}, {self.end}] is empty"
            )


@dataclass(frozen=True)
class EdgeWindow:
    """Undirected edge ``{u, v}`` is *up* only for send rounds
    [start, end]; outside every declared up-window of an edge, the
    edge is absent from that round's adjacency view."""

    u: Any
    v: Any
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start > self.end:
            raise FaultError(
                f"edge up-window [{self.start}, {self.end}] is empty"
            )


@dataclass(frozen=True)
class PartitionWindow:
    """Vertex blocks isolated from each other for send rounds
    [start, end].

    During the window a message crossing two different blocks is lost;
    vertices listed in no block form one implicit "rest" block that
    still communicates internally.  After ``end`` the network heals.
    """

    blocks: Tuple[Tuple[Any, ...], ...]
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start > self.end:
            raise FaultError(
                f"partition window [{self.start}, {self.end}] is empty"
            )
        object.__setattr__(
            self, "blocks", tuple(tuple(block) for block in self.blocks)
        )
        seen: Dict[Any, int] = {}
        for block_id, block in enumerate(self.blocks):
            for vertex in block:
                previous = seen.get(vertex)
                if previous is not None and previous != block_id:
                    raise FaultError(
                        f"vertex {vertex!r} appears in two blocks of one "
                        "partition window"
                    )
                seen[vertex] = block_id


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, fully deterministic description of what goes wrong.

    ``drop`` / ``duplicate`` / ``corrupt`` are independent per-message
    probabilities (their sum must stay <= 1; a single uniform draw per
    message is partitioned between them).  ``link_failures`` silence an
    undirected edge for a window of *send* rounds.  ``crashes`` maps a
    vertex to the round at which it fail-stops: it never steps at or
    after that round and its output is permanently ``None``.

    ``rejoins`` upgrades fail-stop to crash-*recovery*: it maps a
    crashed vertex to the deterministic round at which it comes back.
    A rejoining vertex restores from the most recent local snapshot the
    engine took of it (see ``checkpoint_interval``), or re-initializes
    from scratch if none was taken; mail queued while it was dead is
    lost either way.  Every rejoin round must be strictly greater than
    the vertex's scheduled crash round.  ``checkpoint_interval`` is the
    number of rounds between local snapshots of rejoin-scheduled
    vertices; ``None`` means no snapshots are ever taken, so every
    rejoin is a fresh re-initialization.

    The network-level adversity fields:

    ``edge_arrivals`` / ``edge_departures``
        Topology churn as ``(u, v, round)`` schedules: an edge with an
        arrival is absent from the adjacency view before that send
        round; an edge with a departure is absent at and after its
        departure round.  Scheduling an edge to depart at or before it
        arrives is a conflicting churn schedule and raises
        :class:`~repro.errors.FaultError`, as does scheduling two
        arrivals (or two departures) for the same edge.
    ``edge_up_windows``
        :class:`EdgeWindow` entries; an edge with at least one
        up-window exists only during its up-windows.
    ``partitions``
        :class:`PartitionWindow` entries splitting the vertex set into
        isolated blocks for a round window; messages crossing blocks
        during the window are lost, and the network heals after it.
    ``delay`` / ``max_delay``
        Deterministic message delay: each transmission is withheld
        with probability ``delay`` for between 1 and ``max_delay``
        extra rounds (both decisions keyed-hash functions of the
        message coordinates).  A delayed message is charged at its
        normal delivery slot but reaches the receiver's inbox only
        when its release round executes, which reorders it past later
        traffic on the same edge.
    """

    seed: int = 0
    drop: float = 0.0
    duplicate: float = 0.0
    corrupt: float = 0.0
    link_failures: Tuple[LinkFailure, ...] = ()
    crashes: Tuple[Tuple[Any, int], ...] = ()
    rejoins: Tuple[Tuple[Any, int], ...] = ()
    checkpoint_interval: Optional[int] = None
    edge_arrivals: Tuple[Tuple[Any, Any, int], ...] = ()
    edge_departures: Tuple[Tuple[Any, Any, int], ...] = ()
    edge_up_windows: Tuple[EdgeWindow, ...] = ()
    partitions: Tuple[PartitionWindow, ...] = ()
    delay: float = 0.0
    max_delay: int = 1

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "corrupt"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise FaultError(f"{name} rate {rate!r} outside [0, 1]")
        if self.drop + self.duplicate + self.corrupt > 1.0 + 1e-12:
            raise FaultError(
                "drop + duplicate + corrupt rates sum past 1 "
                f"({self.drop} + {self.duplicate} + {self.corrupt})"
            )
        # Normalize mutable inputs so plans hash and compare by value.
        object.__setattr__(
            self,
            "link_failures",
            tuple(
                f if isinstance(f, LinkFailure) else LinkFailure(*f)
                for f in self.link_failures
            ),
        )
        object.__setattr__(
            self, "crashes", tuple((v, int(r)) for v, r in self.crashes)
        )
        object.__setattr__(
            self, "rejoins", tuple((v, int(r)) for v, r in self.rejoins)
        )
        if self.checkpoint_interval is not None:
            if int(self.checkpoint_interval) < 1:
                raise FaultError(
                    f"checkpoint_interval {self.checkpoint_interval!r} "
                    "must be a positive round count"
                )
            object.__setattr__(
                self, "checkpoint_interval", int(self.checkpoint_interval)
            )
        if not 0.0 <= self.delay <= 1.0:
            raise FaultError(f"delay rate {self.delay!r} outside [0, 1]")
        if int(self.max_delay) < 1:
            raise FaultError(
                f"max_delay {self.max_delay!r} must be a positive "
                "round count"
            )
        object.__setattr__(self, "max_delay", int(self.max_delay))
        object.__setattr__(
            self,
            "edge_arrivals",
            tuple((u, v, int(r)) for u, v, r in self.edge_arrivals),
        )
        object.__setattr__(
            self,
            "edge_departures",
            tuple((u, v, int(r)) for u, v, r in self.edge_departures),
        )
        object.__setattr__(
            self,
            "edge_up_windows",
            tuple(
                w if isinstance(w, EdgeWindow) else EdgeWindow(*w)
                for w in self.edge_up_windows
            ),
        )
        object.__setattr__(
            self,
            "partitions",
            tuple(
                w if isinstance(w, PartitionWindow) else PartitionWindow(*w)
                for w in self.partitions
            ),
        )
        # Churn schedules must be unambiguous: one arrival and one
        # departure per edge at most, and an edge cannot depart before
        # (or the instant) it arrives — that edge would never exist.
        arrivals: Dict[Tuple, int] = {}
        for u, v, round_number in self.edge_arrivals:
            key = edge_key(u, v)
            if key in arrivals:
                raise FaultError(
                    f"conflicting churn schedule: edge {key!r} has two "
                    "arrival rounds"
                )
            arrivals[key] = round_number
        departures: Dict[Tuple, int] = {}
        for u, v, round_number in self.edge_departures:
            key = edge_key(u, v)
            if key in departures:
                raise FaultError(
                    f"conflicting churn schedule: edge {key!r} has two "
                    "departure rounds"
                )
            departures[key] = round_number
        for key, departure in departures.items():
            arrival = arrivals.get(key)
            if arrival is not None and departure <= arrival:
                raise FaultError(
                    f"conflicting churn schedule: edge {key!r} departs "
                    f"at round {departure} but only arrives at round "
                    f"{arrival}"
                )
        # A rejoin only makes sense for a vertex that is scheduled to
        # crash first; validate against the earliest crash round, which
        # is the one the engines honor.
        earliest_crash: Dict[Any, int] = {}
        for vertex, round_number in self.crashes:
            previous = earliest_crash.get(vertex)
            if previous is None or round_number < previous:
                earliest_crash[vertex] = round_number
        for vertex, round_number in self.rejoins:
            crash = earliest_crash.get(vertex)
            if crash is None:
                raise FaultError(
                    f"rejoin scheduled for {vertex!r} at round "
                    f"{round_number}, but the plan never crashes it"
                )
            if round_number <= crash:
                raise FaultError(
                    f"rejoin round {round_number} for {vertex!r} must be "
                    f"strictly after its crash round {crash}"
                )

    def is_empty(self) -> bool:
        """True iff this plan can never inject anything."""
        return (
            self.drop == 0.0
            and self.duplicate == 0.0
            and self.corrupt == 0.0
            and not self.link_failures
            and not self.crashes
            and not self.edge_arrivals
            and not self.edge_departures
            and not self.edge_up_windows
            and not self.partitions
            and self.delay == 0.0
        )

    def compile(self) -> Optional["FaultInjector"]:
        """The engine-facing hook, or ``None`` for an empty plan."""
        if self.is_empty():
            return None
        return FaultInjector(self)

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "seed": self.seed,
            "drop": self.drop,
            "duplicate": self.duplicate,
            "corrupt": self.corrupt,
            "link_failures": [
                [f.u, f.v, f.start, f.end] for f in self.link_failures
            ],
            "crashes": [[v, r] for v, r in self.crashes],
            "rejoins": [[v, r] for v, r in self.rejoins],
            "edge_arrivals": [[u, v, r] for u, v, r in self.edge_arrivals],
            "edge_departures": [
                [u, v, r] for u, v, r in self.edge_departures
            ],
            "edge_up_windows": [
                [w.u, w.v, w.start, w.end] for w in self.edge_up_windows
            ],
            "partitions": [
                [[list(block) for block in w.blocks], w.start, w.end]
                for w in self.partitions
            ],
            "delay": self.delay,
            "max_delay": self.max_delay,
        }
        if self.checkpoint_interval is not None:
            data["checkpoint_interval"] = self.checkpoint_interval
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        return cls(
            seed=data.get("seed", 0),
            drop=data.get("drop", 0.0),
            duplicate=data.get("duplicate", 0.0),
            corrupt=data.get("corrupt", 0.0),
            link_failures=tuple(
                LinkFailure(u, v, start, end)
                for u, v, start, end in data.get("link_failures", ())
            ),
            crashes=tuple(
                (v, r) for v, r in data.get("crashes", ())
            ),
            rejoins=tuple(
                (v, r) for v, r in data.get("rejoins", ())
            ),
            checkpoint_interval=data.get("checkpoint_interval"),
            edge_arrivals=tuple(
                (u, v, r) for u, v, r in data.get("edge_arrivals", ())
            ),
            edge_departures=tuple(
                (u, v, r) for u, v, r in data.get("edge_departures", ())
            ),
            edge_up_windows=tuple(
                EdgeWindow(u, v, start, end)
                for u, v, start, end in data.get("edge_up_windows", ())
            ),
            partitions=tuple(
                PartitionWindow(
                    tuple(tuple(block) for block in blocks), start, end
                )
                for blocks, start, end in data.get("partitions", ())
            ),
            delay=data.get("delay", 0.0),
            max_delay=data.get("max_delay", 1),
        )


class FaultInjector:
    """Compiled :class:`FaultPlan`, consulted by the engines per message.

    One injector is built per simulator; it is stateless across calls
    (every answer is recomputed from the keyed hash), so sharing or
    rebuilding it cannot change any outcome.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._key = blake2b(
            str(plan.seed).encode("utf-8"), digest_size=16
        ).digest()
        # Cumulative thresholds partitioning the unit interval.
        self._drop_at = plan.drop
        self._duplicate_at = plan.drop + plan.duplicate
        self._corrupt_at = plan.drop + plan.duplicate + plan.corrupt
        self._has_message_faults = self._corrupt_at > 0.0
        self._links: Dict[Tuple, List[Tuple[int, int]]] = {}
        for failure in plan.link_failures:
            key = edge_key(failure.u, failure.v)
            self._links.setdefault(key, []).append(
                (failure.start, failure.end)
            )
        self._crashes: Dict[Any, int] = {}
        for vertex, round_number in plan.crashes:
            previous = self._crashes.get(vertex)
            if previous is None or round_number < previous:
                self._crashes[vertex] = round_number
        self._rejoins: Dict[Any, int] = {}
        for vertex, round_number in plan.rejoins:
            previous = self._rejoins.get(vertex)
            if previous is None or round_number < previous:
                self._rejoins[vertex] = round_number
        # Topology churn: per-edge arrival/departure rounds plus
        # up-window lists (plan validation already rejected ambiguous
        # schedules, so plain assignment is safe here).
        self._arrivals: Dict[Tuple, int] = {
            edge_key(u, v): r for u, v, r in plan.edge_arrivals
        }
        self._departures: Dict[Tuple, int] = {
            edge_key(u, v): r for u, v, r in plan.edge_departures
        }
        self._up_windows: Dict[Tuple, List[Tuple[int, int]]] = {}
        for window in plan.edge_up_windows:
            key = edge_key(window.u, window.v)
            self._up_windows.setdefault(key, []).append(
                (window.start, window.end)
            )
        self.has_topology = bool(
            self._arrivals or self._departures or self._up_windows
        )
        # Partition windows: (start, end, vertex -> block id); vertices
        # in no declared block share the implicit rest block -1.
        self._partition_windows: List[Tuple[int, int, Dict[Any, int]]] = []
        for window in plan.partitions:
            assignment: Dict[Any, int] = {}
            for block_id, block in enumerate(window.blocks):
                for vertex in block:
                    assignment[vertex] = block_id
            self._partition_windows.append(
                (window.start, window.end, assignment)
            )
        self.has_partitions = bool(self._partition_windows)
        self.has_delay = plan.delay > 0.0

    # -- crash schedule -------------------------------------------------
    def crash_round(self, vertex: Any) -> Optional[int]:
        """Round at which ``vertex`` fail-stops, or None."""
        return self._crashes.get(vertex)

    def rejoin_round(self, vertex: Any) -> Optional[int]:
        """Round at which a crashed ``vertex`` rejoins, or None."""
        return self._rejoins.get(vertex)

    @property
    def checkpoint_interval(self) -> Optional[int]:
        """Rounds between local snapshots of rejoin-scheduled vertices."""
        return self.plan.checkpoint_interval

    # -- link schedule --------------------------------------------------
    def link_down(self, u: Any, v: Any, send_round: int) -> bool:
        """Is the undirected link {u, v} failed for this send round?"""
        if not self._links:
            return False
        windows = self._links.get(edge_key(u, v))
        if not windows:
            return False
        return any(start <= send_round <= end for start, end in windows)

    # -- topology churn -------------------------------------------------
    def topology_live(self, u: Any, v: Any, send_round: int) -> bool:
        """Does the undirected edge {u, v} exist in this round's
        adjacency view?  (True for edges the churn schedule never
        mentions.)"""
        if not self.has_topology:
            return True
        key = edge_key(u, v)
        arrival = self._arrivals.get(key)
        if arrival is not None and send_round < arrival:
            return False
        departure = self._departures.get(key)
        if departure is not None and send_round >= departure:
            return False
        windows = self._up_windows.get(key)
        if windows is not None and not any(
            start <= send_round <= end for start, end in windows
        ):
            return False
        return True

    def live_edges(self, edges, send_round: int) -> List[Tuple[Any, Any]]:
        """Filter an edge iterable down to this round's adjacency view."""
        return [
            (u, v) for u, v in edges if self.topology_live(u, v, send_round)
        ]

    # -- partition schedule ---------------------------------------------
    def partitioned(self, u: Any, v: Any, send_round: int) -> bool:
        """Are ``u`` and ``v`` in different isolated blocks this round?"""
        if not self.has_partitions:
            return False
        for start, end, assignment in self._partition_windows:
            if start <= send_round <= end:
                if assignment.get(u, -1) != assignment.get(v, -1):
                    return True
        return False

    # -- per-message classification -------------------------------------
    def _hash64(self, send_round: int, sender: Any, receiver: Any,
                seq: int) -> int:
        token = f"{send_round}|{sender!r}|{receiver!r}|{seq}"
        digest = blake2b(
            token.encode("utf-8"), digest_size=8, key=self._key
        ).digest()
        return int.from_bytes(digest, "big")

    def classify(self, send_round: int, sender: Any, receiver: Any,
                 seq: int) -> int:
        """DELIVER / DROP / DUPLICATE / CORRUPT for one transmission.

        ``seq`` is the zero-based index of the message among those sent
        over the same directed edge in the same round, which both
        engines derive from the identical per-edge congestion count.
        """
        if not self._has_message_faults:
            return DELIVER
        unit = self._hash64(send_round, sender, receiver, seq) / 2.0 ** 64
        if unit < self._drop_at:
            return DROP
        if unit < self._duplicate_at:
            return DUPLICATE
        if unit < self._corrupt_at:
            return CORRUPT
        return DELIVER

    def corrupted_payload(self, send_round: int, sender: Any, receiver: Any,
                          seq: int) -> CorruptedPayload:
        """The deterministic garbage delivered for a corrupted message."""
        nonce = self._hash64(send_round, sender, receiver, seq + 1_000_003)
        return CorruptedPayload(nonce & 0xFFFFFFFF)

    # -- per-message delay ----------------------------------------------
    def delay_rounds(self, send_round: int, sender: Any, receiver: Any,
                     seq: int) -> int:
        """Extra rounds the channel withholds this transmission (0 =
        deliver on time).

        Both draws live in sequence-number domains disjoint from the
        classify/corrupt domains, so enabling delay never perturbs
        which messages drop, duplicate, or corrupt.
        """
        if not self.has_delay:
            return 0
        gate = self._hash64(send_round, sender, receiver, seq + 2_000_003)
        if gate / 2.0 ** 64 >= self.plan.delay:
            return 0
        if self.plan.max_delay == 1:
            return 1
        magnitude = self._hash64(
            send_round, sender, receiver, seq + 3_000_017
        )
        return 1 + magnitude % self.plan.max_delay


# ----------------------------------------------------------------------
# Session scoping: subject every simulator in a region to one plan.
# ----------------------------------------------------------------------

_ACTIVE_PLANS: List[FaultPlan] = []


def active_fault_plan() -> Optional[FaultPlan]:
    """The innermost :func:`use_faults` plan, if any."""
    return _ACTIVE_PLANS[-1] if _ACTIVE_PLANS else None


@contextlib.contextmanager
def use_faults(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Apply ``plan`` to every simulator constructed in this region.

    High-level entry points (``run_framework``, ``distributed_maxis``,
    experiment cells) build many simulators internally; this is how a
    whole pipeline is run under one fault model without threading a
    plan through every call signature::

        with use_faults(FaultPlan(seed=1, drop=0.05)):
            result = run_framework(g, eps, solver=solver, seed=0)
    """
    if not isinstance(plan, FaultPlan):
        raise FaultError(f"use_faults expects a FaultPlan, got {plan!r}")
    _ACTIVE_PLANS.append(plan)
    try:
        yield plan
    finally:
        _ACTIVE_PLANS.remove(plan)
