"""Structured round tracing for CONGEST simulations.

The engines in :mod:`repro.congest` can optionally emit one
:class:`RoundTrace` record per *executed* round: how many messages (and
bits) were delivered into the round, the per-edge congestion histogram
of that traffic, and how many vertices stepped / sat idle / had already
halted.  Fast-forwarded quiescent stretches produce no per-round
records (that is the point of fast-forwarding); instead the next
executed round notes how many rounds were skipped to reach it, so the
full round timeline can always be reconstructed.

Tracing is opt-in and zero-cost when off.  Two ways to turn it on:

* pass ``trace=TraceRecorder(...)`` to :class:`CongestSimulator`;
* open a :class:`TraceSession` (the CLI's ``--trace`` flag does this),
  which attaches a fresh recorder to every simulator constructed while
  the session is active.

Records export to JSON dicts and JSONL files and round-trip back, so
experiments can report congestion-over-time series instead of only
end-of-run aggregates.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

#: Version stamped on every emitted record.  History:
#:
#: * (unstamped) — the original layout; read back as version 1.
#: * 2 — adds ``message_bits_histogram`` (sizes of the messages
#:   delivered into the round).  Version-1 files load with the
#:   histogram empty.
#: * 3 — adds ``rejoined`` (crash-recovery events in this round) to
#:   the fault-counter block.  Older files load with it zero.
#: * 4 — adds ``delayed`` / ``topo_lost`` / ``partitioned`` (the
#:   network-adversity layer: withheld, churned-away, and
#:   partition-crossing transmissions) to the fault-counter block.
#:   Older files load with them zero.
#: * 5 — adds ``events`` (opt-in per-message provenance: sender,
#:   receiver, per-pair sequence number, payload bits, and channel
#:   outcome).  Recording is off by default; records without events
#:   keep stamping version 4 so detail-off trace files stay
#:   byte-identical to the v4 layout.  Older files load with the
#:   event list empty.
TRACE_SCHEMA_VERSION = 5

#: Stamp used for records that carry no detail events — the highest
#: schema whose field set they actually use.  Keeping the stamp at the
#: legacy value preserves byte-identity of detail-off trace files with
#: pre-v5 writers (pinned by tests).
BASE_SCHEMA_VERSION = 4

#: Channel outcomes a detail event may carry, in the order the channel
#: decides them.  ``deliver`` is a normal same-round delivery;
#: ``release`` is a previously delayed transmission finally delivered
#: (its ``sr`` key holds the original send round); the rest mirror the
#: aggregate fault counters on :class:`RoundTrace`.
EVENT_OUTCOMES = (
    "deliver",
    "release",
    "drop",
    "duplicate",
    "corrupt",
    "delay",
    "topo_lost",
    "partitioned",
)


def detail_event_sort_key(event: Dict[str, Any]):
    """Canonical ordering for a round's detail events.

    Both engines buffer events in their own internal iteration order
    (the fast engine drains only the active set, the reference engine
    scans every vertex); sorting by this key before recording makes the
    emitted stream a pure function of the simulated execution, so
    detail traces stay bit-identical across engines.  Releases sort
    after same-pair fresh sends because they were transmitted in an
    earlier round.
    """
    seq = event.get("q")
    return (
        1 if event.get("o") == "release" else 0,
        event.get("s", ""),
        event.get("r", ""),
        seq if isinstance(seq, int) else -1,
        event.get("sr", -1),
    )


@dataclass
class RoundTrace:
    """One executed round, as observed by the engine.

    ``messages`` / ``bits`` count the traffic *delivered into* this
    round (sent the round before), matching the metric attribution of
    :class:`~repro.congest.metrics.CongestMetrics`.  The congestion
    histogram maps per-directed-edge message multiplicity to the number
    of edges that carried that many messages this round.

    ``dropped`` / ``duplicated`` / ``corrupted`` count what the
    injected-fault channel (:mod:`repro.congest.faults`) did to the
    traffic delivered into this round; ``crashed`` counts vertices that
    fail-stopped *in* this round, and ``rejoined`` (schema 3) counts
    crashed vertices that came back in this round per the plan's
    crash-recovery schedule.  ``delayed`` / ``topo_lost`` /
    ``partitioned`` (schema 4) count transmissions the channel
    withheld past this round, lost to the churned adjacency view, or
    lost crossing partition blocks.  All of these are zero in
    fault-free runs and absent from historical JSONL files (read back
    as zero).

    ``message_bits_histogram`` (schema 2) maps message size in bits to
    the number of messages of that size delivered into this round —
    the per-round view of the E12 message-size claim.  Version-1 files
    load with it empty.

    ``events`` (schema 5, opt-in) lists per-message provenance for the
    traffic attributed to this round: dicts with keys ``s`` (sender
    label), ``r`` (receiver label), ``q`` (per-(sender, receiver)
    sequence number within the send round), ``b`` (payload bits), and
    ``o`` (channel outcome, one of :data:`EVENT_OUTCOMES`); ``release``
    events additionally carry ``sr``, the round the payload was
    originally sent from before the delay queue withheld it.  Events
    are sorted by (sender, receiver, sequence) so both engines emit the
    same stream.  When empty the field is omitted and the record stamps
    :data:`BASE_SCHEMA_VERSION`.
    """

    round: int
    messages: int
    bits: int
    stepped: int
    idle: int
    halted: int
    skipped_before: int
    max_congestion: int
    congestion_histogram: Dict[int, int] = field(default_factory=dict)
    message_bits_histogram: Dict[int, int] = field(default_factory=dict)
    dropped: int = 0
    duplicated: int = 0
    corrupted: int = 0
    crashed: int = 0
    rejoined: int = 0
    delayed: int = 0
    topo_lost: int = 0
    partitioned: int = 0
    events: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "schema": (
                TRACE_SCHEMA_VERSION if self.events else BASE_SCHEMA_VERSION
            ),
            "round": self.round,
            "messages": self.messages,
            "bits": self.bits,
            "stepped": self.stepped,
            "idle": self.idle,
            "halted": self.halted,
            "skipped_before": self.skipped_before,
            "max_congestion": self.max_congestion,
            # JSON object keys are strings; normalize here so the
            # round-trip through JSONL is exact.
            "congestion_histogram": {
                str(k): v for k, v in sorted(self.congestion_histogram.items())
            },
        }
        # Quiescent rounds carry no messages; omit the empty histogram
        # the same way the fault counters are omitted below.
        if self.message_bits_histogram:
            data["message_bits_histogram"] = {
                str(k): v
                for k, v in sorted(self.message_bits_histogram.items())
            }
        # Fault counters appear only when a fault fired, keeping
        # fault-free trace files free of always-zero noise fields.
        if (self.dropped or self.duplicated or self.corrupted
                or self.crashed or self.rejoined or self.delayed
                or self.topo_lost or self.partitioned):
            data["dropped"] = self.dropped
            data["duplicated"] = self.duplicated
            data["corrupted"] = self.corrupted
            data["crashed"] = self.crashed
            data["rejoined"] = self.rejoined
            data["delayed"] = self.delayed
            data["topo_lost"] = self.topo_lost
            data["partitioned"] = self.partitioned
        if self.events:
            data["events"] = [dict(e) for e in self.events]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RoundTrace":
        return cls(
            round=data["round"],
            messages=data["messages"],
            bits=data["bits"],
            stepped=data["stepped"],
            idle=data["idle"],
            halted=data["halted"],
            skipped_before=data["skipped_before"],
            max_congestion=data["max_congestion"],
            congestion_histogram={
                int(k): v for k, v in data["congestion_histogram"].items()
            },
            # Absent from schema-1 files; those round-trip with the
            # histogram empty rather than failing to load.
            message_bits_histogram={
                int(k): v
                for k, v in data.get("message_bits_histogram", {}).items()
            },
            dropped=data.get("dropped", 0),
            duplicated=data.get("duplicated", 0),
            corrupted=data.get("corrupted", 0),
            crashed=data.get("crashed", 0),
            rejoined=data.get("rejoined", 0),
            delayed=data.get("delayed", 0),
            topo_lost=data.get("topo_lost", 0),
            partitioned=data.get("partitioned", 0),
            events=[dict(e) for e in data.get("events", [])],
        )


class TraceRecorder:
    """Collects the :class:`RoundTrace` series of one simulation.

    ``detail=True`` asks the engine to also record per-message
    provenance events (schema 5).  The flag is advisory: the recorder
    stores whatever events the engine hands it either way, but engines
    only pay the per-message bookkeeping cost when it is set.
    """

    def __init__(self, label: str = "", detail: bool = False) -> None:
        self.label = label
        self.detail = detail
        self.rounds: List[RoundTrace] = []

    # -- recording (called by the engines) ------------------------------
    def record_round(
        self,
        round_number: int,
        per_edge_counts: Dict,
        messages: int,
        bits: int,
        stepped: int,
        idle: int,
        halted: int,
        skipped_before: int,
        dropped: int = 0,
        duplicated: int = 0,
        corrupted: int = 0,
        crashed: int = 0,
        rejoined: int = 0,
        delayed: int = 0,
        topo_lost: int = 0,
        partitioned: int = 0,
        message_bits_histogram: Optional[Dict[int, int]] = None,
        events: Optional[List[Dict[str, Any]]] = None,
    ) -> None:
        histogram: Dict[int, int] = {}
        for count in per_edge_counts.values():
            histogram[count] = histogram.get(count, 0) + 1
        self.rounds.append(
            RoundTrace(
                round=round_number,
                messages=messages,
                bits=bits,
                stepped=stepped,
                idle=idle,
                halted=halted,
                skipped_before=skipped_before,
                max_congestion=max(histogram, default=0),
                congestion_histogram=histogram,
                message_bits_histogram=dict(message_bits_histogram or {}),
                dropped=dropped,
                duplicated=duplicated,
                corrupted=corrupted,
                crashed=crashed,
                rejoined=rejoined,
                delayed=delayed,
                topo_lost=topo_lost,
                partitioned=partitioned,
                events=list(events or []),
            )
        )

    # -- aggregation ----------------------------------------------------
    def total_messages(self) -> int:
        return sum(r.messages for r in self.rounds)

    def total_bits(self) -> int:
        return sum(r.bits for r in self.rounds)

    def total_rounds(self) -> int:
        """Executed plus fast-forwarded rounds covered by this trace."""
        return sum(1 + r.skipped_before for r in self.rounds)

    def max_congestion(self) -> int:
        return max((r.max_congestion for r in self.rounds), default=0)

    def total_faults(self) -> Dict[str, int]:
        """Summed per-round fault counters (all zero when fault-free)."""
        return {
            "dropped": sum(r.dropped for r in self.rounds),
            "duplicated": sum(r.duplicated for r in self.rounds),
            "corrupted": sum(r.corrupted for r in self.rounds),
            "crashed": sum(r.crashed for r in self.rounds),
            "rejoined": sum(r.rejoined for r in self.rounds),
            "delayed": sum(r.delayed for r in self.rounds),
            "topo_lost": sum(r.topo_lost for r in self.rounds),
            "partitioned": sum(r.partitioned for r in self.rounds),
        }

    def summary(self) -> Dict[str, int]:
        data = {
            "recorded_rounds": len(self.rounds),
            "total_rounds": self.total_rounds(),
            "total_messages": self.total_messages(),
            "total_bits": self.total_bits(),
            "max_congestion": self.max_congestion(),
        }
        faults = self.total_faults()
        if any(faults.values()):
            data.update(faults)
        return data

    # -- export / import ------------------------------------------------
    def to_dicts(self) -> List[Dict[str, Any]]:
        out = []
        for r in self.rounds:
            d = r.to_dict()
            if self.label:
                d["sim"] = self.label
            out.append(d)
        return out

    def dumps_jsonl(self) -> str:
        return "\n".join(json.dumps(d, sort_keys=True) for d in self.to_dicts())

    def write_jsonl(self, path: str) -> None:
        # Atomic write through repro.storage; the record bytes
        # themselves are unchanged (trace byte-identity is pinned, so
        # no per-record checksums here).
        from .. import storage

        lines = "".join(
            json.dumps(d, sort_keys=True) + "\n" for d in self.to_dicts()
        )
        storage.atomic_write_text(path, lines, verify=True)

    @classmethod
    def from_jsonl(cls, lines: Iterable[str], label: str = "") -> "TraceRecorder":
        """Rebuild a recorder from JSONL lines (blank lines ignored)."""
        rec = cls(label)
        for line in lines:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            if not rec.label and "sim" in data:
                rec.label = data["sim"]
            rec.rounds.append(RoundTrace.from_dict(data))
        return rec

    @classmethod
    def read_jsonl(cls, path: str) -> "TraceRecorder":
        with open(path) as handle:
            return cls.from_jsonl(handle)


# ----------------------------------------------------------------------
# Session scoping: attach recorders to every simulator in a region.
# ----------------------------------------------------------------------

_SESSIONS: List["TraceSession"] = []


class TraceSession:
    """Context manager collecting traces from every simulator inside it.

    High-level entry points (``run_framework``, the CLI commands) spin
    up many simulators internally; a session captures all of them
    without threading a recorder through every call signature::

        with TraceSession() as session:
            run_framework(...)
        session.write_jsonl("trace.jsonl")

    ``detail=True`` propagates to every recorder the session creates,
    turning on per-message provenance events (trace schema 5).
    """

    def __init__(self, detail: bool = False) -> None:
        self.detail = detail
        self.recorders: List[TraceRecorder] = []

    def __enter__(self) -> "TraceSession":
        _SESSIONS.append(self)
        return self

    def __exit__(self, *exc_info) -> None:
        _SESSIONS.remove(self)

    def new_recorder(self, label: str = "") -> TraceRecorder:
        rec = TraceRecorder(
            label or f"sim{len(self.recorders)}", detail=self.detail
        )
        self.recorders.append(rec)
        return rec

    def total_rounds(self) -> int:
        return sum(rec.total_rounds() for rec in self.recorders)

    def write_jsonl(self, path: str) -> None:
        """One line per (simulation, round) record, in creation order.

        Written atomically through :mod:`repro.storage`; record bytes
        are unchanged (trace byte-identity is pinned).
        """
        from .. import storage

        lines = "".join(
            json.dumps(d, sort_keys=True) + "\n"
            for rec in self.recorders
            for d in rec.to_dicts()
        )
        storage.atomic_write_text(path, lines, verify=True)


def active_session() -> Optional[TraceSession]:
    """The innermost active :class:`TraceSession`, if any."""
    return _SESSIONS[-1] if _SESSIONS else None
