"""Structured round tracing for CONGEST simulations.

The engines in :mod:`repro.congest` can optionally emit one
:class:`RoundTrace` record per *executed* round: how many messages (and
bits) were delivered into the round, the per-edge congestion histogram
of that traffic, and how many vertices stepped / sat idle / had already
halted.  Fast-forwarded quiescent stretches produce no per-round
records (that is the point of fast-forwarding); instead the next
executed round notes how many rounds were skipped to reach it, so the
full round timeline can always be reconstructed.

Tracing is opt-in and zero-cost when off.  Two ways to turn it on:

* pass ``trace=TraceRecorder(...)`` to :class:`CongestSimulator`;
* open a :class:`TraceSession` (the CLI's ``--trace`` flag does this),
  which attaches a fresh recorder to every simulator constructed while
  the session is active.

Records export to JSON dicts and JSONL files and round-trip back, so
experiments can report congestion-over-time series instead of only
end-of-run aggregates.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

#: Version stamped on every emitted record.  History:
#:
#: * (unstamped) — the original layout; read back as version 1.
#: * 2 — adds ``message_bits_histogram`` (sizes of the messages
#:   delivered into the round).  Version-1 files load with the
#:   histogram empty.
#: * 3 — adds ``rejoined`` (crash-recovery events in this round) to
#:   the fault-counter block.  Older files load with it zero.
#: * 4 — adds ``delayed`` / ``topo_lost`` / ``partitioned`` (the
#:   network-adversity layer: withheld, churned-away, and
#:   partition-crossing transmissions) to the fault-counter block.
#:   Older files load with them zero.
TRACE_SCHEMA_VERSION = 4


@dataclass
class RoundTrace:
    """One executed round, as observed by the engine.

    ``messages`` / ``bits`` count the traffic *delivered into* this
    round (sent the round before), matching the metric attribution of
    :class:`~repro.congest.metrics.CongestMetrics`.  The congestion
    histogram maps per-directed-edge message multiplicity to the number
    of edges that carried that many messages this round.

    ``dropped`` / ``duplicated`` / ``corrupted`` count what the
    injected-fault channel (:mod:`repro.congest.faults`) did to the
    traffic delivered into this round; ``crashed`` counts vertices that
    fail-stopped *in* this round, and ``rejoined`` (schema 3) counts
    crashed vertices that came back in this round per the plan's
    crash-recovery schedule.  ``delayed`` / ``topo_lost`` /
    ``partitioned`` (schema 4) count transmissions the channel
    withheld past this round, lost to the churned adjacency view, or
    lost crossing partition blocks.  All of these are zero in
    fault-free runs and absent from historical JSONL files (read back
    as zero).

    ``message_bits_histogram`` (schema 2) maps message size in bits to
    the number of messages of that size delivered into this round —
    the per-round view of the E12 message-size claim.  Version-1 files
    load with it empty.
    """

    round: int
    messages: int
    bits: int
    stepped: int
    idle: int
    halted: int
    skipped_before: int
    max_congestion: int
    congestion_histogram: Dict[int, int] = field(default_factory=dict)
    message_bits_histogram: Dict[int, int] = field(default_factory=dict)
    dropped: int = 0
    duplicated: int = 0
    corrupted: int = 0
    crashed: int = 0
    rejoined: int = 0
    delayed: int = 0
    topo_lost: int = 0
    partitioned: int = 0

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "schema": TRACE_SCHEMA_VERSION,
            "round": self.round,
            "messages": self.messages,
            "bits": self.bits,
            "stepped": self.stepped,
            "idle": self.idle,
            "halted": self.halted,
            "skipped_before": self.skipped_before,
            "max_congestion": self.max_congestion,
            # JSON object keys are strings; normalize here so the
            # round-trip through JSONL is exact.
            "congestion_histogram": {
                str(k): v for k, v in sorted(self.congestion_histogram.items())
            },
        }
        # Quiescent rounds carry no messages; omit the empty histogram
        # the same way the fault counters are omitted below.
        if self.message_bits_histogram:
            data["message_bits_histogram"] = {
                str(k): v
                for k, v in sorted(self.message_bits_histogram.items())
            }
        # Fault counters appear only when a fault fired, keeping
        # fault-free trace files free of always-zero noise fields.
        if (self.dropped or self.duplicated or self.corrupted
                or self.crashed or self.rejoined or self.delayed
                or self.topo_lost or self.partitioned):
            data["dropped"] = self.dropped
            data["duplicated"] = self.duplicated
            data["corrupted"] = self.corrupted
            data["crashed"] = self.crashed
            data["rejoined"] = self.rejoined
            data["delayed"] = self.delayed
            data["topo_lost"] = self.topo_lost
            data["partitioned"] = self.partitioned
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RoundTrace":
        return cls(
            round=data["round"],
            messages=data["messages"],
            bits=data["bits"],
            stepped=data["stepped"],
            idle=data["idle"],
            halted=data["halted"],
            skipped_before=data["skipped_before"],
            max_congestion=data["max_congestion"],
            congestion_histogram={
                int(k): v for k, v in data["congestion_histogram"].items()
            },
            # Absent from schema-1 files; those round-trip with the
            # histogram empty rather than failing to load.
            message_bits_histogram={
                int(k): v
                for k, v in data.get("message_bits_histogram", {}).items()
            },
            dropped=data.get("dropped", 0),
            duplicated=data.get("duplicated", 0),
            corrupted=data.get("corrupted", 0),
            crashed=data.get("crashed", 0),
            rejoined=data.get("rejoined", 0),
            delayed=data.get("delayed", 0),
            topo_lost=data.get("topo_lost", 0),
            partitioned=data.get("partitioned", 0),
        )


class TraceRecorder:
    """Collects the :class:`RoundTrace` series of one simulation."""

    def __init__(self, label: str = "") -> None:
        self.label = label
        self.rounds: List[RoundTrace] = []

    # -- recording (called by the engines) ------------------------------
    def record_round(
        self,
        round_number: int,
        per_edge_counts: Dict,
        messages: int,
        bits: int,
        stepped: int,
        idle: int,
        halted: int,
        skipped_before: int,
        dropped: int = 0,
        duplicated: int = 0,
        corrupted: int = 0,
        crashed: int = 0,
        rejoined: int = 0,
        delayed: int = 0,
        topo_lost: int = 0,
        partitioned: int = 0,
        message_bits_histogram: Optional[Dict[int, int]] = None,
    ) -> None:
        histogram: Dict[int, int] = {}
        for count in per_edge_counts.values():
            histogram[count] = histogram.get(count, 0) + 1
        self.rounds.append(
            RoundTrace(
                round=round_number,
                messages=messages,
                bits=bits,
                stepped=stepped,
                idle=idle,
                halted=halted,
                skipped_before=skipped_before,
                max_congestion=max(histogram, default=0),
                congestion_histogram=histogram,
                message_bits_histogram=dict(message_bits_histogram or {}),
                dropped=dropped,
                duplicated=duplicated,
                corrupted=corrupted,
                crashed=crashed,
                rejoined=rejoined,
                delayed=delayed,
                topo_lost=topo_lost,
                partitioned=partitioned,
            )
        )

    # -- aggregation ----------------------------------------------------
    def total_messages(self) -> int:
        return sum(r.messages for r in self.rounds)

    def total_bits(self) -> int:
        return sum(r.bits for r in self.rounds)

    def total_rounds(self) -> int:
        """Executed plus fast-forwarded rounds covered by this trace."""
        return sum(1 + r.skipped_before for r in self.rounds)

    def max_congestion(self) -> int:
        return max((r.max_congestion for r in self.rounds), default=0)

    def total_faults(self) -> Dict[str, int]:
        """Summed per-round fault counters (all zero when fault-free)."""
        return {
            "dropped": sum(r.dropped for r in self.rounds),
            "duplicated": sum(r.duplicated for r in self.rounds),
            "corrupted": sum(r.corrupted for r in self.rounds),
            "crashed": sum(r.crashed for r in self.rounds),
            "rejoined": sum(r.rejoined for r in self.rounds),
            "delayed": sum(r.delayed for r in self.rounds),
            "topo_lost": sum(r.topo_lost for r in self.rounds),
            "partitioned": sum(r.partitioned for r in self.rounds),
        }

    def summary(self) -> Dict[str, int]:
        data = {
            "recorded_rounds": len(self.rounds),
            "total_rounds": self.total_rounds(),
            "total_messages": self.total_messages(),
            "total_bits": self.total_bits(),
            "max_congestion": self.max_congestion(),
        }
        faults = self.total_faults()
        if any(faults.values()):
            data.update(faults)
        return data

    # -- export / import ------------------------------------------------
    def to_dicts(self) -> List[Dict[str, Any]]:
        out = []
        for r in self.rounds:
            d = r.to_dict()
            if self.label:
                d["sim"] = self.label
            out.append(d)
        return out

    def dumps_jsonl(self) -> str:
        return "\n".join(json.dumps(d, sort_keys=True) for d in self.to_dicts())

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as handle:
            for d in self.to_dicts():
                handle.write(json.dumps(d, sort_keys=True) + "\n")

    @classmethod
    def from_jsonl(cls, lines: Iterable[str], label: str = "") -> "TraceRecorder":
        """Rebuild a recorder from JSONL lines (blank lines ignored)."""
        rec = cls(label)
        for line in lines:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            if not rec.label and "sim" in data:
                rec.label = data["sim"]
            rec.rounds.append(RoundTrace.from_dict(data))
        return rec

    @classmethod
    def read_jsonl(cls, path: str) -> "TraceRecorder":
        with open(path) as handle:
            return cls.from_jsonl(handle)


# ----------------------------------------------------------------------
# Session scoping: attach recorders to every simulator in a region.
# ----------------------------------------------------------------------

_SESSIONS: List["TraceSession"] = []


class TraceSession:
    """Context manager collecting traces from every simulator inside it.

    High-level entry points (``run_framework``, the CLI commands) spin
    up many simulators internally; a session captures all of them
    without threading a recorder through every call signature::

        with TraceSession() as session:
            run_framework(...)
        session.write_jsonl("trace.jsonl")
    """

    def __init__(self) -> None:
        self.recorders: List[TraceRecorder] = []

    def __enter__(self) -> "TraceSession":
        _SESSIONS.append(self)
        return self

    def __exit__(self, *exc_info) -> None:
        _SESSIONS.remove(self)

    def new_recorder(self, label: str = "") -> TraceRecorder:
        rec = TraceRecorder(label or f"sim{len(self.recorders)}")
        self.recorders.append(rec)
        return rec

    def total_rounds(self) -> int:
        return sum(rec.total_rounds() for rec in self.recorders)

    def write_jsonl(self, path: str) -> None:
        """One line per (simulation, round) record, in creation order."""
        with open(path, "w") as handle:
            for rec in self.recorders:
                for d in rec.to_dicts():
                    handle.write(json.dumps(d, sort_keys=True) + "\n")


def active_session() -> Optional[TraceSession]:
    """The innermost active :class:`TraceSession`, if any."""
    return _SESSIONS[-1] if _SESSIONS else None
