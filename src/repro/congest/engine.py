"""The fast-path CONGEST engine.

Semantically identical to :class:`repro.congest.reference.ReferenceEngine`
(the differential harness in ``tests/test_engine_equivalence.py`` pins
outputs and metrics bit-for-bit), but built for speed:

* **Interned vertex IDs** — vertices are sorted once into canonical
  order at construction and addressed by dense integers from then on.
  Contexts, algorithms, inboxes, and wakeups live in flat lists indexed
  by those integers; the per-round ``repr``-keyed sorts of the original
  simulator are gone.
* **Wakeup min-heap** — scheduled wakeups sit in a ``(round, vertex)``
  heap with lazy invalidation instead of a dict that was scanned in
  full every round.
* **Active-set message collection** — only vertices that stepped this
  round can have queued messages, so delivery drains exactly those
  outboxes instead of scanning all ``n`` vertices per round.

The engine shares the vertex-facing API (:class:`VertexAlgorithm`,
:class:`VertexContext`) and the accounting policy: traffic is recorded
against the round it is delivered into, so ``metrics.rounds`` equals
the number of rounds executed.
"""

from __future__ import annotations

import pickle
from heapq import heappop, heappush
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..errors import CheckpointError, MessageTooLargeError, ProtocolError
from ..graph import Graph, canonical_vertex_order
from ..rng import ensure_rng
from .algorithm import VertexAlgorithm, VertexContext
from .checkpoint import (
    PICKLE_PROTOCOL,
    SimulationCheckpoint,
    graph_fingerprint,
    verify_restore_target,
)
from .faults import (
    CORRUPT,
    DELIVER,
    DROP,
    DUPLICATE,
    NO_FAULTS,
    FaultInjector,
    pad_fault_counts,
)
from .message import (
    _BOOL_BITS,
    _FLOAT_TOTAL,
    _INT_EXTRA,
    FIELD_OVERHEAD_BITS,
    MessageBudget,
    message_bits,
)
from .metrics import CongestMetrics
from .trace import RoundTrace, TraceRecorder, detail_event_sort_key
from ..obs import registry as _telemetry

#: Sentinel for "no traffic in flight": (per-edge counts, messages,
#: bits, message-size histogram, per-round fault counters).
_NO_TRAFFIC: Tuple[Dict, int, int, Dict, Tuple[int, ...]] = (
    {}, 0, 0, {}, NO_FAULTS
)

#: Private sentinel no user payload can be identical to.
_UNSET = object()


def build_vertex_state(
    graph: Graph,
    algorithm_factory: Callable[[Any], VertexAlgorithm],
    seed,
) -> Tuple[List[Any], List[VertexContext], List[VertexAlgorithm]]:
    """Construct per-vertex contexts and algorithms in canonical order.

    Shared by both engines so that the per-vertex RNG streams (derived
    from the root seed in canonical vertex order) are identical no
    matter which engine runs the algorithm.
    """
    root_rng = ensure_rng(seed)
    getrandbits = root_rng.getrandbits
    order = canonical_vertex_order(graph.vertices())
    n = graph.n
    adj = graph._adj
    contexts: List[VertexContext] = []
    algorithms: List[VertexAlgorithm] = []
    for v in order:
        row = adj[v]
        neighbors = canonical_vertex_order(row)
        ctx = VertexContext(
            vertex=v,
            neighbors=neighbors,
            edge_weights={u: row[u] for u in neighbors},
            n=n,
            rng_seed=getrandbits(64),
        )
        contexts.append(ctx)
        algorithms.append(algorithm_factory(v))
    return order, contexts, algorithms


class FastEngine:
    """Integer-indexed scheduler; see the module docstring."""

    name = "fast"

    def __init__(
        self,
        graph: Graph,
        algorithm_factory: Callable[[Any], VertexAlgorithm],
        budget: Optional[MessageBudget] = None,
        strict: bool = False,
        capacity: int = 1,
        seed=None,
        trace: Optional[TraceRecorder] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.graph = graph
        self.budget = budget if budget is not None else MessageBudget(graph.n)
        self.strict = strict
        self.capacity = capacity
        self.metrics = CongestMetrics()
        self.trace = trace
        self.faults = faults
        # Kept for crash-recovery: a rejoining vertex with no local
        # snapshot re-initializes through the same factory.
        self._factory = algorithm_factory

        order, contexts, algorithms = build_vertex_state(
            graph, algorithm_factory, seed
        )
        self._verts: List[Any] = order
        self._index: Dict[Any, int] = {v: i for i, v in enumerate(order)}
        self._contexts = contexts
        self._algorithms = algorithms
        # Algorithms that keep the base-class scheduling hints are never
        # idle; skip the virtual dispatch for them on the hot path.
        self._default_hints = [
            type(a).is_idle is VertexAlgorithm.is_idle for a in algorithms
        ]
        n = len(order)
        self._n = n

        # Next-round inboxes: vertex id -> {sender vertex: [payloads]}.
        self._pending: List[Optional[Dict[Any, List[Any]]]] = [None] * n
        self._pending_ids: Set[int] = set()
        # Vertices that must step next round regardless of messages.
        self._runnable: Set[int] = set(range(n))
        # Wakeup heap with lazy invalidation: an entry (w, i) is live
        # iff self._wake_round[i] == w.
        self._heap: List[Tuple[int, int]] = []
        self._wake_round: List[Optional[int]] = [None] * n
        self._round = 0
        self._live = n
        # Telemetry is sampled once at construction: a simulator built
        # inside an enabled scope records into that scope's registry for
        # its whole run; outside one, the hot path stays branch-free.
        self._registry = (
            _telemetry.current_registry() if _telemetry.enabled() else None
        )
        # The per-size message histogram is only worth building when
        # something will consume it (a trace recorder or telemetry).
        self._want_bits_hist = trace is not None or self._registry is not None
        # Per-message provenance events (trace schema 5): opt-in via
        # TraceRecorder(detail=True); off by default so the hot path —
        # and the emitted JSONL — stay exactly the v4 shape.
        self._want_detail = trace is not None and getattr(
            trace, "detail", False
        )
        # Detail events buffered alongside _inflight: collected at the
        # end of round r, attributed to the round they deliver into.
        self._inflight_events: List[Dict[str, Any]] = []
        # Traffic collected at the end of the previous round, awaiting
        # delivery (and metric attribution) at the next executed round.
        self._inflight: Tuple[Dict, int, int, Dict, Tuple[int, ...]] = (
            _NO_TRAFFIC
        )
        # Payloads the fault channel withheld, keyed by release round:
        # release -> [(send round, sender, receiver, payload)].  Drained
        # at the top of each executed round; vertex-keyed (never by
        # engine index) so checkpoints stay engine-neutral.
        self._delay_queue: Dict[int, List[Tuple[int, Any, Any, Any]]] = {}
        # Crash schedule (per vertex id), or None when the plan has no
        # crashes so the hot path can skip the lookup entirely.
        if faults is not None and faults.plan.crashes:
            self._crash_rounds: Optional[List[Optional[int]]] = [
                faults.crash_round(v) for v in order
            ]
            # Crash-recovery schedule: (rejoin round, vertex id), sorted
            # by round with canonical order breaking ties (the stable
            # sort preserves the enumerate order within equal rounds).
            rejoins = [
                (faults.rejoin_round(v), i)
                for i, v in enumerate(order)
                if faults.rejoin_round(v) is not None
            ]
            rejoins.sort(key=lambda entry: entry[0])
            self._rejoin_queue: List[Tuple[int, int]] = rejoins
            self._snapshot_interval = faults.checkpoint_interval
        else:
            self._crash_rounds = None
            self._rejoin_queue = []
            self._snapshot_interval = None
        self._crashed_ids: Set[int] = set()
        # Local crash-recovery snapshots: only vertices still scheduled
        # to rejoin are worth snapshotting.
        self._snapshot_targets: Set[int] = {i for _, i in self._rejoin_queue}
        self._snapshots: Dict[int, bytes] = {}
        self._snapshot_rounds: Dict[int, int] = {}
        # Flipped by run() after the initialization pass; a restored
        # post-init checkpoint carries True, so run() then skips
        # initialization and continues mid-simulation.
        self._initialized = False
        # Batched delivery (see repro.congest.kernels.SendPlan): a
        # kernel that emits send plans parks the current round's plan
        # in _send_plan for _collect to charge vectorized; the charged
        # plan then waits in _lazy_plan, standing in for the pending
        # inbox dictionaries until the next round consumes it — or
        # until checkpoint capture / crash filtering materializes it.
        self._send_plan = None
        self._lazy_plan = None
        # Columnar round kernel, when the algorithm class registered
        # one and this run qualifies (see repro.congest.kernels);
        # None means the ordinary scalar step loop.
        from .kernels import maybe_build_kernel

        self._kernel = maybe_build_kernel(self)

    # ------------------------------------------------------------------
    @property
    def rounds_executed(self) -> int:
        """Final value of the synchronous round counter."""
        return self._round

    def run(
        self,
        max_rounds: int = 10_000,
        checkpoint_every: Optional[int] = None,
        on_checkpoint: Optional[Callable[..., None]] = None,
    ):
        """Execute until all vertices halt or ``max_rounds`` elapse.

        When both ``checkpoint_every`` and ``on_checkpoint`` are given,
        a :class:`~repro.congest.checkpoint.SimulationCheckpoint` is
        captured after every ``checkpoint_every``-th executed round and
        passed to ``on_checkpoint``.  On a restored engine, execution
        continues from the checkpointed round; ``max_rounds`` stays an
        absolute bound on the round counter.
        """
        from .network import SimulationResult

        contexts = self._contexts
        algorithms = self._algorithms
        crash_rounds = self._crash_rounds
        kernel = self._kernel
        if not self._initialized:
            self._initialized = True
            init_crashed = 0
            live_init: List[int] = []
            for i in range(self._n):
                if crash_rounds is not None:
                    cr = crash_rounds[i]
                    if cr is not None and cr <= 0:
                        # Fail-stopped before round 0: never initializes.
                        contexts[i]._halted = True
                        self._crashed_ids.add(i)
                        init_crashed += 1
                        continue
                live_init.append(i)
            if kernel is not None:
                kernel.initialize(live_init)
            else:
                for i in live_init:
                    algorithms[i].initialize(contexts[i])
            if init_crashed:
                self.metrics.record_crashed(init_crashed)
            if self._registry is not None:
                with self._registry.span("congest.collect"):
                    self._collect(range(self._n))
            else:
                self._collect(range(self._n))
            self._runnable = {
                i for i in range(self._n) if not contexts[i]._halted
            }
            self._live = len(self._runnable)

        due_vertices = self._due_vertices
        collect = self._collect
        reschedule = self._reschedule
        record_round = self.metrics.record_round
        record_skipped = self.metrics.record_skipped
        trace = self.trace
        pending = self._pending
        pending_ids_discard = self._pending_ids.discard

        while self._round < max_rounds and (
            self._live > 0 or self._rejoin_queue
        ):
            next_round = self._round + 1
            if self._delay_queue:
                self._deliver_delayed(next_round)
            due = due_vertices(next_round)
            skipped = 0
            if not due:
                target = self._next_wakeup_round()
                rejoin_queue = self._rejoin_queue
                if rejoin_queue and (
                    target is None or rejoin_queue[0][0] < target
                ):
                    # A scheduled rejoin is an event like a wakeup: the
                    # quiescent stretch before it can be fast-forwarded.
                    target = rejoin_queue[0][0]
                if self._delay_queue:
                    # A withheld payload's release is an event too: its
                    # receiver becomes due the round it is delivered.
                    release = min(self._delay_queue)
                    if target is None or release < target:
                        target = release
                if target is None:
                    break  # nothing will ever happen again
                if target > max_rounds:
                    record_skipped(max_rounds - self._round)
                    self._round = max_rounds
                    break
                skipped = target - next_round
                record_skipped(skipped)
                next_round = target
                if self._delay_queue:
                    self._deliver_delayed(next_round)
                due = due_vertices(next_round)
            self._round = next_round
            revived = (
                self._process_rejoins(next_round)
                if self._rejoin_queue
                else ()
            )
            per_edge, messages, bits, bits_hist, fcounts = self._inflight
            self._inflight = _NO_TRAFFIC
            if self._want_detail:
                # Snapshot here, not at trace.record_round below: by
                # then _collect has already refilled the buffer with
                # the *next* round's events.
                detail_events = self._inflight_events
                self._inflight_events = []
                detail_events.sort(key=detail_event_sort_key)
            else:
                detail_events = None
            if self.faults is None:
                record_round(per_edge, messages, bits)
            else:
                record_round(per_edge, messages, bits, fcounts)
            live_before = self._live
            crashed_now = 0
            if crash_rounds is None:
                stepping = due
            else:
                # Fail-stop filtering happens before any stepping, so
                # both the scalar loop and a kernel see the same live
                # cohort (a vertex never steps at or after its crash
                # round and its mail dies with it).  Filtering drops a
                # crashing vertex's queued mail, which needs real inbox
                # dictionaries — materialize a lazily-delivered plan
                # first, preserving the scalar collect-then-filter
                # order.
                if self._lazy_plan is not None:
                    self._materialize_lazy()
                stepping = []
                for i in due:
                    cr = crash_rounds[i]
                    if cr is not None and next_round >= cr:
                        ctx = contexts[i]
                        ctx._halted = True
                        ctx._output = None
                        self._crashed_ids.add(i)
                        crashed_now += 1
                        if pending[i] is not None:
                            pending[i] = None
                            pending_ids_discard(i)
                        continue
                    stepping.append(i)
            if kernel is not None:
                kernel.step_round(stepping, next_round)
            else:
                for i in stepping:
                    ctx = contexts[i]
                    ctx.round_number = next_round
                    box = pending[i]
                    if box is None:
                        box = {}
                    else:
                        pending[i] = None
                        pending_ids_discard(i)
                    algorithms[i].step(ctx, box)
            # A lazily-delivered plan is fully consumed by this round's
            # step (its receivers were all due); drop it before the
            # next collection replaces it.
            self._lazy_plan = None
            # Revived vertices may have queued messages while (re-)
            # initializing; drain their outboxes along with the steppers.
            registry = self._registry
            if registry is not None:
                with registry.span("congest.collect"):
                    collect(list(due) + list(revived) if revived else due)
            else:
                collect(list(due) + list(revived) if revived else due)
            reschedule(due)
            if self._snapshot_interval is not None and self._snapshot_targets:
                self._take_local_snapshots(due, next_round)
            if crashed_now:
                self.metrics.record_crashed(crashed_now)
            registry = self._registry
            if registry is not None:
                # Both observations are pure functions of the simulated
                # execution (the differential harness pins stepped
                # counts and message sizes equal across engines), so
                # fast and reference runs publish identical telemetry.
                registry.observe(
                    "congest.active_vertices", len(due) - crashed_now
                )
                if kernel is not None:
                    # Diagnostic hit counter; excluded from telemetry
                    # identity comparisons (see Registry.comparable_dict).
                    registry.count("congest.kernel.rounds")
                if bits_hist:
                    size_hist = registry.histogram("congest.message_bits")
                    for size, times in bits_hist.items():
                        size_hist.observe(size, times)
            if trace is not None:
                trace.record_round(
                    round_number=next_round,
                    per_edge_counts=per_edge,
                    messages=messages,
                    bits=bits,
                    stepped=len(due) - crashed_now,
                    idle=live_before - len(due),
                    halted=self._n - self._live,
                    skipped_before=skipped,
                    dropped=fcounts[0],
                    duplicated=fcounts[1],
                    corrupted=fcounts[2],
                    crashed=crashed_now,
                    rejoined=len(revived),
                    delayed=fcounts[3],
                    topo_lost=fcounts[4],
                    partitioned=fcounts[5],
                    message_bits_histogram=bits_hist,
                    events=detail_events,
                )
            if (
                on_checkpoint is not None
                and checkpoint_every is not None
                and next_round % checkpoint_every == 0
            ):
                on_checkpoint(self.capture_checkpoint())

        if kernel is not None:
            # Materialize columnar state (algorithm attributes, round
            # numbers, advanced RNG streams) back into the scalar
            # objects callers observe.
            kernel.sync()
        if self._registry is not None:
            self.metrics.publish_telemetry(self._registry)
        outputs = {self._verts[i]: contexts[i]._output for i in range(self._n)}
        return SimulationResult(
            outputs=outputs,
            metrics=self.metrics,
            halted=self._live == 0,
            crashed=frozenset(self._verts[i] for i in self._crashed_ids),
        )

    # -- crash recovery -------------------------------------------------
    def _process_rejoins(self, round_number: int) -> List[int]:
        """Revive crashed vertices whose scheduled rejoin round arrived.

        A revived vertex restores from its most recent local snapshot
        (see :meth:`_take_local_snapshots`) or, when none was taken,
        re-initializes from scratch with its original RNG seed.  Mail
        queued while it was dead is lost either way; the vertex steps
        again from the next round on.  A rejoin scheduled for a vertex
        that halted normally before its crash round fired is dropped —
        there is nothing to recover.
        """
        queue = self._rejoin_queue
        contexts = self._contexts
        algorithms = self._algorithms
        revived: List[int] = []
        while queue and queue[0][0] <= round_number:
            _, i = queue.pop(0)
            self._snapshot_targets.discard(i)
            if i not in self._crashed_ids:
                continue
            self._crashed_ids.discard(i)
            if self._crash_rounds is not None:
                # The crash has been consumed; without this the vertex
                # would fail-stop again on its next step.
                self._crash_rounds[i] = None
            snapshot = self._snapshots.pop(i, None)
            self._snapshot_rounds.pop(i, None)
            if snapshot is not None:
                algorithm, ctx = pickle.loads(snapshot)
                ctx.round_number = round_number
            else:
                old = contexts[i]
                ctx = VertexContext(
                    vertex=old.vertex,
                    neighbors=old.neighbors,
                    edge_weights=dict(old.edge_weights),
                    n=old.n,
                    rng_seed=old._rng_seed,
                )
                ctx.round_number = round_number
                algorithm = self._factory(old.vertex)
            contexts[i] = ctx
            algorithms[i] = algorithm
            self._default_hints[i] = (
                type(algorithm).is_idle is VertexAlgorithm.is_idle
            )
            if snapshot is None:
                algorithm.initialize(ctx)
            if self._pending[i] is not None:
                self._pending[i] = None
                self._pending_ids.discard(i)
            self._wake_round[i] = None
            if not ctx._halted:
                self._runnable.add(i)
                self._live += 1
            revived.append(i)
        if revived:
            self.metrics.record_rejoined(len(revived))
        return revived

    def _take_local_snapshots(self, stepped, round_number: int) -> None:
        """Snapshot rejoin-scheduled vertices every ``checkpoint_interval``
        executed steps, so their later revival restores real state.

        Runs after collection, so a snapshot never contains queued
        outbox messages and revival cannot re-send anything.
        """
        interval = self._snapshot_interval
        targets = self._snapshot_targets
        contexts = self._contexts
        last_rounds = self._snapshot_rounds
        for i in stepped:
            if i in targets and not contexts[i]._halted:
                last = last_rounds.get(i)
                if last is None or round_number - last >= interval:
                    self._snapshots[i] = pickle.dumps(
                        (self._algorithms[i], contexts[i]),
                        protocol=PICKLE_PROTOCOL,
                    )
                    last_rounds[i] = round_number

    # -- checkpoint / restore -------------------------------------------
    def capture_checkpoint(self) -> SimulationCheckpoint:
        """Freeze the simulation at the current round boundary.

        The state blob is keyed by vertex (never by engine-internal
        index), normalized so both engines capture identical logical
        state: inboxes, wakeups, and runnable flags of halted vertices
        are dead weight the engines handle lazily and are excluded.
        """
        if self._kernel is not None:
            # Columnar state becomes scalar truth before pickling, so
            # the envelope stays engine- and kernel-neutral.
            self._kernel.sync()
        if self._lazy_plan is not None:
            # Checkpoints serialize pending inboxes as real
            # dictionaries; a lazily-delivered plan must become one
            # first so restores stay bit-identical across modes.
            self._materialize_lazy()
        contexts = self._contexts
        verts = self._verts
        n = self._n
        per_edge, messages, bits, bits_hist, fcounts = self._inflight
        state = {
            "contexts": {verts[i]: contexts[i] for i in range(n)},
            "algorithms": {
                verts[i]: self._algorithms[i] for i in range(n)
            },
            "pending": {
                verts[i]: self._pending[i]
                for i in range(n)
                if self._pending[i] and not contexts[i]._halted
            },
            "runnable": {
                verts[i] for i in self._runnable if not contexts[i]._halted
            },
            "wakeups": {
                verts[i]: w
                for i, w in enumerate(self._wake_round)
                if w is not None and not contexts[i]._halted
            },
            "inflight": {
                "per_edge": [
                    (verts[key // n], verts[key % n], count)
                    for key, count in per_edge.items()
                ],
                "messages": messages,
                "bits": bits,
                "bits_hist": dict(bits_hist),
                "fcounts": tuple(fcounts),
            },
            # Withheld payloads still in flight, flattened in release
            # order (entries are already vertex-keyed in both engines;
            # detail-mode entries carry a trailing sequence number).
            "delayed": [
                (release,) + tuple(entry)
                for release in sorted(self._delay_queue)
                for entry in self._delay_queue[release]
            ],
            # Detail events buffered for the next executed round
            # (empty unless the trace recorder asked for detail).
            "inflight_events": [dict(e) for e in self._inflight_events],
            "crashed": {verts[i] for i in self._crashed_ids},
            "crash_rounds": (
                None
                if self._crash_rounds is None
                else {
                    verts[i]: cr
                    for i, cr in enumerate(self._crash_rounds)
                    if cr is not None
                }
            ),
            "rejoin_queue": [(r, verts[i]) for r, i in self._rejoin_queue],
            "snapshots": {
                verts[i]: blob for i, blob in self._snapshots.items()
            },
            "snapshot_rounds": {
                verts[i]: r for i, r in self._snapshot_rounds.items()
            },
            "initialized": self._initialized,
        }
        if self._registry is not None:
            self._registry.count("congest.checkpoints_captured")
        return SimulationCheckpoint(
            round=self._round,
            n=n,
            engine=self.name,
            graph=graph_fingerprint(self.graph),
            strict=self.strict,
            capacity=self.capacity,
            budget_n=self.budget.n,
            budget_words=self.budget.words,
            fault_plan=(
                self.faults.plan.to_dict() if self.faults is not None else None
            ),
            metrics=self.metrics.to_dict(include_per_round=True),
            state=pickle.dumps(state, protocol=PICKLE_PROTOCOL),
            trace_rounds=(
                [r.to_dict() for r in self.trace.rounds]
                if self.trace is not None
                else None
            ),
        )

    def restore_checkpoint(self, checkpoint: SimulationCheckpoint) -> None:
        """Replace this engine's state with a captured checkpoint.

        The engine must have been constructed over the same graph and
        configuration the checkpoint came from (mismatches raise
        :class:`~repro.errors.CheckpointError`); construction-time
        vertex state is discarded.  ``run()`` then continues from the
        checkpointed round.
        """
        verify_restore_target(self, checkpoint, self._n)
        try:
            state = pickle.loads(checkpoint.state)
        except Exception as exc:
            raise CheckpointError(
                f"cannot unpickle checkpoint state: {exc}"
            ) from exc
        index = self._index
        verts = self._verts
        n = self._n
        try:
            contexts = state["contexts"]
            algorithms = state["algorithms"]
            self._contexts = [contexts[v] for v in verts]
            self._algorithms = [algorithms[v] for v in verts]
            self._default_hints = [
                type(a).is_idle is VertexAlgorithm.is_idle
                for a in self._algorithms
            ]
            self._pending = [None] * n
            self._pending_ids = set()
            for v, box in state["pending"].items():
                i = index[v]
                self._pending[i] = box
                self._pending_ids.add(i)
            self._runnable = {index[v] for v in state["runnable"]}
            self._heap = []
            self._wake_round = [None] * n
            for v, w in state["wakeups"].items():
                i = index[v]
                self._wake_round[i] = w
                heappush(self._heap, (w, i))
            inflight = state["inflight"]
            self._inflight = (
                {
                    index[u] * n + index[w]: count
                    for u, w, count in inflight["per_edge"]
                },
                inflight["messages"],
                inflight["bits"],
                dict(inflight["bits_hist"]),
                pad_fault_counts(inflight["fcounts"]),
            )
            self._delay_queue = {}
            for entry in state.get("delayed", ()):
                # entry = (release, send_round, sender, receiver,
                # payload[, seq]); older checkpoints lack the trailing
                # detail-mode sequence number.
                self._delay_queue.setdefault(entry[0], []).append(
                    tuple(entry[1:])
                )
            self._inflight_events = [
                dict(e) for e in state.get("inflight_events", ())
            ]
            self._crashed_ids = {index[v] for v in state["crashed"]}
            crash_rounds = state["crash_rounds"]
            if crash_rounds is None:
                self._crash_rounds = None
            else:
                rebuilt: List[Optional[int]] = [None] * n
                for v, cr in crash_rounds.items():
                    rebuilt[index[v]] = cr
                self._crash_rounds = rebuilt
            self._rejoin_queue = [
                (r, index[v]) for r, v in state["rejoin_queue"]
            ]
            self._snapshot_targets = {i for _, i in self._rejoin_queue}
            self._snapshots = {
                index[v]: blob for v, blob in state["snapshots"].items()
            }
            self._snapshot_rounds = {
                index[v]: r for v, r in state["snapshot_rounds"].items()
            }
        except KeyError as exc:
            raise CheckpointError(
                f"checkpoint state is missing {exc}"
            ) from exc
        self._round = checkpoint.round
        self._live = sum(
            1 for ctx in self._contexts if not ctx._halted
        )
        self.metrics = CongestMetrics.from_dict(checkpoint.metrics)
        if self.trace is not None and checkpoint.trace_rounds is not None:
            self.trace.rounds = [
                RoundTrace.from_dict(d) for d in checkpoint.trace_rounds
            ]
        # A pre-initialization checkpoint (captured before run()) leaves
        # this False, so the resumed run still initializes normally.
        self._initialized = bool(state.get("initialized", True))
        # Restored pending state is always dictionary-shaped (capture
        # materializes); discard any plan from the pre-restore life.
        self._send_plan = None
        self._lazy_plan = None
        # Rebuild the kernel over the restored scalar state.  resume=True
        # makes its first round replay the restored inbox dictionaries
        # (the previous round's sends are not in any column yet).
        from .kernels import maybe_build_kernel

        self._kernel = maybe_build_kernel(self, resume=True)
        if self._registry is not None:
            self._registry.count("congest.checkpoints_restored")

    # ------------------------------------------------------------------
    def _due_vertices(self, round_number: int) -> List[int]:
        due = self._runnable | self._pending_ids
        heap = self._heap
        wake = self._wake_round
        while heap and heap[0][0] <= round_number:
            w, i = heappop(heap)
            if wake[i] == w:
                wake[i] = None
                due.add(i)
        contexts = self._contexts
        live_due = []
        for i in sorted(due):
            if contexts[i]._halted:
                # A vertex that halted with mail still queued will never
                # read it; drop it from the active set for good.
                self._pending_ids.discard(i)
            else:
                live_due.append(i)
        return live_due

    def _next_wakeup_round(self) -> Optional[int]:
        """Earliest live scheduled wakeup, discarding stale heap entries."""
        heap = self._heap
        wake = self._wake_round
        while heap:
            w, i = heap[0]
            if wake[i] != w:
                heappop(heap)
                continue
            return w
        return None

    def _reschedule(self, stepped: List[int]) -> None:
        contexts = self._contexts
        algorithms = self._algorithms
        default_hints = self._default_hints
        runnable_discard = self._runnable.discard
        runnable_add = self._runnable.add
        wake = self._wake_round
        heap = self._heap
        current_round = self._round
        crash_rounds = self._crash_rounds
        for i in stepped:
            ctx = contexts[i]
            runnable_discard(i)
            wake[i] = None
            if ctx._halted:
                self._live -= 1
                continue
            if default_hints[i]:
                runnable_add(i)
                continue
            algo = algorithms[i]
            if algo.is_idle(ctx):
                w = algo.next_wakeup(ctx)
                if crash_rounds is not None:
                    # Clamp the wakeup so a scheduled crash is noticed
                    # at its exact round even while the vertex is idle.
                    cr = crash_rounds[i]
                    if (
                        cr is not None
                        and cr > current_round
                        and (w is None or cr < w)
                    ):
                        w = cr
                if w is not None and w > current_round:
                    wake[i] = w
                    heappush(heap, (w, i))
            else:
                runnable_add(i)

    def _deliver_delayed(self, round_number: int) -> None:
        """Release withheld payloads whose delivery round has arrived.

        Entries are ordered by (send round, sender rank, receiver rank)
        — a pure function of the plan and the canonical vertex order —
        so both engines append released payloads to the pending inboxes
        in the identical order regardless of internal iteration order.
        """
        queue = self._delay_queue
        ready = [r for r in queue if r <= round_number]
        if not ready:
            return
        entries: List[Tuple] = []
        for release in sorted(ready):
            entries.extend(queue.pop(release))
        index = self._index
        entries.sort(key=lambda e: (e[0], index[e[1]], index[e[2]]))
        pending = self._pending
        pending_ids_add = self._pending_ids.add
        want_detail = self._want_detail
        for entry in entries:
            # Detail-mode entries carry a fifth element: the original
            # per-edge sequence number (see _collect).
            send_round, sender, receiver, payload = entry[:4]
            if want_detail:
                event = {
                    "s": repr(sender), "r": repr(receiver),
                    "o": "release", "sr": send_round,
                }
                if len(entry) > 4:
                    event["q"] = entry[4]
                self._inflight_events.append(event)
            j = index[receiver]
            box = pending[j]
            if box is None:
                pending[j] = {sender: [payload]}
                pending_ids_add(j)
            else:
                lst = box.get(sender)
                if lst is None:
                    box[sender] = [payload]
                else:
                    lst.append(payload)

    def _collect(self, sender_ids) -> None:
        """Drain the outboxes of the vertices that just stepped.

        Only a stepped (or just-initialized) vertex can hold queued
        messages, so delivery touches the active set instead of all
        ``n`` vertices.  The collected traffic is buffered in
        ``_inflight`` and recorded against the round that delivers it.

        A kernel running batched delivery leaves its sends in
        ``_send_plan`` instead of the outboxes; those rounds divert to
        :meth:`_collect_batched` and never touch per-message objects.
        """
        plan = self._send_plan
        if plan is not None:
            self._send_plan = None
            self._collect_batched(plan)
            return
        contexts = self._contexts
        senders = [i for i in sender_ids if contexts[i]._outbox]
        if not senders:
            self._inflight = _NO_TRAFFIC
            return
        if self._registry is not None:
            self._registry.count("congest.delivery.scalar")
        per_edge: Dict[int, int] = {}
        messages = 0
        bits = 0
        max_bits = 0
        want_hist = self._want_bits_hist
        bits_hist: Dict[int, int] = {}
        n = self._n
        index = self._index
        pending = self._pending
        pending_ids_add = self._pending_ids.add
        verts = self._verts
        sizeof = message_bits
        per_edge_get = per_edge.get
        budget_bits = self.budget.bits
        strict = self.strict
        capacity = self.capacity
        injector = self.faults
        send_round = self._round
        dropped = duplicated = corrupted = 0
        delayed = topo_lost = partitioned = 0
        want_detail = self._want_detail
        if want_detail:
            events_append = self._inflight_events.append
        if injector is not None:
            inj_topo = injector.has_topology
            inj_part = injector.has_partitions
            inj_delay = injector.has_delay
            delay_queue = self._delay_queue
        for i in senders:
            ctx = contexts[i]
            outbox = ctx._outbox
            ctx._outbox = []
            v = verts[i]
            base = i * n
            last_payload = _UNSET
            last_size = 0
            for neighbor, payload in outbox:
                # Broadcasts queue the same payload object once per
                # neighbor; measuring it once per distinct object is
                # safe because the identity check cannot conflate values.
                if payload is last_payload:
                    size = last_size
                else:
                    # Inlined fast path of message_bits() for the two
                    # dominant payload shapes (bare ints and flat
                    # tuples); message_bits handles everything else
                    # with identical results, and the differential
                    # harness holds the two accountings equal.
                    tp = type(payload)
                    if tp is int:
                        size = (payload.bit_length() or 1) + _INT_EXTRA
                    elif tp is tuple:
                        size = FIELD_OVERHEAD_BITS
                        for item in payload:
                            ti = type(item)
                            if ti is int:
                                size += (item.bit_length() or 1) + _INT_EXTRA
                            elif ti is str:
                                size += 8 * len(item) + FIELD_OVERHEAD_BITS
                            elif item is None:
                                size += 1
                            elif ti is float:
                                size += _FLOAT_TOTAL
                            elif ti is bool:
                                size += _BOOL_BITS
                            else:
                                size += sizeof(item)
                    else:
                        size = sizeof(payload)
                    last_payload = payload
                    last_size = size
                if size > budget_bits:
                    raise MessageTooLargeError(
                        size,
                        budget_bits,
                        detail=f"from {v!r} to {neighbor!r}",
                    )
                if size > max_bits:
                    max_bits = size
                j = index[neighbor]
                ekey = base + j
                count = per_edge_get(ekey, 0) + 1
                per_edge[ekey] = count
                if strict and count > capacity:
                    raise ProtocolError(
                        f"edge {(v, neighbor)!r} carried {count} messages "
                        f"in one round (capacity {capacity})"
                    )
                messages += 1
                bits += size
                if want_hist:
                    # Keyed on what the sender was charged, so the
                    # histogram total always equals ``bits`` even when
                    # the fault channel below drops the transmission.
                    bits_hist[size] = bits_hist.get(size, 0) + 1
                copies = 1
                outcome = "deliver"
                if injector is not None:
                    # The sender has paid; what follows is the channel.
                    # Fault decisions key on the per-edge sequence
                    # number ``count - 1``, identical in both engines.
                    if inj_topo and not injector.topology_live(
                        v, neighbor, send_round
                    ):
                        topo_lost += 1
                        if want_detail:
                            events_append({
                                "s": repr(v), "r": repr(neighbor),
                                "q": count - 1, "b": size, "o": "topo_lost",
                            })
                        continue
                    if inj_part and injector.partitioned(
                        v, neighbor, send_round
                    ):
                        partitioned += 1
                        if want_detail:
                            events_append({
                                "s": repr(v), "r": repr(neighbor),
                                "q": count - 1, "b": size, "o": "partitioned",
                            })
                        continue
                    if injector.link_down(v, neighbor, send_round):
                        dropped += 1
                        if want_detail:
                            events_append({
                                "s": repr(v), "r": repr(neighbor),
                                "q": count - 1, "b": size, "o": "drop",
                            })
                        continue
                    action = injector.classify(
                        send_round, v, neighbor, count - 1
                    )
                    if action == DROP:
                        dropped += 1
                        if want_detail:
                            events_append({
                                "s": repr(v), "r": repr(neighbor),
                                "q": count - 1, "b": size, "o": "drop",
                            })
                        continue
                    if action == DUPLICATE:
                        duplicated += 1
                        copies = 2
                        outcome = "duplicate"
                    elif action == CORRUPT:
                        corrupted += 1
                        outcome = "corrupt"
                        payload = injector.corrupted_payload(
                            send_round, v, neighbor, count - 1
                        )
                    if inj_delay:
                        extra = injector.delay_rounds(
                            send_round, v, neighbor, count - 1
                        )
                        if extra:
                            # Charged now, handed over later: the
                            # payload (every copy of it) waits in the
                            # delay queue for its release round.
                            delayed += 1
                            release = delay_queue.setdefault(
                                send_round + 1 + extra, []
                            )
                            if want_detail:
                                # The per-edge sequence number rides
                                # along so the release event can be
                                # joined back to this transmission.
                                entry = (
                                    send_round, v, neighbor, payload,
                                    count - 1,
                                )
                                events_append({
                                    "s": repr(v), "r": repr(neighbor),
                                    "q": count - 1, "b": size, "o": "delay",
                                })
                            else:
                                entry = (send_round, v, neighbor, payload)
                            release.append(entry)
                            if copies == 2:
                                release.append(entry)
                            continue
                if want_detail:
                    events_append({
                        "s": repr(v), "r": repr(neighbor),
                        "q": count - 1, "b": size, "o": outcome,
                    })
                box = pending[j]
                if box is None:
                    pending[j] = {v: [payload] * copies}
                    pending_ids_add(j)
                else:
                    lst = box.get(v)
                    if lst is None:
                        box[v] = [payload] * copies
                    else:
                        lst.append(payload)
                        if copies == 2:
                            lst.append(payload)
        if max_bits > self.metrics.max_message_bits:
            self.metrics.max_message_bits = max_bits
        self._inflight = (
            per_edge,
            messages,
            bits,
            bits_hist,
            (dropped, duplicated, corrupted, delayed, topo_lost, partitioned)
            if injector is not None
            else NO_FAULTS,
        )

    def _collect_batched(self, plan) -> None:
        """Charge a columnar send plan without materializing inboxes.

        The plan's vectorized accounting reproduces the scalar path
        bit-for-bit (same per-edge counts, bits, histogram, errors);
        receivers are marked due via ``_pending_ids`` but their inbox
        dictionaries stay unbuilt — the plan itself is parked in
        ``_lazy_plan`` and reconstructed only if checkpoint capture or
        crash filtering needs object-level messages.  Kernelized plans
        ride a lossless channel by construction (message-faulting plans
        disable kernels), so the fault channel is skipped; crash-only
        injectors still get their zeroed per-round fault counters.
        """
        per_edge, messages, bits, bits_hist, max_bits, receivers = (
            plan.account(self)
        )
        if max_bits > self.metrics.max_message_bits:
            self.metrics.max_message_bits = max_bits
        self._pending_ids.update(receivers)
        self._lazy_plan = plan
        if self._registry is not None:
            self._registry.count("congest.delivery.batched")
        self._inflight = (
            per_edge,
            messages,
            bits,
            bits_hist,
            NO_FAULTS,
        )

    def _materialize_lazy(self) -> None:
        """Build the inbox dictionaries a lazily-delivered plan deferred."""
        plan = self._lazy_plan
        self._lazy_plan = None
        plan.materialize(self)
        if self._registry is not None:
            self._registry.count("congest.delivery.materialized")
