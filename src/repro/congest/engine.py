"""The fast-path CONGEST engine.

Semantically identical to :class:`repro.congest.reference.ReferenceEngine`
(the differential harness in ``tests/test_engine_equivalence.py`` pins
outputs and metrics bit-for-bit), but built for speed:

* **Interned vertex IDs** — vertices are sorted once into canonical
  order at construction and addressed by dense integers from then on.
  Contexts, algorithms, inboxes, and wakeups live in flat lists indexed
  by those integers; the per-round ``repr``-keyed sorts of the original
  simulator are gone.
* **Wakeup min-heap** — scheduled wakeups sit in a ``(round, vertex)``
  heap with lazy invalidation instead of a dict that was scanned in
  full every round.
* **Active-set message collection** — only vertices that stepped this
  round can have queued messages, so delivery drains exactly those
  outboxes instead of scanning all ``n`` vertices per round.

The engine shares the vertex-facing API (:class:`VertexAlgorithm`,
:class:`VertexContext`) and the accounting policy: traffic is recorded
against the round it is delivered into, so ``metrics.rounds`` equals
the number of rounds executed.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..errors import MessageTooLargeError, ProtocolError
from ..graph import Graph, canonical_vertex_order
from ..rng import ensure_rng
from .algorithm import VertexAlgorithm, VertexContext
from .faults import CORRUPT, DELIVER, DROP, DUPLICATE, NO_FAULTS, FaultInjector
from .message import (
    _BOOL_BITS,
    _FLOAT_TOTAL,
    _INT_EXTRA,
    FIELD_OVERHEAD_BITS,
    MessageBudget,
    message_bits,
)
from .metrics import CongestMetrics
from .trace import TraceRecorder
from ..obs import registry as _telemetry

#: Sentinel for "no traffic in flight": (per-edge counts, messages,
#: bits, message-size histogram, (dropped, duplicated, corrupted)).
_NO_TRAFFIC: Tuple[Dict, int, int, Dict, Tuple[int, int, int]] = (
    {}, 0, 0, {}, NO_FAULTS
)

#: Private sentinel no user payload can be identical to.
_UNSET = object()


def build_vertex_state(
    graph: Graph,
    algorithm_factory: Callable[[Any], VertexAlgorithm],
    seed,
) -> Tuple[List[Any], List[VertexContext], List[VertexAlgorithm]]:
    """Construct per-vertex contexts and algorithms in canonical order.

    Shared by both engines so that the per-vertex RNG streams (derived
    from the root seed in canonical vertex order) are identical no
    matter which engine runs the algorithm.
    """
    root_rng = ensure_rng(seed)
    getrandbits = root_rng.getrandbits
    order = canonical_vertex_order(graph.vertices())
    n = graph.n
    adj = graph._adj
    contexts: List[VertexContext] = []
    algorithms: List[VertexAlgorithm] = []
    for v in order:
        row = adj[v]
        neighbors = canonical_vertex_order(row)
        ctx = VertexContext(
            vertex=v,
            neighbors=neighbors,
            edge_weights={u: row[u] for u in neighbors},
            n=n,
            rng_seed=getrandbits(64),
        )
        contexts.append(ctx)
        algorithms.append(algorithm_factory(v))
    return order, contexts, algorithms


class FastEngine:
    """Integer-indexed scheduler; see the module docstring."""

    name = "fast"

    def __init__(
        self,
        graph: Graph,
        algorithm_factory: Callable[[Any], VertexAlgorithm],
        budget: Optional[MessageBudget] = None,
        strict: bool = False,
        capacity: int = 1,
        seed=None,
        trace: Optional[TraceRecorder] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.graph = graph
        self.budget = budget if budget is not None else MessageBudget(graph.n)
        self.strict = strict
        self.capacity = capacity
        self.metrics = CongestMetrics()
        self.trace = trace
        self.faults = faults

        order, contexts, algorithms = build_vertex_state(
            graph, algorithm_factory, seed
        )
        self._verts: List[Any] = order
        self._index: Dict[Any, int] = {v: i for i, v in enumerate(order)}
        self._contexts = contexts
        self._algorithms = algorithms
        # Algorithms that keep the base-class scheduling hints are never
        # idle; skip the virtual dispatch for them on the hot path.
        self._default_hints = [
            type(a).is_idle is VertexAlgorithm.is_idle for a in algorithms
        ]
        n = len(order)
        self._n = n

        # Next-round inboxes: vertex id -> {sender vertex: [payloads]}.
        self._pending: List[Optional[Dict[Any, List[Any]]]] = [None] * n
        self._pending_ids: Set[int] = set()
        # Vertices that must step next round regardless of messages.
        self._runnable: Set[int] = set(range(n))
        # Wakeup heap with lazy invalidation: an entry (w, i) is live
        # iff self._wake_round[i] == w.
        self._heap: List[Tuple[int, int]] = []
        self._wake_round: List[Optional[int]] = [None] * n
        self._round = 0
        self._live = n
        # Telemetry is sampled once at construction: a simulator built
        # inside an enabled scope records into that scope's registry for
        # its whole run; outside one, the hot path stays branch-free.
        self._registry = (
            _telemetry.current_registry() if _telemetry.enabled() else None
        )
        # The per-size message histogram is only worth building when
        # something will consume it (a trace recorder or telemetry).
        self._want_bits_hist = trace is not None or self._registry is not None
        # Traffic collected at the end of the previous round, awaiting
        # delivery (and metric attribution) at the next executed round.
        self._inflight: Tuple[Dict, int, int, Dict, Tuple[int, int, int]] = (
            _NO_TRAFFIC
        )
        # Crash schedule (per vertex id), or None when the plan has no
        # crashes so the hot path can skip the lookup entirely.
        if faults is not None and faults.plan.crashes:
            self._crash_rounds: Optional[List[Optional[int]]] = [
                faults.crash_round(v) for v in order
            ]
        else:
            self._crash_rounds = None
        self._crashed_ids: Set[int] = set()

    # ------------------------------------------------------------------
    @property
    def rounds_executed(self) -> int:
        """Final value of the synchronous round counter."""
        return self._round

    def run(self, max_rounds: int = 10_000):
        """Execute until all vertices halt or ``max_rounds`` elapse."""
        from .network import SimulationResult

        contexts = self._contexts
        algorithms = self._algorithms
        crash_rounds = self._crash_rounds
        init_crashed = 0
        for i in range(self._n):
            if crash_rounds is not None:
                cr = crash_rounds[i]
                if cr is not None and cr <= 0:
                    # Fail-stopped before round 0: never initializes.
                    contexts[i]._halted = True
                    self._crashed_ids.add(i)
                    init_crashed += 1
                    continue
            algorithms[i].initialize(contexts[i])
        if init_crashed:
            self.metrics.record_crashed(init_crashed)
        self._collect(range(self._n))
        self._runnable = {
            i for i in range(self._n) if not contexts[i]._halted
        }
        self._live = len(self._runnable)

        due_vertices = self._due_vertices
        collect = self._collect
        reschedule = self._reschedule
        record_round = self.metrics.record_round
        record_skipped = self.metrics.record_skipped
        trace = self.trace
        pending = self._pending
        pending_ids_discard = self._pending_ids.discard

        while self._round < max_rounds and self._live > 0:
            next_round = self._round + 1
            due = due_vertices(next_round)
            skipped = 0
            if not due:
                target = self._next_wakeup_round()
                if target is None:
                    break  # nothing will ever happen again
                if target > max_rounds:
                    record_skipped(max_rounds - self._round)
                    self._round = max_rounds
                    break
                skipped = target - next_round
                record_skipped(skipped)
                next_round = target
                due = due_vertices(next_round)
            self._round = next_round
            per_edge, messages, bits, bits_hist, fcounts = self._inflight
            self._inflight = _NO_TRAFFIC
            if self.faults is None:
                record_round(per_edge, messages, bits)
            else:
                record_round(per_edge, messages, bits, fcounts)
            live_before = self._live
            crashed_now = 0
            for i in due:
                ctx = contexts[i]
                if crash_rounds is not None:
                    cr = crash_rounds[i]
                    if cr is not None and next_round >= cr:
                        # Fail-stop: the vertex never steps at or after
                        # its crash round and its mail dies with it.
                        ctx._halted = True
                        ctx._output = None
                        self._crashed_ids.add(i)
                        crashed_now += 1
                        if pending[i] is not None:
                            pending[i] = None
                            pending_ids_discard(i)
                        continue
                ctx.round_number = next_round
                box = pending[i]
                if box is None:
                    box = {}
                else:
                    pending[i] = None
                    pending_ids_discard(i)
                algorithms[i].step(ctx, box)
            collect(due)
            reschedule(due)
            if crashed_now:
                self.metrics.record_crashed(crashed_now)
            registry = self._registry
            if registry is not None:
                # Both observations are pure functions of the simulated
                # execution (the differential harness pins stepped
                # counts and message sizes equal across engines), so
                # fast and reference runs publish identical telemetry.
                registry.observe(
                    "congest.active_vertices", len(due) - crashed_now
                )
                if bits_hist:
                    size_hist = registry.histogram("congest.message_bits")
                    for size, times in bits_hist.items():
                        size_hist.observe(size, times)
            if trace is not None:
                trace.record_round(
                    round_number=next_round,
                    per_edge_counts=per_edge,
                    messages=messages,
                    bits=bits,
                    stepped=len(due) - crashed_now,
                    idle=live_before - len(due),
                    halted=self._n - self._live,
                    skipped_before=skipped,
                    dropped=fcounts[0],
                    duplicated=fcounts[1],
                    corrupted=fcounts[2],
                    crashed=crashed_now,
                    message_bits_histogram=bits_hist,
                )

        if self._registry is not None:
            self.metrics.publish_telemetry(self._registry)
        outputs = {self._verts[i]: contexts[i]._output for i in range(self._n)}
        return SimulationResult(
            outputs=outputs,
            metrics=self.metrics,
            halted=self._live == 0,
            crashed=frozenset(self._verts[i] for i in self._crashed_ids),
        )

    # ------------------------------------------------------------------
    def _due_vertices(self, round_number: int) -> List[int]:
        due = self._runnable | self._pending_ids
        heap = self._heap
        wake = self._wake_round
        while heap and heap[0][0] <= round_number:
            w, i = heappop(heap)
            if wake[i] == w:
                wake[i] = None
                due.add(i)
        contexts = self._contexts
        live_due = []
        for i in sorted(due):
            if contexts[i]._halted:
                # A vertex that halted with mail still queued will never
                # read it; drop it from the active set for good.
                self._pending_ids.discard(i)
            else:
                live_due.append(i)
        return live_due

    def _next_wakeup_round(self) -> Optional[int]:
        """Earliest live scheduled wakeup, discarding stale heap entries."""
        heap = self._heap
        wake = self._wake_round
        while heap:
            w, i = heap[0]
            if wake[i] != w:
                heappop(heap)
                continue
            return w
        return None

    def _reschedule(self, stepped: List[int]) -> None:
        contexts = self._contexts
        algorithms = self._algorithms
        default_hints = self._default_hints
        runnable_discard = self._runnable.discard
        runnable_add = self._runnable.add
        wake = self._wake_round
        heap = self._heap
        current_round = self._round
        crash_rounds = self._crash_rounds
        for i in stepped:
            ctx = contexts[i]
            runnable_discard(i)
            wake[i] = None
            if ctx._halted:
                self._live -= 1
                continue
            if default_hints[i]:
                runnable_add(i)
                continue
            algo = algorithms[i]
            if algo.is_idle(ctx):
                w = algo.next_wakeup(ctx)
                if crash_rounds is not None:
                    # Clamp the wakeup so a scheduled crash is noticed
                    # at its exact round even while the vertex is idle.
                    cr = crash_rounds[i]
                    if (
                        cr is not None
                        and cr > current_round
                        and (w is None or cr < w)
                    ):
                        w = cr
                if w is not None and w > current_round:
                    wake[i] = w
                    heappush(heap, (w, i))
            else:
                runnable_add(i)

    def _collect(self, sender_ids) -> None:
        """Drain the outboxes of the vertices that just stepped.

        Only a stepped (or just-initialized) vertex can hold queued
        messages, so delivery touches the active set instead of all
        ``n`` vertices.  The collected traffic is buffered in
        ``_inflight`` and recorded against the round that delivers it.
        """
        contexts = self._contexts
        senders = [i for i in sender_ids if contexts[i]._outbox]
        if not senders:
            self._inflight = _NO_TRAFFIC
            return
        per_edge: Dict[int, int] = {}
        messages = 0
        bits = 0
        max_bits = 0
        want_hist = self._want_bits_hist
        bits_hist: Dict[int, int] = {}
        n = self._n
        index = self._index
        pending = self._pending
        pending_ids_add = self._pending_ids.add
        verts = self._verts
        sizeof = message_bits
        per_edge_get = per_edge.get
        budget_bits = self.budget.bits
        strict = self.strict
        capacity = self.capacity
        injector = self.faults
        send_round = self._round
        dropped = duplicated = corrupted = 0
        for i in senders:
            ctx = contexts[i]
            outbox = ctx._outbox
            ctx._outbox = []
            v = verts[i]
            base = i * n
            last_payload = _UNSET
            last_size = 0
            for neighbor, payload in outbox:
                # Broadcasts queue the same payload object once per
                # neighbor; measuring it once per distinct object is
                # safe because the identity check cannot conflate values.
                if payload is last_payload:
                    size = last_size
                else:
                    # Inlined fast path of message_bits() for the two
                    # dominant payload shapes (bare ints and flat
                    # tuples); message_bits handles everything else
                    # with identical results, and the differential
                    # harness holds the two accountings equal.
                    tp = type(payload)
                    if tp is int:
                        size = (payload.bit_length() or 1) + _INT_EXTRA
                    elif tp is tuple:
                        size = FIELD_OVERHEAD_BITS
                        for item in payload:
                            ti = type(item)
                            if ti is int:
                                size += (item.bit_length() or 1) + _INT_EXTRA
                            elif ti is str:
                                size += 8 * len(item) + FIELD_OVERHEAD_BITS
                            elif item is None:
                                size += 1
                            elif ti is float:
                                size += _FLOAT_TOTAL
                            elif ti is bool:
                                size += _BOOL_BITS
                            else:
                                size += sizeof(item)
                    else:
                        size = sizeof(payload)
                    last_payload = payload
                    last_size = size
                if size > budget_bits:
                    raise MessageTooLargeError(
                        size,
                        budget_bits,
                        detail=f"from {v!r} to {neighbor!r}",
                    )
                if size > max_bits:
                    max_bits = size
                j = index[neighbor]
                ekey = base + j
                count = per_edge_get(ekey, 0) + 1
                per_edge[ekey] = count
                if strict and count > capacity:
                    raise ProtocolError(
                        f"edge {(v, neighbor)!r} carried {count} messages "
                        f"in one round (capacity {capacity})"
                    )
                messages += 1
                bits += size
                if want_hist:
                    # Keyed on what the sender was charged, so the
                    # histogram total always equals ``bits`` even when
                    # the fault channel below drops the transmission.
                    bits_hist[size] = bits_hist.get(size, 0) + 1
                copies = 1
                if injector is not None:
                    # The sender has paid; what follows is the channel.
                    # Fault decisions key on the per-edge sequence
                    # number ``count - 1``, identical in both engines.
                    if injector.link_down(v, neighbor, send_round):
                        dropped += 1
                        continue
                    action = injector.classify(
                        send_round, v, neighbor, count - 1
                    )
                    if action == DROP:
                        dropped += 1
                        continue
                    if action == DUPLICATE:
                        duplicated += 1
                        copies = 2
                    elif action == CORRUPT:
                        corrupted += 1
                        payload = injector.corrupted_payload(
                            send_round, v, neighbor, count - 1
                        )
                box = pending[j]
                if box is None:
                    pending[j] = {v: [payload] * copies}
                    pending_ids_add(j)
                else:
                    lst = box.get(v)
                    if lst is None:
                        box[v] = [payload] * copies
                    else:
                        lst.append(payload)
                        if copies == 2:
                            lst.append(payload)
        if max_bits > self.metrics.max_message_bits:
            self.metrics.max_message_bits = max_bits
        self._inflight = (
            per_edge,
            messages,
            bits,
            bits_hist,
            (dropped, duplicated, corrupted) if injector is not None
            else NO_FAULTS,
        )
