"""Round, message, and congestion accounting for CONGEST runs."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List


def _merge_histograms(a: Dict[int, int], b: Dict[int, int]) -> Dict[int, int]:
    """Sum two sparse ``multiplicity -> observations`` histograms."""
    merged = dict(a)
    for key, value in b.items():
        merged[key] = merged.get(key, 0) + value
    return merged


def _histogram_percentile(histogram: Dict[int, int], q: float) -> int:
    """Nearest-rank percentile of a sparse integer histogram."""
    total = sum(histogram.values())
    if total == 0:
        return 0
    rank = max(1, int(q * total + 0.5))
    acc = 0
    for key in sorted(histogram):
        acc += histogram[key]
        if acc >= rank:
            return key
    return max(histogram)


@dataclass
class CongestMetrics:
    """Aggregate statistics of one simulated execution.

    ``rounds``
        Synchronous rounds executed by the simulator (including
        fast-forwarded quiescent rounds).  Equals the simulator's final
        round counter: each executed round calls :meth:`record_round`
        exactly once with the traffic delivered *into* it, and each
        fast-forwarded stretch calls :meth:`record_skipped`.
    ``effective_rounds``
        Σ over rounds of the maximum number of messages any single
        directed edge carried in that round.  When an algorithm batches
        several unit messages onto one edge in one simulated round
        (which real CONGEST would serialize), this is the faithful
        CONGEST round count.  For strict capacity-1 runs it equals
        ``rounds``.
    ``total_messages`` / ``total_bits``
        Volume counters across the whole run.
    ``max_message_bits``
        The largest single message observed — the experiment E12 series
        showing the framework stays within O(log n) bits.
    ``max_edge_congestion``
        max over (round, edge) of messages carried — Lemma 2.4 claims
        this is O(log n) for the random-walk router.
    ``congestion_histogram``
        The full per-edge congestion *distribution*: maps message
        multiplicity to the number of (round, directed edge) pairs that
        carried exactly that many messages.  Idle edges are not
        observed.  ``max_edge_congestion`` is its largest key;
        :meth:`congestion_summary` reports p50/p95/max over it.
    ``messages_dropped`` / ``messages_duplicated`` / ``messages_corrupted``
        What the (injected-fault) channel did to transmissions that the
        volume counters above already charged to the sender: see
        :mod:`repro.congest.faults`.  All zero in a fault-free run.
    ``messages_delayed``
        Transmissions the channel withheld past their normal delivery
        round (each is still charged at its send slot; the counter
        records that its payload arrived late and possibly reordered).
    ``messages_lost_topology``
        Transmissions attempted over an edge absent from the round's
        churned adjacency view (not yet arrived, departed, or outside
        every up-window).
    ``messages_partitioned``
        Transmissions lost crossing two isolated blocks of an active
        partition window.
    ``vertices_crashed``
        Vertices fail-stopped by a fault plan during this execution.
    ``vertices_rejoined``
        Crash-recovery events: crashed vertices that came back (from a
        local snapshot or a fresh re-initialization) per the plan's
        rejoin schedule.  Each rejoin also counted once in
        ``vertices_crashed`` when the vertex went down.
    """

    rounds: int = 0
    effective_rounds: int = 0
    total_messages: int = 0
    total_bits: int = 0
    max_message_bits: int = 0
    max_edge_congestion: int = 0
    messages_dropped: int = 0
    messages_duplicated: int = 0
    messages_corrupted: int = 0
    messages_delayed: int = 0
    messages_lost_topology: int = 0
    messages_partitioned: int = 0
    vertices_crashed: int = 0
    vertices_rejoined: int = 0
    messages_per_round: List[int] = field(default_factory=list)
    congestion_histogram: Dict[int, int] = field(default_factory=dict)

    def record_round(
        self,
        per_edge_counts: Dict,
        messages: int,
        bits: int,
        faults: "tuple[int, ...] | None" = None,
    ) -> None:
        """Fold one round of traffic into the aggregates.

        ``faults`` is the optional (dropped, duplicated, corrupted,
        delayed, topology-lost, partitioned) counter tuple for the
        traffic delivered into this round (historical 3-tuples are
        still accepted).
        """
        self.rounds += 1
        if per_edge_counts:
            values = per_edge_counts.values()
            round_congestion = max(values)
            histogram = self.congestion_histogram
            if round_congestion == 1:
                # Capacity-1 round (the overwhelmingly common case):
                # every active edge carried exactly one message, so the
                # whole round collapses into one histogram cell.
                histogram[1] = histogram.get(1, 0) + len(per_edge_counts)
            else:
                # One pass over the active edges builds this round's
                # sparse congestion histogram.
                round_histogram = Counter(values)
                for multiplicity, edges in round_histogram.items():
                    histogram[multiplicity] = (
                        histogram.get(multiplicity, 0) + edges
                    )
        else:
            round_congestion = 0
        self.effective_rounds += max(1, round_congestion)
        self.total_messages += messages
        self.total_bits += bits
        self.max_edge_congestion = max(self.max_edge_congestion, round_congestion)
        self.messages_per_round.append(messages)
        if faults is not None:
            self.messages_dropped += faults[0]
            self.messages_duplicated += faults[1]
            self.messages_corrupted += faults[2]
            if len(faults) > 3:
                self.messages_delayed += faults[3]
                self.messages_lost_topology += faults[4]
                self.messages_partitioned += faults[5]

    def record_crashed(self, count: int) -> None:
        """Account ``count`` vertices fail-stopped by a fault plan."""
        if count > 0:
            self.vertices_crashed += count

    def record_rejoined(self, count: int) -> None:
        """Account ``count`` crashed vertices rejoining the network."""
        if count > 0:
            self.vertices_rejoined += count

    def record_skipped(self, rounds: int) -> None:
        """Account a fast-forwarded quiescent stretch (no messages)."""
        if rounds <= 0:
            return
        self.rounds += rounds
        self.effective_rounds += rounds

    def record_message(self, bits: int) -> None:
        """Track the size of one message."""
        self.max_message_bits = max(self.max_message_bits, bits)

    def merge(self, other: "CongestMetrics") -> "CongestMetrics":
        """Combine two executions run back to back (phases of one algorithm)."""
        merged = CongestMetrics(
            rounds=self.rounds + other.rounds,
            effective_rounds=self.effective_rounds + other.effective_rounds,
            total_messages=self.total_messages + other.total_messages,
            total_bits=self.total_bits + other.total_bits,
            max_message_bits=max(self.max_message_bits, other.max_message_bits),
            max_edge_congestion=max(
                self.max_edge_congestion, other.max_edge_congestion
            ),
            messages_dropped=self.messages_dropped + other.messages_dropped,
            messages_duplicated=(
                self.messages_duplicated + other.messages_duplicated
            ),
            messages_corrupted=(
                self.messages_corrupted + other.messages_corrupted
            ),
            messages_delayed=self.messages_delayed + other.messages_delayed,
            messages_lost_topology=(
                self.messages_lost_topology + other.messages_lost_topology
            ),
            messages_partitioned=(
                self.messages_partitioned + other.messages_partitioned
            ),
            vertices_crashed=self.vertices_crashed + other.vertices_crashed,
            vertices_rejoined=(
                self.vertices_rejoined + other.vertices_rejoined
            ),
            messages_per_round=self.messages_per_round + other.messages_per_round,
            congestion_histogram=_merge_histograms(
                self.congestion_histogram, other.congestion_histogram
            ),
        )
        return merged

    @classmethod
    def merge_sequential(cls, items: Iterable["CongestMetrics"]) -> "CongestMetrics":
        """Fold executions run back to back (generalizes :meth:`merge`)."""
        merged = cls()
        for m in items:
            merged = merged.merge(m)
        return merged

    @classmethod
    def merge_parallel(cls, items: Iterable["CongestMetrics"]) -> "CongestMetrics":
        """Compose executions that run *in parallel* on disjoint networks.

        Rounds compose as a maximum (all shards advance through the
        same global rounds), volumes as sums, congestion as a maximum.
        This is the merge rule both for edge-disjoint clusters inside
        one framework run and for experiment cells merged back from a
        sharded :mod:`repro.runner` execution.
        """
        merged = cls()
        for m in items:
            merged.rounds = max(merged.rounds, m.rounds)
            merged.effective_rounds = max(
                merged.effective_rounds, m.effective_rounds
            )
            merged.total_messages += m.total_messages
            merged.total_bits += m.total_bits
            merged.max_message_bits = max(
                merged.max_message_bits, m.max_message_bits
            )
            merged.max_edge_congestion = max(
                merged.max_edge_congestion, m.max_edge_congestion
            )
            merged.messages_dropped += m.messages_dropped
            merged.messages_duplicated += m.messages_duplicated
            merged.messages_corrupted += m.messages_corrupted
            merged.messages_delayed += m.messages_delayed
            merged.messages_lost_topology += m.messages_lost_topology
            merged.messages_partitioned += m.messages_partitioned
            merged.vertices_crashed += m.vertices_crashed
            merged.vertices_rejoined += m.vertices_rejoined
            # Congestion observations are per (round, edge) pairs;
            # shards are edge-disjoint, so the union is a plain sum
            # even though the round counters compose as a maximum.
            merged.congestion_histogram = _merge_histograms(
                merged.congestion_histogram, m.congestion_histogram
            )
        return merged

    def to_dict(self, include_per_round: bool = False) -> Dict:
        """Plain-data form that survives a process boundary.

        ``repro.runner`` workers ship metrics back to the parent as
        dicts; :meth:`from_dict` rebuilds an equivalent object so the
        merge rules above apply identically in sharded and serial runs.
        """
        data: Dict = {
            "rounds": self.rounds,
            "effective_rounds": self.effective_rounds,
            "total_messages": self.total_messages,
            "total_bits": self.total_bits,
            "max_message_bits": self.max_message_bits,
            "max_edge_congestion": self.max_edge_congestion,
            "messages_dropped": self.messages_dropped,
            "messages_duplicated": self.messages_duplicated,
            "messages_corrupted": self.messages_corrupted,
            "messages_delayed": self.messages_delayed,
            "messages_lost_topology": self.messages_lost_topology,
            "messages_partitioned": self.messages_partitioned,
            "vertices_crashed": self.vertices_crashed,
            "vertices_rejoined": self.vertices_rejoined,
            # String keys so the payload survives a JSON round trip
            # unchanged (from_dict normalizes back to ints).
            "congestion_histogram": {
                str(k): v for k, v in sorted(self.congestion_histogram.items())
            },
        }
        if include_per_round:
            data["messages_per_round"] = list(self.messages_per_round)
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "CongestMetrics":
        return cls(
            rounds=data.get("rounds", 0),
            effective_rounds=data.get("effective_rounds", 0),
            total_messages=data.get("total_messages", 0),
            total_bits=data.get("total_bits", 0),
            max_message_bits=data.get("max_message_bits", 0),
            max_edge_congestion=data.get("max_edge_congestion", 0),
            messages_dropped=data.get("messages_dropped", 0),
            messages_duplicated=data.get("messages_duplicated", 0),
            messages_corrupted=data.get("messages_corrupted", 0),
            messages_delayed=data.get("messages_delayed", 0),
            messages_lost_topology=data.get("messages_lost_topology", 0),
            messages_partitioned=data.get("messages_partitioned", 0),
            vertices_crashed=data.get("vertices_crashed", 0),
            vertices_rejoined=data.get("vertices_rejoined", 0),
            messages_per_round=list(data.get("messages_per_round", [])),
            congestion_histogram={
                int(k): v
                for k, v in data.get("congestion_histogram", {}).items()
            },
        )

    def congestion_summary(self) -> Dict[str, Any]:
        """The per-edge congestion distribution in reporting form.

        ``observations`` counts (round, active directed edge) pairs;
        the percentiles are nearest-rank over the exact histogram, so
        ``max`` always equals ``max_edge_congestion``.
        """
        histogram = self.congestion_histogram
        return {
            "observations": sum(histogram.values()),
            "p50": _histogram_percentile(histogram, 0.50),
            "p95": _histogram_percentile(histogram, 0.95),
            "max": max(histogram, default=0),
            "histogram": {k: histogram[k] for k in sorted(histogram)},
        }

    def publish_telemetry(self, registry) -> None:
        """Fold this execution into a telemetry registry.

        Called by both engines at the end of :meth:`run` when telemetry
        is enabled; everything recorded here is a pure function of the
        simulated execution, so the fast and reference engines publish
        identical values.
        """
        registry.count("congest.simulations", 1)
        registry.count("congest.rounds", self.rounds)
        registry.count("congest.effective_rounds", self.effective_rounds)
        registry.count("congest.messages", self.total_messages)
        registry.count("congest.bits", self.total_bits)
        histogram = registry.histogram("congest.edge_congestion")
        for multiplicity, edges in self.congestion_histogram.items():
            histogram.observe(multiplicity, edges)

    def fault_summary(self) -> Dict[str, int]:
        """The fault counters as a dict (all zero when fault-free)."""
        return {
            "messages_dropped": self.messages_dropped,
            "messages_duplicated": self.messages_duplicated,
            "messages_corrupted": self.messages_corrupted,
            "messages_delayed": self.messages_delayed,
            "messages_lost_topology": self.messages_lost_topology,
            "messages_partitioned": self.messages_partitioned,
            "vertices_crashed": self.vertices_crashed,
            "vertices_rejoined": self.vertices_rejoined,
        }

    @property
    def faulted(self) -> bool:
        """Did any injected fault actually fire during this execution?"""
        return any(self.fault_summary().values())

    def summary(self) -> Dict[str, int]:
        """Compact dict for reporting tables.

        Fault counters appear only when at least one fault fired, so
        fault-free summaries keep their historical shape.
        """
        data = {
            "rounds": self.rounds,
            "effective_rounds": self.effective_rounds,
            "total_messages": self.total_messages,
            "total_bits": self.total_bits,
            "max_message_bits": self.max_message_bits,
            "max_edge_congestion": self.max_edge_congestion,
        }
        if self.faulted:
            data.update(self.fault_summary())
        return data
