"""CONGEST-model simulator.

This package simulates the synchronous message-passing model the paper
works in: vertices host processors, computation proceeds in rounds, and
every message is charged against an ``O(log n)``-bit budget.  The
simulator both *executes* the distributed algorithms of the library and
*accounts* for them (rounds, messages, bits, per-edge congestion), which
is what turns the paper's round-complexity theorems into measurable
experiments.
"""

from .message import MessageBudget, message_bits
from .metrics import CongestMetrics
from .algorithm import VertexAlgorithm, VertexContext
from .faults import (
    CorruptedPayload,
    EdgeWindow,
    FaultInjector,
    FaultPlan,
    LinkFailure,
    PartitionWindow,
    active_fault_plan,
    use_faults,
)
from .trace import RoundTrace, TraceRecorder, TraceSession
from .checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    SimulationCheckpoint,
    graph_fingerprint,
    resume_simulation,
)
from .network import (
    CongestSimulator,
    SimulationResult,
    default_engine,
    set_default_engine,
    use_engine,
)

__all__ = [
    "MessageBudget",
    "message_bits",
    "CongestMetrics",
    "VertexAlgorithm",
    "VertexContext",
    "CongestSimulator",
    "SimulationResult",
    "RoundTrace",
    "TraceRecorder",
    "TraceSession",
    "CorruptedPayload",
    "EdgeWindow",
    "FaultInjector",
    "FaultPlan",
    "LinkFailure",
    "PartitionWindow",
    "active_fault_plan",
    "use_faults",
    "CHECKPOINT_SCHEMA_VERSION",
    "SimulationCheckpoint",
    "graph_fingerprint",
    "resume_simulation",
    "default_engine",
    "set_default_engine",
    "use_engine",
]
