"""The synchronous CONGEST network simulator.

The simulator is *event-driven but round-faithful*: vertices that
declare themselves idle (no messages to send, nothing to do until a
known future round) are skipped, and stretches of rounds in which no
vertex acts and no message is in flight are fast-forwarded — while the
round counters advance exactly as they would in a real synchronous
execution.  This keeps long random-walk phases (tens of thousands of
rounds with a handful of live tokens) affordable without distorting
any reported complexity metric.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set

from ..errors import ProtocolError
from ..graph import Graph
from ..rng import ensure_rng
from .algorithm import VertexAlgorithm, VertexContext
from .message import MessageBudget
from .metrics import CongestMetrics


@dataclass
class SimulationResult:
    """Everything a caller needs from one simulated execution."""

    outputs: Dict[Any, Any]
    metrics: CongestMetrics
    halted: bool

    def output_of(self, vertex: Any) -> Any:
        return self.outputs[vertex]


class CongestSimulator:
    """Drives one :class:`VertexAlgorithm` per vertex in lock step.

    Parameters
    ----------
    graph:
        The network topology.  Vertex IDs should be sortable (the
        generators produce integers); the simulator processes vertices
        in sorted order each round for determinism.
    algorithm_factory:
        Callable producing a fresh :class:`VertexAlgorithm` per vertex.
        It receives the vertex ID so that algorithms can special-case
        designated vertices (e.g. a cluster leader).
    budget:
        Per-message bit budget; defaults to ``MessageBudget(graph.n)``.
    strict:
        When true, enforce the textbook model: at most ``capacity``
        messages per directed edge per round (violations raise
        :class:`ProtocolError`).  When false (the default), extra
        messages are allowed but charged to ``effective_rounds`` so the
        reported complexity stays faithful.
    capacity:
        Directed per-edge message capacity per round in strict mode.
    seed:
        Root seed; each vertex receives an independent derived RNG, so
        runs are reproducible regardless of scheduling details.

    Scheduling contract (see :class:`VertexAlgorithm`): a vertex is
    stepped in every round until it reports ``is_idle() == True`` after
    a step; an idle vertex is re-awakened by an incoming message or at
    the round it returned from ``next_wakeup()``.
    """

    def __init__(
        self,
        graph: Graph,
        algorithm_factory: Callable[[Any], VertexAlgorithm],
        budget: Optional[MessageBudget] = None,
        strict: bool = False,
        capacity: int = 1,
        seed=None,
    ) -> None:
        self.graph = graph
        self.budget = budget if budget is not None else MessageBudget(graph.n)
        self.strict = strict
        self.capacity = capacity
        self.metrics = CongestMetrics()

        root_rng = ensure_rng(seed)
        self._order = sorted(graph.vertices(), key=repr)
        self._algorithms: Dict[Any, VertexAlgorithm] = {}
        self._contexts: Dict[Any, VertexContext] = {}
        for v in self._order:
            neighbors = sorted(graph.neighbors(v), key=repr)
            weights = {u: graph.weight(v, u) for u in neighbors}
            ctx = VertexContext(
                vertex=v,
                neighbors=neighbors,
                edge_weights=weights,
                n=graph.n,
                rng=random.Random(root_rng.getrandbits(64)),
            )
            self._algorithms[v] = algorithm_factory(v)
            self._contexts[v] = ctx
        self._pending: Dict[Any, Dict[Any, List[Any]]] = {
            v: {} for v in self._order
        }
        self._has_pending: Set[Any] = set()
        self._round = 0
        # Vertices that must step next round regardless of messages.
        self._runnable: Set[Any] = set(self._order)
        # Scheduled wakeups for idle vertices: vertex -> round number.
        self._wakeups: Dict[Any, int] = {}

    # ------------------------------------------------------------------
    def run(self, max_rounds: int = 10_000) -> SimulationResult:
        """Execute until all vertices halt or ``max_rounds`` elapse."""
        for v in self._order:
            self._algorithms[v].initialize(self._contexts[v])
        self._collect_and_deliver()
        self._runnable = {
            v for v in self._order if not self._contexts[v].halted
        }

        while self._round < max_rounds and not self._all_halted():
            next_round = self._round + 1
            due = self._due_vertices(next_round)
            if not due:
                # Fast-forward to the earliest scheduled wakeup.
                future = [
                    w
                    for v, w in self._wakeups.items()
                    if not self._contexts[v].halted
                ]
                if not future:
                    break  # nothing will ever happen again
                target = min(future)
                if target > max_rounds:
                    self._credit_skipped(max_rounds - self._round)
                    self._round = max_rounds
                    break
                self._credit_skipped(target - next_round)
                next_round = target
                due = self._due_vertices(next_round)
            self._round = next_round
            stepped: List[Any] = []
            for v in due:
                ctx = self._contexts[v]
                if ctx.halted:
                    continue
                ctx.round_number = self._round
                inbox = self._pending[v]
                self._pending[v] = {}
                self._has_pending.discard(v)
                self._algorithms[v].step(ctx, inbox)
                stepped.append(v)
            self._collect_and_deliver()
            self._reschedule(stepped)

        outputs = {v: self._contexts[v].output for v in self._order}
        return SimulationResult(
            outputs=outputs, metrics=self.metrics, halted=self._all_halted()
        )

    # ------------------------------------------------------------------
    def _due_vertices(self, round_number: int) -> List[Any]:
        due = set(self._runnable) | self._has_pending
        for v, wake in self._wakeups.items():
            if wake <= round_number:
                due.add(v)
        return sorted(
            (v for v in due if not self._contexts[v].halted), key=repr
        )

    def _reschedule(self, stepped: List[Any]) -> None:
        for v in stepped:
            ctx = self._contexts[v]
            self._runnable.discard(v)
            self._wakeups.pop(v, None)
            if ctx.halted:
                continue
            algo = self._algorithms[v]
            if algo.is_idle(ctx):
                wake = algo.next_wakeup(ctx)
                if wake is not None and wake > self._round:
                    self._wakeups[v] = wake
            else:
                self._runnable.add(v)

    def _credit_skipped(self, rounds: int) -> None:
        """Account fast-forwarded quiescent rounds (no messages)."""
        if rounds <= 0:
            return
        self.metrics.rounds += rounds
        self.metrics.effective_rounds += rounds

    def _all_halted(self) -> bool:
        return all(ctx.halted for ctx in self._contexts.values())

    def _collect_and_deliver(self) -> None:
        """Move all outboxes into next round's inboxes, with accounting."""
        per_edge: Dict = {}
        messages = 0
        bits = 0
        for v in self._order:
            ctx = self._contexts[v]
            outbox = ctx._drain_outbox()
            for neighbor, payload in outbox:
                size = self.budget.check(
                    payload, detail=f"from {v!r} to {neighbor!r}"
                )
                self.metrics.record_message(size)
                edge = (v, neighbor)
                count = per_edge.get(edge, 0) + 1
                per_edge[edge] = count
                if self.strict and count > self.capacity:
                    raise ProtocolError(
                        f"edge {edge!r} carried {count} messages in one "
                        f"round (capacity {self.capacity})"
                    )
                messages += 1
                bits += size
                self._pending[neighbor].setdefault(v, []).append(payload)
                self._has_pending.add(neighbor)
        self.metrics.record_round(per_edge, messages, bits)
