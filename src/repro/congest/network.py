"""The synchronous CONGEST network simulator (engine facade).

The simulator is *event-driven but round-faithful*: vertices that
declare themselves idle (no messages to send, nothing to do until a
known future round) are skipped, and stretches of rounds in which no
vertex acts and no message is in flight are fast-forwarded — while the
round counters advance exactly as they would in a real synchronous
execution.  This keeps long random-walk phases (tens of thousands of
rounds with a handful of live tokens) affordable without distorting
any reported complexity metric.

Two engines implement these semantics:

* ``"fast"`` (the default) — :class:`repro.congest.engine.FastEngine`,
  with interned integer vertex IDs, a wakeup min-heap, and active-set
  message delivery;
* ``"reference"`` — :class:`repro.congest.reference.ReferenceEngine`,
  the original dict-based implementation kept as the obviously-correct
  slow path.

The two are held equivalent (identical outputs, metrics, and traces on
seeded runs) by the differential harness in
``tests/test_engine_equivalence.py``.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Optional

from ..errors import CrashedVertexError
from ..graph import Graph
from .algorithm import VertexAlgorithm
from .faults import FaultPlan, active_fault_plan
from .message import MessageBudget
from .metrics import CongestMetrics
from .trace import TraceRecorder, active_session


@dataclass
class SimulationResult:
    """Everything a caller needs from one simulated execution."""

    outputs: Dict[Any, Any]
    metrics: CongestMetrics
    halted: bool
    #: Vertices fail-stopped by an injected fault plan during the run.
    crashed: FrozenSet[Any] = field(default_factory=frozenset)

    def output_of(self, vertex: Any) -> Any:
        """The vertex's output, refusing to read a crashed vertex.

        Crashed vertices report ``None`` in :attr:`outputs`; reading
        one through this accessor raises
        :class:`~repro.errors.CrashedVertexError` so that resilience
        experiments cannot silently treat a dead vertex's ``None`` as
        a legitimate answer.
        """
        if vertex in self.crashed:
            raise CrashedVertexError(
                f"vertex {vertex!r} crashed during the run; "
                "its output is not valid"
            )
        return self.outputs[vertex]


_ENGINES = ("fast", "reference")
_default_engine = "fast"


def default_engine() -> str:
    """Name of the engine used when ``CongestSimulator`` gets none."""
    return _default_engine


def set_default_engine(name: str) -> None:
    """Set the process-wide default engine (``"fast"`` or ``"reference"``)."""
    global _default_engine
    if name not in _ENGINES:
        raise ValueError(f"unknown engine {name!r}; expected one of {_ENGINES}")
    _default_engine = name


@contextmanager
def use_engine(name: str):
    """Run a block with a different default engine.

    The differential test harness uses this to push whole high-level
    pipelines (framework runs, routing phases) through the reference
    engine without threading an argument through every call signature.
    """
    previous = _default_engine
    set_default_engine(name)
    try:
        yield
    finally:
        set_default_engine(previous)


class CongestSimulator:
    """Drives one :class:`VertexAlgorithm` per vertex in lock step.

    Parameters
    ----------
    graph:
        The network topology.  Vertices are interned into a canonical
        order at construction (numeric for the integer IDs the
        generators produce); the simulator processes vertices in that
        order each round for determinism.
    algorithm_factory:
        Callable producing a fresh :class:`VertexAlgorithm` per vertex.
        It receives the vertex ID so that algorithms can special-case
        designated vertices (e.g. a cluster leader).
    budget:
        Per-message bit budget; defaults to ``MessageBudget(graph.n)``.
    strict:
        When true, enforce the textbook model: at most ``capacity``
        messages per directed edge per round (violations raise
        :class:`ProtocolError`).  When false (the default), extra
        messages are allowed but charged to ``effective_rounds`` so the
        reported complexity stays faithful.
    capacity:
        Directed per-edge message capacity per round in strict mode.
    seed:
        Root seed; each vertex receives an independent derived RNG
        (assigned in canonical vertex order), so runs are reproducible
        regardless of scheduling details — and identical across the two
        engines.
    engine:
        ``"fast"`` or ``"reference"``; ``None`` uses
        :func:`default_engine`.
    trace:
        Optional :class:`TraceRecorder` receiving one structured record
        per executed round.  When ``None`` and a
        :class:`~repro.congest.trace.TraceSession` is active, a fresh
        recorder is attached automatically.
    faults:
        Optional :class:`~repro.congest.faults.FaultPlan` describing
        injected message/link/vertex faults.  When ``None`` and a
        :func:`~repro.congest.faults.use_faults` region is active, the
        region's plan applies.  Empty plans compile to nothing, so the
        fault-free hot path is untouched.

    Scheduling contract (see :class:`VertexAlgorithm`): a vertex is
    stepped in every round until it reports ``is_idle() == True`` after
    a step; an idle vertex is re-awakened by an incoming message or at
    the round it returned from ``next_wakeup()``.
    """

    def __init__(
        self,
        graph: Graph,
        algorithm_factory: Callable[[Any], VertexAlgorithm],
        budget: Optional[MessageBudget] = None,
        strict: bool = False,
        capacity: int = 1,
        seed=None,
        engine: Optional[str] = None,
        trace: Optional[TraceRecorder] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        name = engine if engine is not None else _default_engine
        if name not in _ENGINES:
            raise ValueError(
                f"unknown engine {name!r}; expected one of {_ENGINES}"
            )
        if trace is None:
            session = active_session()
            if session is not None:
                trace = session.new_recorder(f"{name}:n={graph.n}")
        if faults is None:
            faults = active_fault_plan()
        injector = faults.compile() if faults is not None else None
        if name == "fast":
            from .engine import FastEngine as engine_cls
        else:
            from .reference import ReferenceEngine as engine_cls
        self._engine = engine_cls(
            graph,
            algorithm_factory,
            budget=budget,
            strict=strict,
            capacity=capacity,
            seed=seed,
            trace=trace,
            faults=injector,
        )

    # -- delegation ------------------------------------------------------
    @property
    def engine_name(self) -> str:
        return self._engine.name

    @property
    def graph(self) -> Graph:
        return self._engine.graph

    @property
    def budget(self) -> MessageBudget:
        return self._engine.budget

    @property
    def strict(self) -> bool:
        return self._engine.strict

    @property
    def capacity(self) -> int:
        return self._engine.capacity

    @property
    def metrics(self) -> CongestMetrics:
        return self._engine.metrics

    @property
    def trace(self) -> Optional[TraceRecorder]:
        return self._engine.trace

    @property
    def faults(self):
        """The compiled :class:`FaultInjector`, or ``None`` when fault-free."""
        return self._engine.faults

    @property
    def rounds_executed(self) -> int:
        """Rounds actually executed; always equals ``metrics.rounds``."""
        return self._engine.rounds_executed

    def run(
        self,
        max_rounds: int = 10_000,
        checkpoint_every: Optional[int] = None,
        on_checkpoint: Optional[Callable[..., None]] = None,
    ) -> SimulationResult:
        """Execute until all vertices halt or ``max_rounds`` elapse.

        When ``checkpoint_every`` and ``on_checkpoint`` are both given,
        a :class:`~repro.congest.checkpoint.SimulationCheckpoint` is
        captured after every ``checkpoint_every``-th executed round and
        passed to the callback (which may, e.g., ``save()`` it to disk).
        Resume one later with
        :func:`~repro.congest.checkpoint.resume_simulation`.
        """
        return self._engine.run(
            max_rounds,
            checkpoint_every=checkpoint_every,
            on_checkpoint=on_checkpoint,
        )

    def checkpoint(self):
        """Capture the simulation state at the current round boundary.

        Valid before :meth:`run` (round 0), after it returns, and from
        inside an ``on_checkpoint`` callback.  Returns a
        :class:`~repro.congest.checkpoint.SimulationCheckpoint`.
        """
        return self._engine.capture_checkpoint()
