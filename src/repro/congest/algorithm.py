"""Vertex-algorithm API for the CONGEST simulator.

A distributed algorithm is written once per *vertex*: subclass
:class:`VertexAlgorithm`, read the inbox, call :meth:`VertexContext.send`
on the context, and eventually :meth:`VertexContext.halt` with an
output.  The simulator instantiates one algorithm object per vertex and
drives them in synchronized rounds.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Sequence

from ..errors import ProtocolError


class VertexContext:
    """Per-vertex view of the network, handed to the algorithm each round.

    The context exposes exactly what a CONGEST processor knows: its own
    ID, its incident edges (neighbor IDs and weights), the global
    parameter ``n`` (standard in CONGEST), the current round number, and
    a private random generator.  It deliberately exposes nothing else —
    algorithms that need more must communicate for it.
    """

    def __init__(
        self,
        vertex: Any,
        neighbors: Sequence[Any],
        edge_weights: Dict[Any, float],
        n: int,
        rng: Optional[random.Random] = None,
        rng_seed: Optional[int] = None,
    ) -> None:
        self.vertex = vertex
        self.neighbors = tuple(neighbors)
        self.edge_weights = (
            edge_weights if type(edge_weights) is dict else dict(edge_weights)
        )
        self.n = n
        self._rng = rng
        self._rng_seed = rng_seed
        self.round_number = 0
        self._outbox: List = []
        self._halted = False
        self._output: Any = None

    @property
    def rng(self) -> random.Random:
        """This vertex's private generator, constructed on first use.

        Lazy construction matters: a simulation seeds one independent
        stream per vertex, but most algorithms never draw from most of
        them, and ``random.Random()`` instantiation is measurable at
        fleet scale.  The stream is fixed by the seed assigned at
        simulator construction, so laziness cannot change any outcome.
        """
        r = self._rng
        if r is None:
            r = self._rng = random.Random(self._rng_seed)
        return r

    # -- communication -------------------------------------------------
    def send(self, neighbor: Any, payload: Any) -> None:
        """Queue ``payload`` for delivery to ``neighbor`` next round."""
        if self._halted:
            raise ProtocolError(f"vertex {self.vertex!r} sent after halting")
        if neighbor not in self.edge_weights:
            raise ProtocolError(
                f"vertex {self.vertex!r} tried to send to non-neighbor "
                f"{neighbor!r}"
            )
        self._outbox.append((neighbor, payload))

    def broadcast(self, payload: Any) -> None:
        """Send the same payload to every neighbor."""
        for neighbor in self.neighbors:
            self.send(neighbor, payload)

    # -- termination ----------------------------------------------------
    def halt(self, output: Any = None) -> None:
        """Stop participating and record this vertex's final output."""
        self._halted = True
        self._output = output

    @property
    def halted(self) -> bool:
        return self._halted

    @property
    def output(self) -> Any:
        return self._output

    def degree(self) -> int:
        return len(self.neighbors)

    # -- simulator internals ---------------------------------------------
    def _drain_outbox(self) -> List:
        out, self._outbox = self._outbox, []
        return out


class VertexAlgorithm:
    """Base class for CONGEST vertex programs.

    Subclasses override :meth:`initialize` (run once, before round 1;
    may already send) and :meth:`step` (run every round with the
    messages received in the previous round).  Vertices halt
    individually; the simulation ends when every vertex has halted or
    the round limit is hit.
    """

    def initialize(self, ctx: VertexContext) -> None:
        """One-time setup; may send round-0 messages."""

    def step(self, ctx: VertexContext, inbox: Dict[Any, List[Any]]) -> None:
        """Process one synchronous round.

        ``inbox`` maps each neighbor to the list of payloads it sent
        last round (absent neighbors sent nothing).
        """
        raise NotImplementedError

    # -- scheduling hints (optional) -----------------------------------
    def is_idle(self, ctx: VertexContext) -> bool:
        """May the simulator skip this vertex until something happens?

        Consulted after each step.  Returning True promises that the
        vertex has nothing to send until either a message arrives or
        the round returned by :meth:`next_wakeup`.  The default (False)
        keeps the textbook behavior of stepping every round.  This is a
        pure simulation-efficiency hint: round counters advance exactly
        as if the vertex had been stepped and done nothing.
        """
        return False

    def next_wakeup(self, ctx: VertexContext) -> Optional[int]:
        """Earliest future round at which an idle vertex must step.

        Only consulted when :meth:`is_idle` returned True.  ``None``
        means the vertex only needs to wake on message arrival.
        """
        return None
