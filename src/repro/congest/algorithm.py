"""Vertex-algorithm API for the CONGEST simulator.

A distributed algorithm is written once per *vertex*: subclass
:class:`VertexAlgorithm`, read the inbox, call :meth:`VertexContext.send`
on the context, and eventually :meth:`VertexContext.halt` with an
output.  The simulator instantiates one algorithm object per vertex and
drives them in synchronized rounds.
"""

from __future__ import annotations

import os
import random
from typing import Any, Dict, List, Optional, Sequence

from ..errors import ProtocolError


class VertexContext:
    """Per-vertex view of the network, handed to the algorithm each round.

    The context exposes exactly what a CONGEST processor knows: its own
    ID, its incident edges (neighbor IDs and weights), the global
    parameter ``n`` (standard in CONGEST), the current round number, and
    a private random generator.  It deliberately exposes nothing else —
    algorithms that need more must communicate for it.
    """

    def __init__(
        self,
        vertex: Any,
        neighbors: Sequence[Any],
        edge_weights: Dict[Any, float],
        n: int,
        rng: Optional[random.Random] = None,
        rng_seed: Optional[int] = None,
    ) -> None:
        self.vertex = vertex
        self.neighbors = tuple(neighbors)
        self.edge_weights = (
            edge_weights if type(edge_weights) is dict else dict(edge_weights)
        )
        self.n = n
        self._rng = rng
        self._rng_seed = rng_seed
        self.round_number = 0
        self._outbox: List = []
        self._halted = False
        self._output: Any = None

    @property
    def rng(self) -> random.Random:
        """This vertex's private generator, constructed on first use.

        Lazy construction matters: a simulation seeds one independent
        stream per vertex, but most algorithms never draw from most of
        them, and ``random.Random()`` instantiation is measurable at
        fleet scale.  The stream is fixed by the seed assigned at
        simulator construction, so laziness cannot change any outcome.
        """
        r = self._rng
        if r is None:
            r = self._rng = random.Random(self._rng_seed)
        return r

    # -- communication -------------------------------------------------
    def send(self, neighbor: Any, payload: Any) -> None:
        """Queue ``payload`` for delivery to ``neighbor`` next round."""
        if self._halted:
            raise ProtocolError(f"vertex {self.vertex!r} sent after halting")
        if neighbor not in self.edge_weights:
            raise ProtocolError(
                f"vertex {self.vertex!r} tried to send to non-neighbor "
                f"{neighbor!r}"
            )
        self._outbox.append((neighbor, payload))

    def broadcast(self, payload: Any) -> None:
        """Send the same payload to every neighbor."""
        for neighbor in self.neighbors:
            self.send(neighbor, payload)

    # -- termination ----------------------------------------------------
    def halt(self, output: Any = None) -> None:
        """Stop participating and record this vertex's final output."""
        self._halted = True
        self._output = output

    @property
    def halted(self) -> bool:
        return self._halted

    @property
    def output(self) -> Any:
        return self._output

    def degree(self) -> int:
        return len(self.neighbors)

    # -- simulator internals ---------------------------------------------
    def _drain_outbox(self) -> List:
        out, self._outbox = self._outbox, []
        return out


class VertexAlgorithm:
    """Base class for CONGEST vertex programs.

    Subclasses override :meth:`initialize` (run once, before round 1;
    may already send) and :meth:`step` (run every round with the
    messages received in the previous round).  Vertices halt
    individually; the simulation ends when every vertex has halted or
    the round limit is hit.
    """

    def initialize(self, ctx: VertexContext) -> None:
        """One-time setup; may send round-0 messages."""

    def step(self, ctx: VertexContext, inbox: Dict[Any, List[Any]]) -> None:
        """Process one synchronous round.

        ``inbox`` maps each neighbor to the list of payloads it sent
        last round (absent neighbors sent nothing).
        """
        raise NotImplementedError

    # -- scheduling hints (optional) -----------------------------------
    def is_idle(self, ctx: VertexContext) -> bool:
        """May the simulator skip this vertex until something happens?

        Consulted after each step.  Returning True promises that the
        vertex has nothing to send until either a message arrives or
        the round returned by :meth:`next_wakeup`.  The default (False)
        keeps the textbook behavior of stepping every round.  This is a
        pure simulation-efficiency hint: round counters advance exactly
        as if the vertex had been stepped and done nothing.
        """
        return False

    def next_wakeup(self, ctx: VertexContext) -> Optional[int]:
        """Earliest future round at which an idle vertex must step.

        Only consulted when :meth:`is_idle` returned True.  ``None``
        means the vertex only needs to wake on message arrival.
        """
        return None


# ---------------------------------------------------------------------------
# Columnar round-kernel registry
# ---------------------------------------------------------------------------
#
# An algorithm class *declares a vectorizable step* by registering a
# :class:`RoundKernel` subclass against itself.  The fast engine then
# batches that algorithm's per-round work into NumPy columns (one entry
# per vertex) whenever the run qualifies — see
# :func:`repro.congest.kernels.maybe_build_kernel` for the activation
# rules — and falls back to the ordinary scalar ``step`` loop
# otherwise.  Kernels are a pure performance feature: outputs, metrics,
# traces, and per-vertex RNG streams are bit-identical either way
# (``tests/test_kernels.py`` is the differential gate).

#: Minimum vertex count at which a registered kernel engages; below it
#: the columnar setup costs more than it saves.  A pure performance
#: knob (``tests/test_kernels.py`` monkeypatches it to 1 to vectorize
#: tiny graphs).  The ``REPRO_KERNEL_THRESHOLD`` environment variable
#: overrides it, e.g. for CI smoke runs through spawned workers.
KERNEL_THRESHOLD = 64

#: Algorithm class -> RoundKernel subclass.
_KERNEL_REGISTRY: Dict[type, type] = {}

_kernels_enabled = os.environ.get("REPRO_NO_KERNELS", "").lower() not in (
    "1",
    "true",
    "yes",
)


def register_kernel(algorithm_cls: type):
    """Class decorator registering a :class:`RoundKernel` for
    ``algorithm_cls`` — the declaration that the algorithm's step is
    vectorizable."""

    def decorate(kernel_cls: type) -> type:
        kernel_cls.algorithm_cls = algorithm_cls
        _KERNEL_REGISTRY[algorithm_cls] = kernel_cls
        return kernel_cls

    return decorate


def kernel_class_for(algorithm_cls: type) -> Optional[type]:
    """The registered kernel for ``algorithm_cls``, or ``None``."""
    return _KERNEL_REGISTRY.get(algorithm_cls)


def kernels_enabled() -> bool:
    """Whether columnar kernels may engage in this process."""
    return _kernels_enabled


def set_kernels_enabled(flag: bool) -> None:
    """Enable or disable kernels process-wide.

    Mirrored into the ``REPRO_NO_KERNELS`` environment variable so that
    spawned benchmark workers inherit the choice (the CLI's
    ``repro bench --no-kernels`` escape hatch relies on this).
    """
    global _kernels_enabled
    _kernels_enabled = bool(flag)
    if flag:
        os.environ.pop("REPRO_NO_KERNELS", None)
    else:
        os.environ["REPRO_NO_KERNELS"] = "1"


def kernel_threshold() -> int:
    """The active engagement threshold (env override, else the global)."""
    env = os.environ.get("REPRO_KERNEL_THRESHOLD")
    if env:
        try:
            return int(env)
        except ValueError:
            pass
    return KERNEL_THRESHOLD


_batch_delivery_enabled = os.environ.get(
    "REPRO_NO_BATCH_DELIVERY", ""
).lower() not in ("1", "true", "yes")


def batch_delivery_enabled() -> bool:
    """Whether kernels that emit send plans may deliver them batched."""
    return _batch_delivery_enabled


def set_batch_delivery_enabled(flag: bool) -> None:
    """Enable or disable batched delivery process-wide.

    Mirrored into the ``REPRO_NO_BATCH_DELIVERY`` environment variable
    so spawned benchmark workers inherit the choice (the CLI's
    ``repro bench --no-batch-delivery`` escape hatch relies on this).
    Only affects kernels whose class sets ``emits_send_plans``; scalar
    runs and non-plan kernels are untouched.
    """
    global _batch_delivery_enabled
    _batch_delivery_enabled = bool(flag)
    if flag:
        os.environ.pop("REPRO_NO_BATCH_DELIVERY", None)
    else:
        os.environ["REPRO_NO_BATCH_DELIVERY"] = "1"


class RoundKernel:
    """Contract for a columnar (vectorized) round executor.

    One kernel instance drives *all* vertices of its algorithm class in
    a simulation; the engine calls it instead of the per-vertex
    ``initialize``/``step`` loop.  Implementations must preserve the
    scalar path bit-for-bit: same outbox contents (same payload values,
    one shared payload object per broadcast, neighbors in canonical
    order), same ``halt`` outputs, same per-vertex RNG word
    consumption.  See ``docs/kernels.md`` for the full contract and
    :mod:`repro.congest.kernels` for the shared runtime.
    """

    #: Set by :func:`register_kernel`.
    algorithm_cls: Optional[type] = None

    #: Capability flag: ``True`` iff the kernel routes every send
    #: through the :class:`repro.congest.kernels.KernelBase` emission
    #: helpers (``_emit_broadcast``/``_emit_send``) rather than writing
    #: per-context outboxes directly.  Only such kernels qualify for
    #: the engine's batched delivery path; see "Batched delivery" in
    #: ``docs/kernels.md``.
    emits_send_plans: bool = False

    @classmethod
    def supports(cls, engine) -> bool:
        """May this kernel drive ``engine``'s population?  Called after
        the generic activation checks; refuse anything the columnar
        encoding cannot represent (non-integer vertex labels,
        non-uniform parameters, ...)."""
        raise NotImplementedError

    def __init__(self, engine, resume: bool = False) -> None:
        raise NotImplementedError

    def initialize(self, live: Sequence[int]) -> None:
        """Vectorized twin of the per-vertex ``initialize`` pass."""
        raise NotImplementedError

    def step_round(self, due: Sequence[int], round_number: int) -> None:
        """Vectorized twin of one round's per-vertex ``step`` loop.

        ``due`` holds the engine indices of live, scheduled vertices
        (crashed vertices already filtered).  The kernel must consume
        their pending inboxes, queue outbound messages on the contexts,
        and set ``_halted``/``_output`` for vertices that halt.
        """
        raise NotImplementedError

    def sync(self) -> None:
        """Write columnar state back into the scalar objects.

        Called at observation points (checkpoint capture, end of run)
        so that pickled algorithm/context objects — including
        materialized per-vertex ``random.Random`` states — are exactly
        what the scalar path would have produced.  Must be idempotent.
        """
        raise NotImplementedError
