"""The reference CONGEST engine: simple, dict-based, obviously correct.

This is the original simulator core, kept as the slow path that the
fast engine (:mod:`repro.congest.engine`) is differentially tested
against: ``tests/test_engine_equivalence.py`` runs both engines over
seeded random graphs and algorithm families and asserts identical
outputs, metrics, and traces.  Prefer clarity over speed here — every
round it re-derives the due set by scanning all wakeups and drains the
outboxes of every vertex.

Shared with the fast engine (so the two stay comparable):

* per-vertex state construction (canonical vertex order, derived RNG
  streams) via :func:`repro.congest.engine.build_vertex_state`;
* the accounting policy — traffic is recorded against the round it is
  delivered into, so ``metrics.rounds`` equals rounds executed.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..errors import MessageTooLargeError, ProtocolError
from ..graph import Graph, canonical_vertex_order
from .algorithm import VertexAlgorithm, VertexContext
from .engine import _NO_TRAFFIC, build_vertex_state
from .message import MessageBudget, message_bits
from .metrics import CongestMetrics
from .trace import TraceRecorder


class ReferenceEngine:
    """Dict-based scheduler; see the module docstring."""

    name = "reference"

    def __init__(
        self,
        graph: Graph,
        algorithm_factory: Callable[[Any], VertexAlgorithm],
        budget: Optional[MessageBudget] = None,
        strict: bool = False,
        capacity: int = 1,
        seed=None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.graph = graph
        self.budget = budget if budget is not None else MessageBudget(graph.n)
        self.strict = strict
        self.capacity = capacity
        self.metrics = CongestMetrics()
        self.trace = trace

        order, contexts, algorithms = build_vertex_state(
            graph, algorithm_factory, seed
        )
        self._order = order
        self._contexts: Dict[Any, VertexContext] = dict(zip(order, contexts))
        self._algorithms: Dict[Any, VertexAlgorithm] = dict(
            zip(order, algorithms)
        )
        self._pending: Dict[Any, Dict[Any, List[Any]]] = {
            v: {} for v in self._order
        }
        self._has_pending: Set[Any] = set()
        self._round = 0
        # Vertices that must step next round regardless of messages.
        self._runnable: Set[Any] = set(self._order)
        # Scheduled wakeups for idle vertices: vertex -> round number.
        self._wakeups: Dict[Any, int] = {}
        # Traffic awaiting delivery at the next executed round.
        self._inflight: Tuple[Dict, int, int] = _NO_TRAFFIC

    # ------------------------------------------------------------------
    @property
    def rounds_executed(self) -> int:
        """Final value of the synchronous round counter."""
        return self._round

    def run(self, max_rounds: int = 10_000):
        """Execute until all vertices halt or ``max_rounds`` elapse."""
        from .network import SimulationResult

        for v in self._order:
            self._algorithms[v].initialize(self._contexts[v])
        self._collect()
        self._runnable = {
            v for v in self._order if not self._contexts[v].halted
        }

        while self._round < max_rounds and not self._all_halted():
            next_round = self._round + 1
            due = self._due_vertices(next_round)
            skipped = 0
            if not due:
                # Fast-forward to the earliest scheduled wakeup.
                future = [
                    w
                    for v, w in self._wakeups.items()
                    if not self._contexts[v].halted
                ]
                if not future:
                    break  # nothing will ever happen again
                target = min(future)
                if target > max_rounds:
                    self.metrics.record_skipped(max_rounds - self._round)
                    self._round = max_rounds
                    break
                skipped = target - next_round
                self.metrics.record_skipped(skipped)
                next_round = target
                due = self._due_vertices(next_round)
            self._round = next_round
            per_edge, messages, bits = self._inflight
            self._inflight = _NO_TRAFFIC
            self.metrics.record_round(per_edge, messages, bits)
            live_before = sum(
                1 for ctx in self._contexts.values() if not ctx.halted
            )
            stepped: List[Any] = []
            for v in due:
                ctx = self._contexts[v]
                if ctx.halted:
                    continue
                ctx.round_number = self._round
                inbox = self._pending[v]
                self._pending[v] = {}
                self._has_pending.discard(v)
                self._algorithms[v].step(ctx, inbox)
                stepped.append(v)
            self._collect()
            self._reschedule(stepped)
            if self.trace is not None:
                live_after = sum(
                    1 for ctx in self._contexts.values() if not ctx.halted
                )
                self.trace.record_round(
                    round_number=self._round,
                    per_edge_counts=per_edge,
                    messages=messages,
                    bits=bits,
                    stepped=len(stepped),
                    idle=live_before - len(stepped),
                    halted=len(self._order) - live_after,
                    skipped_before=skipped,
                )

        outputs = {v: self._contexts[v].output for v in self._order}
        return SimulationResult(
            outputs=outputs, metrics=self.metrics, halted=self._all_halted()
        )

    # ------------------------------------------------------------------
    def _due_vertices(self, round_number: int) -> List[Any]:
        due = set(self._runnable) | self._has_pending
        for v, wake in self._wakeups.items():
            if wake <= round_number:
                due.add(v)
        return canonical_vertex_order(
            v for v in due if not self._contexts[v].halted
        )

    def _reschedule(self, stepped: List[Any]) -> None:
        for v in stepped:
            ctx = self._contexts[v]
            self._runnable.discard(v)
            self._wakeups.pop(v, None)
            if ctx.halted:
                continue
            algo = self._algorithms[v]
            if algo.is_idle(ctx):
                wake = algo.next_wakeup(ctx)
                if wake is not None and wake > self._round:
                    self._wakeups[v] = wake
            else:
                self._runnable.add(v)

    def _all_halted(self) -> bool:
        return all(ctx.halted for ctx in self._contexts.values())

    def _collect(self) -> None:
        """Move all outboxes into the in-flight buffer, with accounting."""
        per_edge: Dict = {}
        messages = 0
        bits = 0
        max_bits = 0
        budget_bits = self.budget.bits
        for v in self._order:
            ctx = self._contexts[v]
            outbox = ctx._drain_outbox()
            for neighbor, payload in outbox:
                size = message_bits(payload)
                if size > budget_bits:
                    raise MessageTooLargeError(
                        size,
                        budget_bits,
                        detail=f"from {v!r} to {neighbor!r}",
                    )
                if size > max_bits:
                    max_bits = size
                edge = (v, neighbor)
                count = per_edge.get(edge, 0) + 1
                per_edge[edge] = count
                if self.strict and count > self.capacity:
                    raise ProtocolError(
                        f"edge {edge!r} carried {count} messages in one "
                        f"round (capacity {self.capacity})"
                    )
                messages += 1
                bits += size
                self._pending[neighbor].setdefault(v, []).append(payload)
                self._has_pending.add(neighbor)
        if max_bits > self.metrics.max_message_bits:
            self.metrics.max_message_bits = max_bits
        self._inflight = (per_edge, messages, bits)
