"""The reference CONGEST engine: simple, dict-based, obviously correct.

This is the original simulator core, kept as the slow path that the
fast engine (:mod:`repro.congest.engine`) is differentially tested
against: ``tests/test_engine_equivalence.py`` runs both engines over
seeded random graphs and algorithm families and asserts identical
outputs, metrics, and traces.  Prefer clarity over speed here — every
round it re-derives the due set by scanning all wakeups and drains the
outboxes of every vertex.

Shared with the fast engine (so the two stay comparable):

* per-vertex state construction (canonical vertex order, derived RNG
  streams) via :func:`repro.congest.engine.build_vertex_state`;
* the accounting policy — traffic is recorded against the round it is
  delivered into, so ``metrics.rounds`` equals rounds executed.
"""

from __future__ import annotations

import pickle
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..errors import CheckpointError, MessageTooLargeError, ProtocolError
from ..graph import Graph, canonical_vertex_order
from .algorithm import VertexAlgorithm, VertexContext
from .checkpoint import (
    PICKLE_PROTOCOL,
    SimulationCheckpoint,
    graph_fingerprint,
    verify_restore_target,
)
from .engine import _NO_TRAFFIC, build_vertex_state
from .faults import (
    CORRUPT,
    DROP,
    DUPLICATE,
    NO_FAULTS,
    FaultInjector,
    pad_fault_counts,
)
from .message import MessageBudget, message_bits
from .metrics import CongestMetrics
from .trace import RoundTrace, TraceRecorder, detail_event_sort_key
from ..obs import registry as _telemetry


class ReferenceEngine:
    """Dict-based scheduler; see the module docstring."""

    name = "reference"

    def __init__(
        self,
        graph: Graph,
        algorithm_factory: Callable[[Any], VertexAlgorithm],
        budget: Optional[MessageBudget] = None,
        strict: bool = False,
        capacity: int = 1,
        seed=None,
        trace: Optional[TraceRecorder] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.graph = graph
        self.budget = budget if budget is not None else MessageBudget(graph.n)
        self.strict = strict
        self.capacity = capacity
        self.metrics = CongestMetrics()
        self.trace = trace
        self.faults = faults
        # Kept for crash-recovery: a rejoining vertex with no local
        # snapshot re-initializes through the same factory.
        self._factory = algorithm_factory

        order, contexts, algorithms = build_vertex_state(
            graph, algorithm_factory, seed
        )
        self._order = order
        # Canonical rank, shared with the fast engine's integer ids, so
        # delayed-delivery ordering is identical across engines.
        self._rank: Dict[Any, int] = {v: i for i, v in enumerate(order)}
        self._contexts: Dict[Any, VertexContext] = dict(zip(order, contexts))
        self._algorithms: Dict[Any, VertexAlgorithm] = dict(
            zip(order, algorithms)
        )
        self._pending: Dict[Any, Dict[Any, List[Any]]] = {
            v: {} for v in self._order
        }
        self._has_pending: Set[Any] = set()
        self._round = 0
        # Vertices that must step next round regardless of messages.
        self._runnable: Set[Any] = set(self._order)
        # Scheduled wakeups for idle vertices: vertex -> round number.
        self._wakeups: Dict[Any, int] = {}
        # Telemetry is sampled once at construction, exactly as the
        # fast engine does, so both publish into the same registry.
        self._registry = (
            _telemetry.current_registry() if _telemetry.enabled() else None
        )
        self._want_bits_hist = trace is not None or self._registry is not None
        # Per-message provenance events (trace schema 5), opt-in via
        # TraceRecorder(detail=True); mirrors the fast engine.
        self._want_detail = trace is not None and getattr(
            trace, "detail", False
        )
        self._inflight_events: List[Dict[str, Any]] = []
        # Traffic awaiting delivery at the next executed round.
        self._inflight: Tuple[Dict, int, int, Dict, Tuple[int, ...]] = (
            _NO_TRAFFIC
        )
        # Payloads the fault channel withheld, keyed by release round
        # (mirrors the fast engine; vertex-keyed for checkpoints).
        self._delay_queue: Dict[int, List[Tuple[int, Any, Any, Any]]] = {}
        # Crash schedule, or None when the plan has no crashes.
        if faults is not None and faults.plan.crashes:
            self._crash_rounds: Optional[Dict[Any, int]] = {
                v: faults.crash_round(v)
                for v in order
                if faults.crash_round(v) is not None
            }
            # Crash-recovery schedule: (rejoin round, vertex), sorted by
            # round with canonical order breaking ties (stable sort over
            # the canonical vertex order), exactly as the fast engine.
            rejoins = [
                (faults.rejoin_round(v), v)
                for v in order
                if faults.rejoin_round(v) is not None
            ]
            rejoins.sort(key=lambda entry: entry[0])
            self._rejoin_queue: List[Tuple[int, Any]] = rejoins
            self._snapshot_interval = faults.checkpoint_interval
        else:
            self._crash_rounds = None
            self._rejoin_queue = []
            self._snapshot_interval = None
        self._crashed: Set[Any] = set()
        # Local crash-recovery snapshots: only vertices still scheduled
        # to rejoin are worth snapshotting.
        self._snapshot_targets: Set[Any] = {v for _, v in self._rejoin_queue}
        self._snapshots: Dict[Any, bytes] = {}
        self._snapshot_rounds: Dict[Any, int] = {}
        # Flipped by run() after the initialization pass; a restored
        # post-init checkpoint carries True, so run() then skips
        # initialization and continues mid-simulation.
        self._initialized = False

    # ------------------------------------------------------------------
    @property
    def rounds_executed(self) -> int:
        """Final value of the synchronous round counter."""
        return self._round

    def run(
        self,
        max_rounds: int = 10_000,
        checkpoint_every: Optional[int] = None,
        on_checkpoint: Optional[Callable[..., None]] = None,
    ):
        """Execute until all vertices halt or ``max_rounds`` elapse.

        ``checkpoint_every`` / ``on_checkpoint`` mirror the fast
        engine: a checkpoint is captured after every
        ``checkpoint_every``-th executed round and passed to the
        callback; a restored engine continues mid-simulation.
        """
        from .network import SimulationResult

        crash_rounds = self._crash_rounds
        if not self._initialized:
            self._initialized = True
            init_crashed = 0
            for v in self._order:
                if crash_rounds is not None:
                    cr = crash_rounds.get(v)
                    if cr is not None and cr <= 0:
                        # Fail-stopped before round 0: never initializes.
                        self._contexts[v]._halted = True
                        self._crashed.add(v)
                        init_crashed += 1
                        continue
                self._algorithms[v].initialize(self._contexts[v])
            if init_crashed:
                self.metrics.record_crashed(init_crashed)
            if self._registry is not None:
                with self._registry.span("congest.collect"):
                    self._collect()
            else:
                self._collect()
            self._runnable = {
                v for v in self._order if not self._contexts[v].halted
            }

        while self._round < max_rounds and (
            not self._all_halted() or self._rejoin_queue
        ):
            next_round = self._round + 1
            if self._delay_queue:
                self._deliver_delayed(next_round)
            due = self._due_vertices(next_round)
            skipped = 0
            if not due:
                # Fast-forward to the earliest scheduled wakeup, rejoin,
                # or delayed-message release (all are events exactly
                # like a wakeup).
                future = [
                    w
                    for v, w in self._wakeups.items()
                    if not self._contexts[v].halted
                ]
                future.extend(r for r, _ in self._rejoin_queue)
                if self._delay_queue:
                    future.append(min(self._delay_queue))
                if not future:
                    break  # nothing will ever happen again
                target = min(future)
                if target > max_rounds:
                    self.metrics.record_skipped(max_rounds - self._round)
                    self._round = max_rounds
                    break
                skipped = target - next_round
                self.metrics.record_skipped(skipped)
                next_round = target
                if self._delay_queue:
                    self._deliver_delayed(next_round)
                due = self._due_vertices(next_round)
            self._round = next_round
            revived = (
                self._process_rejoins(next_round)
                if self._rejoin_queue
                else ()
            )
            per_edge, messages, bits, bits_hist, fcounts = self._inflight
            self._inflight = _NO_TRAFFIC
            if self._want_detail:
                # Snapshot before _collect below refills the buffer
                # with the next round's events (mirrors the fast
                # engine exactly).
                detail_events = self._inflight_events
                self._inflight_events = []
                detail_events.sort(key=detail_event_sort_key)
            else:
                detail_events = None
            if self.faults is None:
                self.metrics.record_round(per_edge, messages, bits)
            else:
                self.metrics.record_round(per_edge, messages, bits, fcounts)
            live_before = sum(
                1 for ctx in self._contexts.values() if not ctx.halted
            )
            stepped: List[Any] = []
            crashed_now = 0
            for v in due:
                ctx = self._contexts[v]
                if ctx.halted:
                    continue
                if crash_rounds is not None:
                    cr = crash_rounds.get(v)
                    if cr is not None and next_round >= cr:
                        # Fail-stop: the vertex never steps at or after
                        # its crash round and its mail dies with it.
                        ctx._halted = True
                        ctx._output = None
                        self._crashed.add(v)
                        crashed_now += 1
                        self._pending[v] = {}
                        self._has_pending.discard(v)
                        continue
                ctx.round_number = self._round
                inbox = self._pending[v]
                self._pending[v] = {}
                self._has_pending.discard(v)
                self._algorithms[v].step(ctx, inbox)
                stepped.append(v)
            # _collect scans every vertex, so revived outboxes drain
            # here without the fast engine's explicit active-set union.
            if self._registry is not None:
                with self._registry.span("congest.collect"):
                    self._collect()
            else:
                self._collect()
            self._reschedule(stepped)
            if self._snapshot_interval is not None and self._snapshot_targets:
                self._take_local_snapshots(stepped, next_round)
            if crashed_now:
                self.metrics.record_crashed(crashed_now)
            registry = self._registry
            if registry is not None:
                # Mirrors the fast engine exactly; the differential
                # harness pins stepped counts and message sizes equal,
                # so the two engines publish identical telemetry.
                registry.observe("congest.active_vertices", len(stepped))
                if bits_hist:
                    size_hist = registry.histogram("congest.message_bits")
                    for size, times in bits_hist.items():
                        size_hist.observe(size, times)
            if self.trace is not None:
                live_after = sum(
                    1 for ctx in self._contexts.values() if not ctx.halted
                )
                self.trace.record_round(
                    round_number=self._round,
                    per_edge_counts=per_edge,
                    messages=messages,
                    bits=bits,
                    stepped=len(stepped),
                    idle=live_before - len(stepped) - crashed_now,
                    halted=len(self._order) - live_after,
                    skipped_before=skipped,
                    dropped=fcounts[0],
                    duplicated=fcounts[1],
                    corrupted=fcounts[2],
                    crashed=crashed_now,
                    rejoined=len(revived),
                    delayed=fcounts[3],
                    topo_lost=fcounts[4],
                    partitioned=fcounts[5],
                    message_bits_histogram=bits_hist,
                    events=detail_events,
                )
            if (
                on_checkpoint is not None
                and checkpoint_every is not None
                and next_round % checkpoint_every == 0
            ):
                on_checkpoint(self.capture_checkpoint())

        if self._registry is not None:
            self.metrics.publish_telemetry(self._registry)
        outputs = {v: self._contexts[v].output for v in self._order}
        return SimulationResult(
            outputs=outputs,
            metrics=self.metrics,
            halted=self._all_halted(),
            crashed=frozenset(self._crashed),
        )

    # -- crash recovery -------------------------------------------------
    def _process_rejoins(self, round_number: int) -> List[Any]:
        """Revive crashed vertices whose scheduled rejoin round arrived.

        Mirrors the fast engine exactly: restore from the most recent
        local snapshot, or re-initialize from scratch with the original
        RNG seed; mail queued while dead is lost; rejoins of vertices
        that halted normally before crashing are dropped.
        """
        queue = self._rejoin_queue
        revived: List[Any] = []
        while queue and queue[0][0] <= round_number:
            _, v = queue.pop(0)
            self._snapshot_targets.discard(v)
            if v not in self._crashed:
                continue
            self._crashed.discard(v)
            if self._crash_rounds is not None:
                # The crash has been consumed; without this the vertex
                # would fail-stop again on its next step.
                self._crash_rounds.pop(v, None)
            snapshot = self._snapshots.pop(v, None)
            self._snapshot_rounds.pop(v, None)
            if snapshot is not None:
                algorithm, ctx = pickle.loads(snapshot)
                ctx.round_number = round_number
            else:
                old = self._contexts[v]
                ctx = VertexContext(
                    vertex=old.vertex,
                    neighbors=old.neighbors,
                    edge_weights=dict(old.edge_weights),
                    n=old.n,
                    rng_seed=old._rng_seed,
                )
                ctx.round_number = round_number
                algorithm = self._factory(old.vertex)
            self._contexts[v] = ctx
            self._algorithms[v] = algorithm
            if snapshot is None:
                algorithm.initialize(ctx)
            self._pending[v] = {}
            self._has_pending.discard(v)
            self._wakeups.pop(v, None)
            if not ctx.halted:
                self._runnable.add(v)
            revived.append(v)
        if revived:
            self.metrics.record_rejoined(len(revived))
        return revived

    def _take_local_snapshots(self, stepped: List[Any],
                              round_number: int) -> None:
        """Snapshot rejoin-scheduled vertices every ``checkpoint_interval``
        executed steps; runs after collection so snapshots never contain
        queued outbox messages (mirrors the fast engine).
        """
        interval = self._snapshot_interval
        targets = self._snapshot_targets
        last_rounds = self._snapshot_rounds
        for v in stepped:
            if v in targets and not self._contexts[v].halted:
                last = last_rounds.get(v)
                if last is None or round_number - last >= interval:
                    self._snapshots[v] = pickle.dumps(
                        (self._algorithms[v], self._contexts[v]),
                        protocol=PICKLE_PROTOCOL,
                    )
                    last_rounds[v] = round_number

    # -- checkpoint / restore -------------------------------------------
    def capture_checkpoint(self) -> SimulationCheckpoint:
        """Freeze the simulation at the current round boundary.

        Produces the same engine-neutral, vertex-keyed state layout as
        :meth:`repro.congest.engine.FastEngine.capture_checkpoint`
        (inboxes / wakeups / runnable flags of halted vertices are
        normalized away), so checkpoints resume on either engine.
        """
        contexts = self._contexts
        per_edge, messages, bits, bits_hist, fcounts = self._inflight
        state = {
            "contexts": dict(contexts),
            "algorithms": dict(self._algorithms),
            "pending": {
                v: box
                for v, box in self._pending.items()
                if box and not contexts[v].halted
            },
            "runnable": {
                v for v in self._runnable if not contexts[v].halted
            },
            "wakeups": {
                v: w
                for v, w in self._wakeups.items()
                if not contexts[v].halted
            },
            "inflight": {
                "per_edge": [
                    (u, w, count) for (u, w), count in per_edge.items()
                ],
                "messages": messages,
                "bits": bits,
                "bits_hist": dict(bits_hist),
                "fcounts": tuple(fcounts),
            },
            # Withheld payloads still in flight, flattened in release
            # order (entries are already vertex-keyed in both engines;
            # detail-mode entries carry a trailing sequence number).
            "delayed": [
                (release,) + tuple(entry)
                for release in sorted(self._delay_queue)
                for entry in self._delay_queue[release]
            ],
            # Detail events buffered for the next executed round
            # (empty unless the trace recorder asked for detail).
            "inflight_events": [dict(e) for e in self._inflight_events],
            "crashed": set(self._crashed),
            "crash_rounds": (
                None
                if self._crash_rounds is None
                else dict(self._crash_rounds)
            ),
            "rejoin_queue": list(self._rejoin_queue),
            "snapshots": dict(self._snapshots),
            "snapshot_rounds": dict(self._snapshot_rounds),
            "initialized": self._initialized,
        }
        if self._registry is not None:
            self._registry.count("congest.checkpoints_captured")
        return SimulationCheckpoint(
            round=self._round,
            n=len(self._order),
            engine=self.name,
            graph=graph_fingerprint(self.graph),
            strict=self.strict,
            capacity=self.capacity,
            budget_n=self.budget.n,
            budget_words=self.budget.words,
            fault_plan=(
                self.faults.plan.to_dict() if self.faults is not None else None
            ),
            metrics=self.metrics.to_dict(include_per_round=True),
            state=pickle.dumps(state, protocol=PICKLE_PROTOCOL),
            trace_rounds=(
                [r.to_dict() for r in self.trace.rounds]
                if self.trace is not None
                else None
            ),
        )

    def restore_checkpoint(self, checkpoint: SimulationCheckpoint) -> None:
        """Replace this engine's state with a captured checkpoint.

        Accepts checkpoints captured by either engine; mismatched
        graphs or configurations raise
        :class:`~repro.errors.CheckpointError`.
        """
        verify_restore_target(self, checkpoint, len(self._order))
        try:
            state = pickle.loads(checkpoint.state)
        except Exception as exc:
            raise CheckpointError(
                f"cannot unpickle checkpoint state: {exc}"
            ) from exc
        try:
            contexts = state["contexts"]
            algorithms = state["algorithms"]
            self._contexts = {v: contexts[v] for v in self._order}
            self._algorithms = {v: algorithms[v] for v in self._order}
            self._pending = {v: {} for v in self._order}
            self._has_pending = set()
            for v, box in state["pending"].items():
                self._pending[v] = box
                self._has_pending.add(v)
            self._runnable = set(state["runnable"])
            self._wakeups = dict(state["wakeups"])
            inflight = state["inflight"]
            self._inflight = (
                {
                    (u, w): count
                    for u, w, count in inflight["per_edge"]
                },
                inflight["messages"],
                inflight["bits"],
                dict(inflight["bits_hist"]),
                pad_fault_counts(inflight["fcounts"]),
            )
            self._delay_queue = {}
            for entry in state.get("delayed", ()):
                # entry = (release, send_round, sender, receiver,
                # payload[, seq]); older checkpoints lack the trailing
                # detail-mode sequence number.
                self._delay_queue.setdefault(entry[0], []).append(
                    tuple(entry[1:])
                )
            self._inflight_events = [
                dict(e) for e in state.get("inflight_events", ())
            ]
            self._crashed = set(state["crashed"])
            crash_rounds = state["crash_rounds"]
            self._crash_rounds = (
                None if crash_rounds is None else dict(crash_rounds)
            )
            self._rejoin_queue = [
                (r, v) for r, v in state["rejoin_queue"]
            ]
            self._snapshot_targets = {v for _, v in self._rejoin_queue}
            self._snapshots = dict(state["snapshots"])
            self._snapshot_rounds = dict(state["snapshot_rounds"])
        except KeyError as exc:
            raise CheckpointError(
                f"checkpoint state is missing {exc}"
            ) from exc
        self._round = checkpoint.round
        self.metrics = CongestMetrics.from_dict(checkpoint.metrics)
        if self.trace is not None and checkpoint.trace_rounds is not None:
            self.trace.rounds = [
                RoundTrace.from_dict(d) for d in checkpoint.trace_rounds
            ]
        # A pre-initialization checkpoint (captured before run()) leaves
        # this False, so the resumed run still initializes normally.
        self._initialized = bool(state.get("initialized", True))
        if self._registry is not None:
            self._registry.count("congest.checkpoints_restored")

    # ------------------------------------------------------------------
    def _due_vertices(self, round_number: int) -> List[Any]:
        due = set(self._runnable) | self._has_pending
        for v, wake in self._wakeups.items():
            if wake <= round_number:
                due.add(v)
        return canonical_vertex_order(
            v for v in due if not self._contexts[v].halted
        )

    def _reschedule(self, stepped: List[Any]) -> None:
        for v in stepped:
            ctx = self._contexts[v]
            self._runnable.discard(v)
            self._wakeups.pop(v, None)
            if ctx.halted:
                continue
            algo = self._algorithms[v]
            if algo.is_idle(ctx):
                wake = algo.next_wakeup(ctx)
                if self._crash_rounds is not None:
                    # Clamp the wakeup so a scheduled crash is noticed
                    # at its exact round even while the vertex is idle.
                    cr = self._crash_rounds.get(v)
                    if (
                        cr is not None
                        and cr > self._round
                        and (wake is None or cr < wake)
                    ):
                        wake = cr
                if wake is not None and wake > self._round:
                    self._wakeups[v] = wake
            else:
                self._runnable.add(v)

    def _all_halted(self) -> bool:
        return all(ctx.halted for ctx in self._contexts.values())

    def _collect(self) -> None:
        """Move all outboxes into the in-flight buffer, with accounting."""
        per_edge: Dict = {}
        messages = 0
        bits = 0
        max_bits = 0
        want_hist = self._want_bits_hist
        bits_hist: Dict[int, int] = {}
        # Per-message attribute lookups hoisted into locals, mirroring
        # the fast engine's prologue.
        budget_bits = self.budget.bits
        strict = self.strict
        capacity = self.capacity
        contexts = self._contexts
        pending = self._pending
        has_pending_add = self._has_pending.add
        per_edge_get = per_edge.get
        sizeof = message_bits
        injector = self.faults
        send_round = self._round
        dropped = duplicated = corrupted = 0
        delayed = topo_lost = partitioned = 0
        want_detail = self._want_detail
        if want_detail:
            events_append = self._inflight_events.append
        if injector is not None:
            inj_topo = injector.has_topology
            inj_part = injector.has_partitions
            inj_delay = injector.has_delay
            delay_queue = self._delay_queue
        for v in self._order:
            ctx = contexts[v]
            outbox = ctx._drain_outbox()
            for neighbor, payload in outbox:
                size = sizeof(payload)
                if size > budget_bits:
                    raise MessageTooLargeError(
                        size,
                        budget_bits,
                        detail=f"from {v!r} to {neighbor!r}",
                    )
                if size > max_bits:
                    max_bits = size
                edge = (v, neighbor)
                count = per_edge_get(edge, 0) + 1
                per_edge[edge] = count
                if strict and count > capacity:
                    raise ProtocolError(
                        f"edge {edge!r} carried {count} messages in one "
                        f"round (capacity {capacity})"
                    )
                messages += 1
                bits += size
                if want_hist:
                    # Keyed on what the sender was charged (before the
                    # fault channel), matching the fast engine.
                    bits_hist[size] = bits_hist.get(size, 0) + 1
                copies = 1
                outcome = "deliver"
                if injector is not None:
                    # The sender has paid; what follows is the channel.
                    # Fault decisions key on the per-edge sequence
                    # number ``count - 1``, identical in both engines.
                    if inj_topo and not injector.topology_live(
                        v, neighbor, send_round
                    ):
                        topo_lost += 1
                        if want_detail:
                            events_append({
                                "s": repr(v), "r": repr(neighbor),
                                "q": count - 1, "b": size, "o": "topo_lost",
                            })
                        continue
                    if inj_part and injector.partitioned(
                        v, neighbor, send_round
                    ):
                        partitioned += 1
                        if want_detail:
                            events_append({
                                "s": repr(v), "r": repr(neighbor),
                                "q": count - 1, "b": size, "o": "partitioned",
                            })
                        continue
                    if injector.link_down(v, neighbor, send_round):
                        dropped += 1
                        if want_detail:
                            events_append({
                                "s": repr(v), "r": repr(neighbor),
                                "q": count - 1, "b": size, "o": "drop",
                            })
                        continue
                    action = injector.classify(
                        send_round, v, neighbor, count - 1
                    )
                    if action == DROP:
                        dropped += 1
                        if want_detail:
                            events_append({
                                "s": repr(v), "r": repr(neighbor),
                                "q": count - 1, "b": size, "o": "drop",
                            })
                        continue
                    if action == DUPLICATE:
                        duplicated += 1
                        copies = 2
                        outcome = "duplicate"
                    elif action == CORRUPT:
                        corrupted += 1
                        outcome = "corrupt"
                        payload = injector.corrupted_payload(
                            send_round, v, neighbor, count - 1
                        )
                    if inj_delay:
                        extra = injector.delay_rounds(
                            send_round, v, neighbor, count - 1
                        )
                        if extra:
                            # Charged now, handed over later: the
                            # payload (every copy of it) waits in the
                            # delay queue for its release round.
                            delayed += 1
                            release = delay_queue.setdefault(
                                send_round + 1 + extra, []
                            )
                            if want_detail:
                                # The per-edge sequence number rides
                                # along so the release event can be
                                # joined back to this transmission.
                                entry = (
                                    send_round, v, neighbor, payload,
                                    count - 1,
                                )
                                events_append({
                                    "s": repr(v), "r": repr(neighbor),
                                    "q": count - 1, "b": size, "o": "delay",
                                })
                            else:
                                entry = (send_round, v, neighbor, payload)
                            release.append(entry)
                            if copies == 2:
                                release.append(entry)
                            continue
                if want_detail:
                    events_append({
                        "s": repr(v), "r": repr(neighbor),
                        "q": count - 1, "b": size, "o": outcome,
                    })
                inbox = pending[neighbor].setdefault(v, [])
                inbox.append(payload)
                if copies == 2:
                    inbox.append(payload)
                has_pending_add(neighbor)
        if max_bits > self.metrics.max_message_bits:
            self.metrics.max_message_bits = max_bits
        if messages and self._registry is not None:
            self._registry.count("congest.delivery.scalar")
        self._inflight = (
            per_edge,
            messages,
            bits,
            bits_hist,
            (dropped, duplicated, corrupted, delayed, topo_lost, partitioned)
            if injector is not None
            else NO_FAULTS,
        )

    def _deliver_delayed(self, round_number: int) -> None:
        """Release withheld payloads whose delivery round has arrived.

        Entries are ordered by (send round, sender rank, receiver rank)
        — a pure function of the plan and the canonical vertex order —
        exactly as the fast engine orders them, so both engines append
        released payloads to the pending inboxes identically.
        """
        queue = self._delay_queue
        ready = [r for r in queue if r <= round_number]
        if not ready:
            return
        entries: List[Tuple] = []
        for release in sorted(ready):
            entries.extend(queue.pop(release))
        rank = self._rank
        entries.sort(key=lambda e: (e[0], rank[e[1]], rank[e[2]]))
        pending = self._pending
        has_pending_add = self._has_pending.add
        want_detail = self._want_detail
        for entry in entries:
            # Detail-mode entries carry a fifth element: the original
            # per-edge sequence number (see _collect).
            send_round, sender, receiver, payload = entry[:4]
            if want_detail:
                event = {
                    "s": repr(sender), "r": repr(receiver),
                    "o": "release", "sr": send_round,
                }
                if len(entry) > 4:
                    event["q"] = entry[4]
                self._inflight_events.append(event)
            pending[receiver].setdefault(sender, []).append(payload)
            has_pending_add(receiver)
