"""Durable simulation checkpoints for the CONGEST engines.

A :class:`SimulationCheckpoint` captures one simulation at a *round
boundary* — after a round's messages have been collected, before the
next round begins.  It holds everything the next round depends on:

* per-vertex algorithm objects and contexts (including each vertex's
  private RNG stream, exactly as advanced so far);
* in-flight traffic awaiting delivery, with its accounting tuple;
* queued inboxes, the runnable set, and scheduled wakeups;
* the :class:`~repro.congest.metrics.CongestMetrics` accumulated so far
  and the rounds recorded by an attached trace recorder;
* the full fault state: the plan itself (fault decisions are a pure
  keyed hash of the plan, so nothing else about the channel needs
  saving), the remaining crash schedule, unfired rejoins, and the local
  per-vertex snapshots the crash-recovery model keeps.

The invariant — pinned by ``tests/test_checkpoint.py`` on both engines,
fault-free and under every fault class — is that *resuming from a
checkpoint is bit-identical to never having stopped*: outputs, metrics,
and traces all match the uninterrupted run.  Checkpoints are
engine-neutral (state is keyed by vertex, not by engine-internal
index), so a checkpoint captured on the fast engine resumes on the
reference engine and vice versa.

Wire format: a schema-versioned JSON envelope whose ``state`` field is
a pickled (protocol-pinned) blob of the live vertex objects, base64
encoded.  The blob must be one pickle so that object identity between
an algorithm and its context (wrappers like
:class:`repro.resilience.transport.ReliableAlgorithm` hold both) is
preserved across the round trip.  Checkpointing therefore requires the
vertex algorithms to be picklable — true for every algorithm in this
library.
"""

from __future__ import annotations

import base64
import json
import os
from dataclasses import dataclass
from hashlib import blake2b
from typing import Any, Dict, List, Optional

from .. import storage
from ..errors import CheckpointError, StorageError
from ..graph import Graph, canonical_vertex_order

#: Version stamped on every serialized checkpoint.  History:
#:
#: * 1 — initial layout (round, engine-neutral state blob, metrics,
#:   optional trace prefix, fault plan + crash-recovery state).
#:
#: ``from_dict`` accepts any version up to the current one and fills
#: absent newer fields with defaults, so pinned old fixtures keep
#: loading (see ``tests/data/checkpoint_v1.json``).
CHECKPOINT_SCHEMA_VERSION = 1

#: Pinned pickle protocol for the state blob, matching the artifact
#: cache's choice so checkpoints stay readable across the same range of
#: interpreter versions.
PICKLE_PROTOCOL = 4


def _envelope_checksum(data: Dict[str, Any]) -> str:
    """blake2b digest of the envelope's canonical JSON, sans checksum.

    Verified by :meth:`SimulationCheckpoint.from_dict` *before* the
    state blob is base64-decoded or unpickled, so a truncated or
    bit-flipped checkpoint raises :class:`CheckpointError` instead of
    feeding garbage to pickle.  Envelopes written before checksums
    existed simply lack the field and stay loadable.
    """
    body = {k: v for k, v in data.items() if k != "checksum"}
    return blake2b(
        storage.canonical_json(body).encode("utf-8"), digest_size=16
    ).hexdigest()


def graph_fingerprint(graph: Graph) -> str:
    """Stable digest of a graph's exact topology and edge weights.

    Stored in every checkpoint and verified at resume: restoring vertex
    state into a *different* network would not fail loudly on its own —
    it would silently diverge — so the fingerprint turns that mistake
    into a :class:`~repro.errors.CheckpointError`.
    """
    digest = blake2b(digest_size=16)
    adj = graph._adj
    for v in canonical_vertex_order(graph.vertices()):
        digest.update(repr(v).encode("utf-8"))
        digest.update(b"|")
        row = adj[v]
        for u in canonical_vertex_order(row):
            digest.update(f"{u!r}:{row[u]!r};".encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


@dataclass
class SimulationCheckpoint:
    """One simulation frozen at a round boundary; see the module doc."""

    #: Round counter at capture time; the resumed run continues at
    #: ``round + 1`` (``run(max_rounds=...)`` stays an absolute bound).
    round: int
    n: int
    #: Engine that captured the checkpoint (informational — resume may
    #: use either engine; the state is vertex-keyed).
    engine: str
    #: :func:`graph_fingerprint` of the captured network.
    graph: str
    strict: bool
    capacity: int
    budget_n: int
    budget_words: int
    #: ``FaultPlan.to_dict()`` payload, or ``None`` for fault-free runs.
    fault_plan: Optional[Dict[str, Any]]
    #: ``CongestMetrics.to_dict(include_per_round=True)`` payload.
    metrics: Dict[str, Any]
    #: The pickled engine-neutral state blob (see the module doc).
    state: bytes
    #: Rounds recorded by the attached trace recorder up to capture, as
    #: ``RoundTrace.to_dict()`` payloads; ``None`` when untraced.
    trace_rounds: Optional[List[Dict[str, Any]]] = None
    schema: int = CHECKPOINT_SCHEMA_VERSION

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form (the state blob is base64-encoded).

        The envelope carries a whole-payload ``checksum`` so torn
        writes and bit-flips are caught at load time, never unpickled.
        """
        data = {
            "schema": self.schema,
            "round": self.round,
            "n": self.n,
            "engine": self.engine,
            "graph": self.graph,
            "strict": self.strict,
            "capacity": self.capacity,
            "budget": {"n": self.budget_n, "words": self.budget_words},
            "fault_plan": self.fault_plan,
            "metrics": self.metrics,
            "trace_rounds": self.trace_rounds,
            "state": base64.b64encode(self.state).decode("ascii"),
        }
        data["checksum"] = _envelope_checksum(data)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SimulationCheckpoint":
        """Rebuild a checkpoint, tolerating *older* schemas forever.

        Unknown fields from future minor additions are ignored and
        absent optional fields default, which is the forward-compat
        contract the pinned v1 fixture test locks in.  A schema newer
        than this code understands is refused rather than misread.
        """
        if not isinstance(data, dict):
            raise CheckpointError(
                f"checkpoint payload is {type(data).__name__}, not an object"
            )
        expected = data.get("checksum")
        if expected is not None:
            try:
                actual = _envelope_checksum(data)
            except (TypeError, ValueError) as exc:
                raise CheckpointError(
                    f"checkpoint envelope is not canonicalizable: {exc}"
                ) from exc
            if actual != expected:
                raise CheckpointError(
                    "checkpoint failed checksum verification "
                    f"(expected {expected!r}, got {actual!r}) — torn "
                    "write or bit-flip; refusing to unpickle its state"
                )
            data = {k: v for k, v in data.items() if k != "checksum"}
        schema = data.get("schema")
        if not isinstance(schema, int) or schema < 1:
            raise CheckpointError(
                f"checkpoint carries invalid schema marker {schema!r}"
            )
        if schema > CHECKPOINT_SCHEMA_VERSION:
            raise CheckpointError(
                f"checkpoint schema {schema} is newer than the supported "
                f"version {CHECKPOINT_SCHEMA_VERSION}"
            )
        try:
            budget = data.get("budget", {})
            return cls(
                schema=schema,
                round=int(data["round"]),
                n=int(data["n"]),
                engine=str(data.get("engine", "")),
                graph=str(data["graph"]),
                strict=bool(data.get("strict", False)),
                capacity=int(data.get("capacity", 1)),
                budget_n=int(budget["n"]),
                budget_words=int(budget["words"]),
                fault_plan=data.get("fault_plan"),
                metrics=dict(data["metrics"]),
                trace_rounds=data.get("trace_rounds"),
                state=base64.b64decode(data["state"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"malformed checkpoint payload: {type(exc).__name__}: {exc}"
            ) from exc

    # -- file I/O --------------------------------------------------------
    def save(self, path: str) -> None:
        """Write the checkpoint to ``path`` atomically (write + rename).

        Durability is the whole point of a checkpoint, so a crash while
        saving must never leave a half-written file where an older good
        checkpoint used to be.
        """
        payload = json.dumps(self.to_dict(), sort_keys=True)
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        try:
            storage.atomic_write_text(path, payload + "\n")
        except StorageError as exc:
            raise CheckpointError(
                f"cannot save checkpoint {path!r}: {exc}"
            ) from exc

    @classmethod
    def load(cls, path: str) -> "SimulationCheckpoint":
        """Read a checkpoint file, wrapping every failure mode loudly."""
        try:
            text = storage.read_text(path)
        except OSError as exc:
            raise CheckpointError(
                f"cannot read checkpoint {path!r}: {exc}"
            ) from exc
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"checkpoint {path!r} is not valid JSON: {exc}"
            ) from exc
        return cls.from_dict(data)


def verify_restore_target(engine, checkpoint: SimulationCheckpoint,
                          n: int) -> None:
    """Refuse to restore ``checkpoint`` into a mismatched simulation.

    Shared by both engines' ``restore_checkpoint``: the bit-identical
    resume guarantee only holds when the graph, the CONGEST
    configuration, and the fault plan all match the capturing run, so
    any mismatch raises :class:`~repro.errors.CheckpointError` instead
    of silently diverging.
    """
    if checkpoint.n != n:
        raise CheckpointError(
            f"checkpoint was captured over {checkpoint.n} vertices, "
            f"this simulation has {n}"
        )
    fingerprint = graph_fingerprint(engine.graph)
    if checkpoint.graph != fingerprint:
        raise CheckpointError(
            "checkpoint was captured over a different graph "
            f"(fingerprint {checkpoint.graph} != {fingerprint})"
        )
    if (
        engine.strict != checkpoint.strict
        or engine.capacity != checkpoint.capacity
        or engine.budget.n != checkpoint.budget_n
        or engine.budget.words != checkpoint.budget_words
    ):
        raise CheckpointError(
            "checkpoint was captured under a different simulator "
            "configuration (strict/capacity/budget mismatch)"
        )
    plan = (
        engine.faults.plan.to_dict() if engine.faults is not None else None
    )
    if plan != checkpoint.fault_plan:
        raise CheckpointError(
            "checkpoint was captured under a different fault plan"
        )


def resume_simulation(
    graph: Graph,
    algorithm_factory,
    checkpoint: SimulationCheckpoint,
    engine: Optional[str] = None,
    trace=None,
):
    """Rebuild a simulator mid-run from ``checkpoint``.

    ``graph`` and ``algorithm_factory`` must be the ones the original
    simulation was built from (the graph is verified against the
    checkpoint's fingerprint; the factory is only consulted if a
    crash-recovery rejoin later re-initializes a vertex).  ``engine``
    may differ from the capturing engine — checkpoints are
    engine-neutral.  The strict/capacity/budget configuration and the
    fault plan are restored from the checkpoint itself, so the resumed
    run is bit-identical to the uninterrupted one by construction.

    Returns a ready :class:`~repro.congest.network.CongestSimulator`;
    call ``run(max_rounds)`` with the same *absolute* bound as the
    original run to finish it.
    """
    from .faults import FaultPlan
    from .message import MessageBudget
    from .network import CongestSimulator

    # An explicitly empty plan (rather than None) keeps an ambient
    # use_faults() region from leaking into the resumed run: the
    # checkpoint's own plan is the only fault source.
    plan = (
        FaultPlan.from_dict(checkpoint.fault_plan)
        if checkpoint.fault_plan is not None
        else FaultPlan()
    )
    sim = CongestSimulator(
        graph,
        algorithm_factory,
        budget=MessageBudget(checkpoint.budget_n, checkpoint.budget_words),
        strict=checkpoint.strict,
        capacity=checkpoint.capacity,
        seed=0,  # construction-time streams are discarded by the restore
        engine=engine,
        trace=trace,
        faults=plan,
    )
    sim._engine.restore_checkpoint(checkpoint)
    return sim
