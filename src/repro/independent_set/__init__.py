"""Maximum independent set (Theorem 1.2 / Section 3.1).

Exact branch-and-bound MAXIS (the leaders' local solver and the
experiment oracle), the min-degree greedy that witnesses
alpha(G) >= n/(2d+1) on density-d graphs (the Section 3.1 linearity
argument), Luby's distributed MIS as the classic CONGEST baseline, and
the framework-based (1 - epsilon)-approximation.
"""

from .exact import exact_maxis, solve_maxis, two_improvement_is
from .greedy import LubyMIS, greedy_min_degree_is, luby_mis
from .distributed import DistributedISResult, distributed_maxis
from .weighted import (
    DistributedWeightedISResult,
    distributed_weighted_maxis,
    exact_weighted_maxis,
    greedy_weighted_is,
    solve_weighted_maxis,
)

__all__ = [
    "exact_maxis",
    "solve_maxis",
    "two_improvement_is",
    "greedy_min_degree_is",
    "LubyMIS",
    "luby_mis",
    "DistributedISResult",
    "distributed_maxis",
    "DistributedWeightedISResult",
    "distributed_weighted_maxis",
    "exact_weighted_maxis",
    "greedy_weighted_is",
    "solve_weighted_maxis",
]
