"""Distributed (1 - epsilon)-approximate MAXIS (Theorem 1.2 / Section 3.1).

The Section 3.1 recipe, verbatim: run the Theorem 2.6 framework with
parameter epsilon' = epsilon / (2d + 1) (d = edge density bound, so
alpha(G) >= n/(2d+1) by min-degree greedy), let every leader compute an
*exact* maximum independent set of its cluster, and then resolve the
only possible conflicts — both endpoints of an inter-cluster edge
chosen — by dropping one endpoint per conflicting cut edge.  Since
there are at most epsilon' * n cut edges, the loss is at most
epsilon * alpha(G).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from ..core.framework import FrameworkResult, density_bound, run_framework
from ..errors import SolverError
from ..graph import Graph
from ..rng import SeedLike, ensure_rng
from .exact import solve_maxis


@dataclass
class DistributedISResult:
    """The independent set plus its execution record."""

    independent_set: Set
    epsilon: float
    framework: FrameworkResult
    conflicts_resolved: int

    @property
    def size(self) -> int:
        return len(self.independent_set)


def distributed_maxis(
    graph: Graph,
    epsilon: float,
    phi: Optional[float] = None,
    seed: SeedLike = None,
    max_cluster_size: Optional[int] = None,
) -> DistributedISResult:
    """Theorem 1.2: (1 - epsilon)-approximate MAXIS on minor-free networks.

    Leaders solve clusters with :func:`solve_maxis`: exact within a
    search budget, strong local search beyond it.  ``max_cluster_size``
    optionally caps cluster sizes (at an edge-budget cost).
    """
    if not 0.0 < epsilon < 1.0:
        raise SolverError("epsilon must lie in (0, 1)")
    rng = ensure_rng(seed)

    d = density_bound(graph)
    epsilon_prime = epsilon / (2.0 * d + 1.0)

    def solver(sub: Graph, leader: Any, notes: Dict) -> Dict[Any, Any]:
        chosen = solve_maxis(sub)
        return {v: (1 if v in chosen else 0) for v in sub.vertices()}

    framework = run_framework(
        graph,
        epsilon_prime,
        solver=solver,
        phi=phi,
        seed=rng.getrandbits(64),
        max_cluster_size=max_cluster_size,
    )

    candidate = {v for v, take in framework.answers.items() if take == 1}

    # Conflict resolution on inter-cluster edges (Section 3.1's set Z):
    # in the network this is one communication round between cut-edge
    # endpoints; ties break toward keeping the larger ID.
    conflicts = 0
    dropped: Set = set()
    for u, v in framework.decomposition.cut_edges:
        if u in candidate and v in candidate and u not in dropped and v not in dropped:
            loser = min(u, v, key=repr)
            dropped.add(loser)
            conflicts += 1
    independent = candidate - dropped

    # Validity check (always holds; guards against solver bugs).
    for v in independent:
        for u in graph.neighbors(v):
            if u in independent:
                raise SolverError(
                    "distributed MAXIS produced a dependent set"
                )
    return DistributedISResult(
        independent_set=independent,
        epsilon=epsilon,
        framework=framework,
        conflicts_resolved=conflicts,
    )
