"""Independent set baselines: min-degree greedy and Luby's MIS.

``greedy_min_degree_is`` is the constructive half of the Section 3.1
linearity argument: on a graph of edge density d the minimum degree is
at most 2d, so repeatedly taking a minimum-degree vertex yields an
independent set of size at least n/(2d+1) — the alpha(G) = Theta(n)
fact the framework's approximation analysis charges against.

``luby_mis`` is Luby's classic randomized maximal independent set run
genuinely on the CONGEST simulator; an MIS is a (1/Delta)-approximation
to MAXIS, which is the CONGEST state of the art on general graphs that
Theorem 1.2 improves upon for minor-free networks.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Optional, Set, Tuple

from ..congest import (
    CongestSimulator,
    SimulationResult,
    VertexAlgorithm,
    VertexContext,
)
from ..congest.algorithm import register_kernel
from ..congest.kernels import KernelBase, seg_any
from ..congest.message import message_bits
from ..graph import Graph
from ..rng import SeedLike


def greedy_min_degree_is(graph: Graph) -> Set:
    """Repeatedly take a minimum-degree vertex and delete its neighbors."""
    remaining: Dict = {v: set(graph.neighbors(v)) for v in graph.vertices()}
    heap = [(len(nbrs), repr(v), v) for v, nbrs in remaining.items()]
    heapq.heapify(heap)
    independent: Set = set()
    alive = set(remaining)
    while heap:
        deg, _key, v = heapq.heappop(heap)
        if v not in alive or deg != len(remaining[v] & alive):
            if v in alive:
                heapq.heappush(
                    heap, (len(remaining[v] & alive), repr(v), v)
                )
            continue
        independent.add(v)
        dead = {v} | (remaining[v] & alive)
        alive -= dead
        for u in dead:
            for w in remaining[u] & alive:
                heapq.heappush(
                    heap, (len(remaining[w] & alive), repr(w), w)
                )
    return independent


class LubyMIS(VertexAlgorithm):
    """One vertex of Luby's randomized MIS protocol.

    Each phase takes two rounds.  Odd round: every still-undecided
    vertex has broadcast a fresh random priority in the previous round;
    a vertex whose (priority, ID) beats every priority it received
    joins the MIS and announces ``IN``.  Even round: vertices that
    received an ``IN`` leave as out and halt; winners halt as in; the
    rest redraw and re-announce.  Decided vertices stop sending
    priorities, so the comparisons automatically restrict to undecided
    neighbors.  With high probability O(log n) phases decide everyone.
    """

    def __init__(self, max_phases: int) -> None:
        self.max_phases = max_phases
        self.state = "undecided"
        self.priority: Optional[Tuple[float, Any]] = None

    def initialize(self, ctx: VertexContext) -> None:
        self._draw_and_announce(ctx)

    def _draw_and_announce(self, ctx: VertexContext) -> None:
        self.priority = (ctx.rng.random(), ctx.vertex)
        ctx.broadcast(("PRI", self.priority[0]))

    def step(self, ctx: VertexContext, inbox: Dict[Any, List[Any]]) -> None:
        if ctx.round_number % 2 == 1:
            # Comparison round: join iff best among undecided neighbors.
            if self.state != "undecided":
                return
            best = True
            for neighbor, payloads in inbox.items():
                for tag, value in payloads:
                    if tag == "PRI" and (value, neighbor) > self.priority:
                        best = False
            if best:
                self.state = "in"
                ctx.broadcast(("IN", 0.0))
        else:
            # Resolution round: losers of an IN neighbor leave.
            if self.state == "undecided":
                for _neighbor, payloads in inbox.items():
                    if any(tag == "IN" for tag, _v in payloads):
                        self.state = "out"
                        break
            if self.state != "undecided":
                ctx.halt(self.state == "in")
                return
            if ctx.round_number >= 2 * self.max_phases:
                # Budget exhausted (failure path); stay out.
                ctx.halt(False)
                return
            self._draw_and_announce(ctx)


@register_kernel(LubyMIS)
class LubyKernel(KernelBase):
    """Columnar twin of :class:`LubyMIS` (see ``docs/kernels.md``).

    State columns: ``status`` (0 undecided / 1 in / 2 out) and the
    current ``pri`` draw.  Inbound reconstruction: a comparison round's
    priorities are the senders' ``pri`` columns masked by who broadcast
    last round; a resolution round's ``IN`` flags are last round's
    winner mask.  Tie-breaks compare dense indices — faithful because
    canonical order is label order for the int-labelled graphs the
    ``supports`` gate admits.
    """

    emits_send_plans = True

    @classmethod
    def _supports_population(cls, engine) -> bool:
        first = engine._algorithms[0].max_phases
        return all(a.max_phases == first for a in engine._algorithms)

    _STATES = ("undecided", "in", "out")

    def _load_columns(self) -> None:
        np = self.np
        n = self.n
        self.max_phases = self.algorithms[0].max_phases
        # Both message shapes have value-independent sizes (a 3-char
        # tag plus a float); measure once, charge per edge.
        self._pri_size = message_bits(("PRI", 0.0))
        self._in_size = message_bits(("IN", 0.0))
        self.status = np.zeros(n, np.int8)
        self.pri = np.zeros(n, np.float64)
        self.drawn = np.zeros(n, bool)  # has a priority (initialized)
        self.sent_pri = np.zeros(n, bool)  # broadcast PRI last round
        self.sent_in = np.zeros(n, bool)  # broadcast IN last round
        for i, algo in enumerate(self.algorithms):
            if algo.priority is not None:
                self.status[i] = self._STATES.index(algo.state)
                self.pri[i] = algo.priority[0]
                self.drawn[i] = True

    def _write_columns(self) -> None:
        status = self.status.tolist()
        pri = self.pri.tolist()
        drawn = self.drawn.tolist()
        verts = self.verts
        states = self._STATES
        for i, algo in enumerate(self.algorithms):
            algo.state = states[status[i]]
            if drawn[i]:
                algo.priority = (pri[i], verts[i])

    def _draw_and_announce(self, rows) -> None:
        """Columnar twin of ``LubyMIS._draw_and_announce``.

        Draws go through each vertex's scalar generator (see the "RNG
        discipline" section of ``docs/kernels.md``): the protocol
        consumes O(log n) words per vertex, far too few to amortize
        columnar stream adoption, and scalar draws keep the per-vertex
        streams bit-identical by construction.
        """
        pri = self.pri
        self.drawn[rows] = True
        self.sent_pri[:] = False
        self.sent_pri[rows] = True
        contexts = self.contexts
        payloads = []
        append = payloads.append
        for i in rows.tolist():
            p = contexts[i].rng.random()
            pri[i] = p
            append(("PRI", p))
        self._emit_broadcast(rows, payloads, size=self._pri_size)

    def _initialize_rows(self, rows) -> None:
        self._draw_and_announce(rows)

    def _step_rows(self, rows, round_number: int, boxes) -> None:
        np = self.np
        status = self.status
        if round_number % 2 == 1:
            # Comparison round: join iff best among undecided neighbors.
            undecided = rows[status[rows] == 0]
            if boxes is not None:
                beaten_ids = self._beaten_from_dicts(rows, boxes)
                winners = np.array(
                    [i for i in undecided.tolist() if i not in beaten_ids],
                    dtype=np.intp,
                )
            else:
                nbr = self.nbr
                dst = self.edge_dst
                nbrp = self.pri[nbr]
                dstp = self.pri[dst]
                beat_e = self.sent_pri[nbr] & (
                    (nbrp > dstp) | ((nbrp == dstp) & (nbr > dst))
                )
                beaten = seg_any(beat_e, self.indptr)
                winners = undecided[~beaten[undecided]]
            status[winners] = 1
            self.sent_pri[:] = False
            self.sent_in[:] = False
            self.sent_in[winners] = True
            self._emit_broadcast(
                winners,
                [("IN", 0.0) for _ in range(winners.shape[0])],
                size=self._in_size,
            )
        else:
            # Resolution round: losers of an IN neighbor leave.
            undecided = rows[status[rows] == 0]
            if boxes is not None:
                saw = self._saw_in_from_dicts(rows, boxes)
                out_rows = np.array(
                    [i for i in undecided.tolist() if i in saw],
                    dtype=np.intp,
                )
            else:
                saw_in = seg_any(self.sent_in[self.nbr], self.indptr)
                out_rows = undecided[saw_in[undecided]]
            status[out_rows] = 2
            decided = rows[status[rows] != 0]
            for i, s in zip(decided.tolist(), status[decided].tolist()):
                self._halt(i, s == 1)
            self.sent_in[:] = False
            remaining = rows[status[rows] == 0]
            if remaining.size == 0:
                self.sent_pri[:] = False
                return
            if round_number >= 2 * self.max_phases:
                # Budget exhausted (failure path); stay out.
                self.sent_pri[:] = False
                for i in remaining.tolist():
                    self._halt(i, False)
                return
            self._draw_and_announce(remaining)

    # -- post-restore replay of restored inbox dictionaries ------------
    def _beaten_from_dicts(self, rows, boxes):
        beaten = set()
        pri = self.pri
        verts = self.verts
        for i, box in zip(rows.tolist(), boxes):
            mine = (pri[i], verts[i])
            for sender, payloads in box.items():
                for tag, value in payloads:
                    if tag == "PRI" and (value, sender) > mine:
                        beaten.add(i)
        return beaten

    def _saw_in_from_dicts(self, rows, boxes):
        saw = set()
        for i, box in zip(rows.tolist(), boxes):
            for payloads in box.values():
                if any(tag == "IN" for tag, _v in payloads):
                    saw.add(i)
                    break
        return saw


def luby_mis_max_phases(n: int) -> int:
    """The pinned phase budget for an ``n``-vertex Luby MIS run."""
    import math

    return 8 * max(1, math.ceil(math.log2(n + 2)))


def luby_mis(
    graph: Graph,
    seed: SeedLike = None,
    max_phases: Optional[int] = None,
    checkpoint_every: Optional[int] = None,
    on_checkpoint=None,
) -> Tuple[Set, SimulationResult]:
    """Run Luby's MIS on the CONGEST simulator; returns (MIS, result).

    ``checkpoint_every``/``on_checkpoint`` pass straight through to
    :meth:`~repro.congest.network.CongestSimulator.run`, so long runs
    can persist :class:`~repro.congest.checkpoint.SimulationCheckpoint`
    snapshots (``repro faults --save-checkpoint``).
    """
    if max_phases is None:
        max_phases = luby_mis_max_phases(graph.n)
    simulator = CongestSimulator(
        graph, lambda v: LubyMIS(max_phases), seed=seed
    )
    result = simulator.run(
        max_rounds=2 * max_phases + 4,
        checkpoint_every=checkpoint_every,
        on_checkpoint=on_checkpoint,
    )
    mis = {v for v, in_mis in result.outputs.items() if in_mis}
    return mis, result
