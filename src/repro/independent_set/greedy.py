"""Independent set baselines: min-degree greedy and Luby's MIS.

``greedy_min_degree_is`` is the constructive half of the Section 3.1
linearity argument: on a graph of edge density d the minimum degree is
at most 2d, so repeatedly taking a minimum-degree vertex yields an
independent set of size at least n/(2d+1) — the alpha(G) = Theta(n)
fact the framework's approximation analysis charges against.

``luby_mis`` is Luby's classic randomized maximal independent set run
genuinely on the CONGEST simulator; an MIS is a (1/Delta)-approximation
to MAXIS, which is the CONGEST state of the art on general graphs that
Theorem 1.2 improves upon for minor-free networks.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Optional, Set, Tuple

from ..congest import (
    CongestSimulator,
    SimulationResult,
    VertexAlgorithm,
    VertexContext,
)
from ..graph import Graph
from ..rng import SeedLike


def greedy_min_degree_is(graph: Graph) -> Set:
    """Repeatedly take a minimum-degree vertex and delete its neighbors."""
    remaining: Dict = {v: set(graph.neighbors(v)) for v in graph.vertices()}
    heap = [(len(nbrs), repr(v), v) for v, nbrs in remaining.items()]
    heapq.heapify(heap)
    independent: Set = set()
    alive = set(remaining)
    while heap:
        deg, _key, v = heapq.heappop(heap)
        if v not in alive or deg != len(remaining[v] & alive):
            if v in alive:
                heapq.heappush(
                    heap, (len(remaining[v] & alive), repr(v), v)
                )
            continue
        independent.add(v)
        dead = {v} | (remaining[v] & alive)
        alive -= dead
        for u in dead:
            for w in remaining[u] & alive:
                heapq.heappush(
                    heap, (len(remaining[w] & alive), repr(w), w)
                )
    return independent


class LubyMIS(VertexAlgorithm):
    """One vertex of Luby's randomized MIS protocol.

    Each phase takes two rounds.  Odd round: every still-undecided
    vertex has broadcast a fresh random priority in the previous round;
    a vertex whose (priority, ID) beats every priority it received
    joins the MIS and announces ``IN``.  Even round: vertices that
    received an ``IN`` leave as out and halt; winners halt as in; the
    rest redraw and re-announce.  Decided vertices stop sending
    priorities, so the comparisons automatically restrict to undecided
    neighbors.  With high probability O(log n) phases decide everyone.
    """

    def __init__(self, max_phases: int) -> None:
        self.max_phases = max_phases
        self.state = "undecided"
        self.priority: Optional[Tuple[float, Any]] = None

    def initialize(self, ctx: VertexContext) -> None:
        self._draw_and_announce(ctx)

    def _draw_and_announce(self, ctx: VertexContext) -> None:
        self.priority = (ctx.rng.random(), ctx.vertex)
        ctx.broadcast(("PRI", self.priority[0]))

    def step(self, ctx: VertexContext, inbox: Dict[Any, List[Any]]) -> None:
        if ctx.round_number % 2 == 1:
            # Comparison round: join iff best among undecided neighbors.
            if self.state != "undecided":
                return
            best = True
            for neighbor, payloads in inbox.items():
                for tag, value in payloads:
                    if tag == "PRI" and (value, neighbor) > self.priority:
                        best = False
            if best:
                self.state = "in"
                ctx.broadcast(("IN", 0.0))
        else:
            # Resolution round: losers of an IN neighbor leave.
            if self.state == "undecided":
                for _neighbor, payloads in inbox.items():
                    if any(tag == "IN" for tag, _v in payloads):
                        self.state = "out"
                        break
            if self.state != "undecided":
                ctx.halt(self.state == "in")
                return
            if ctx.round_number >= 2 * self.max_phases:
                # Budget exhausted (failure path); stay out.
                ctx.halt(False)
                return
            self._draw_and_announce(ctx)


def luby_mis(
    graph: Graph, seed: SeedLike = None, max_phases: Optional[int] = None
) -> Tuple[Set, SimulationResult]:
    """Run Luby's MIS on the CONGEST simulator; returns (MIS, result)."""
    import math

    if max_phases is None:
        max_phases = 8 * max(1, math.ceil(math.log2(graph.n + 2)))
    simulator = CongestSimulator(
        graph, lambda v: LubyMIS(max_phases), seed=seed
    )
    result = simulator.run(max_rounds=2 * max_phases + 4)
    mis = {v for v, in_mis in result.outputs.items() if in_mis}
    return mis, result
