"""Exact maximum independent set by branch and bound.

Designed for the sparse cluster-sized graphs the framework produces:

* degree-0/1 reductions peel most of a minor-free graph for free;
* degree-2 vertices are eliminated exactly — triangle ears are taken
  outright, and paths u - v - w with non-adjacent u, w are *folded*
  (alpha(G) = alpha(G/fold) + 1), the reduction that makes planar
  instances tractable;
* connected components are solved independently;
* branching targets the highest-degree vertex, and the "exclude"
  branch is skipped whenever a matching-based upper bound proves it
  cannot win.

A node budget turns worst-case blowups into a loud
:class:`SolverError` instead of a silent hang.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..errors import SolverError
from ..graph import Graph

#: Default search budget (branch nodes) before giving up.
DEFAULT_NODE_BUDGET = 2_000_000


class _MaxisSearch:
    def __init__(self, graph: Graph, budget: int) -> None:
        self.adj: Dict = {
            v: set(graph.neighbors(v)) for v in graph.vertices()
        }
        self.budget = budget
        self.nodes = 0
        self._fold_counter = 0

    # ------------------------------------------------------------------
    def solve(self, vertices: Set) -> Set:
        """Best independent set within the induced subgraph on ``vertices``.

        Fold vertices created during this call are expanded back to
        original vertices before returning, so callers always see
        genuine vertices (possibly including folds created by *their*
        callers, which they expand in turn).
        """
        self.nodes += 1
        if self.nodes > self.budget:
            raise SolverError("exact MAXIS exceeded its node budget")

        chosen: Set = set()
        remaining = set(vertices)
        # Folds performed in this call, in creation order:
        # (fold_vertex, original_v, neighbor_u, neighbor_w).
        local_folds: List[Tuple] = []

        # Reductions to a (min-degree >= 3) kernel.
        changed = True
        while changed:
            changed = False
            for v in list(remaining):
                if v not in remaining:
                    continue  # removed earlier in this same sweep
                live = self.adj[v] & remaining
                if len(live) == 0:
                    chosen.add(v)
                    remaining.discard(v)
                    changed = True
                elif len(live) == 1:
                    # Taking a leaf is never worse than its neighbor.
                    chosen.add(v)
                    remaining.discard(v)
                    remaining -= live
                    changed = True
                elif len(live) == 2:
                    u, w = live
                    remaining.discard(v)
                    remaining.discard(u)
                    remaining.discard(w)
                    if w in self.adj[u]:
                        # Triangle ear: u and w exclude each other, so
                        # taking v is always optimal.
                        chosen.add(v)
                    else:
                        f = self._fold(v, u, w)
                        local_folds.append((f, v, u, w))
                        remaining.add(f)
                    changed = True

        if remaining:
            components = self._components(remaining)
            if len(components) > 1:
                best: Set = set()
                for comp in components:
                    best |= self.solve(comp)
            else:
                best = self._branch(remaining)
        else:
            best = set()

        result = chosen | best
        # Expand this call's folds, newest first (a later fold may have
        # an earlier fold vertex as one of its endpoints), and retire
        # each fold vertex from the shared adjacency — otherwise fold
        # vertices accumulate across the whole search and every
        # neighborhood intersection slows down.
        for f, v, u, w in reversed(local_folds):
            if f in result:
                result.discard(f)
                result.add(u)
                result.add(w)
            else:
                result.add(v)
            for x in self.adj[f]:
                if x in self.adj:
                    self.adj[x].discard(f)
            del self.adj[f]
        return result

    def _branch(self, remaining: Set) -> Set:
        """Branch on the highest-degree vertex of a connected kernel."""
        v = None
        best_deg = -1
        for u in remaining:
            deg = len(self.adj[u] & remaining)
            if deg > best_deg:
                best_deg = deg
                v = u
        closed = (self.adj[v] & remaining) | {v}

        with_v = self.solve(remaining - closed) | {v}
        rest = remaining - {v}
        if self._upper_bound(rest) > len(with_v):
            without = self.solve(rest)
            if len(without) > len(with_v):
                return without
        return with_v

    # ------------------------------------------------------------------
    def _fold(self, v, u, w):
        """Create the folded vertex for the induced path u - v - w."""
        self._fold_counter += 1
        f = ("fold#", self._fold_counter)
        neighbors = (self.adj[u] | self.adj[w]) - {u, v, w}
        self.adj[f] = set(neighbors)
        for x in neighbors:
            self.adj[x].add(f)
        return f

    def _upper_bound(self, remaining: Set) -> int:
        """Clique-packing bound: greedy disjoint triangles, then edges.

        An independent set contains at most one vertex of each packed
        triangle (cost 2) and of each matched edge (cost 1).  On the
        triangulation-like kernels minor-free graphs produce, the
        triangle layer makes this far sharper than a pure matching
        bound.
        """
        used: Set = set()
        cost = 0
        for u in remaining:
            if u in used:
                continue
            nbrs = [
                w for w in self.adj[u] if w in remaining and w not in used
            ]
            found_triangle = False
            for i, w in enumerate(nbrs):
                for x in nbrs[i + 1:]:
                    if x in self.adj[w]:
                        used.update((u, w, x))
                        cost += 2
                        found_triangle = True
                        break
                if found_triangle:
                    break
            if not found_triangle and nbrs:
                used.add(u)
                used.add(nbrs[0])
                cost += 1
        return len(remaining) - cost

    def _components(self, remaining: Set) -> List[Set]:
        comps: List[Set] = []
        seen: Set = set()
        for start in remaining:
            if start in seen:
                continue
            comp = {start}
            stack = [start]
            while stack:
                u = stack.pop()
                for w in self.adj[u]:
                    if w in remaining and w not in comp:
                        comp.add(w)
                        stack.append(w)
            seen |= comp
            comps.append(comp)
        return comps


def two_improvement_is(graph: Graph, start: Set) -> Set:
    """Improve an independent set by (1-out, 2-in) swaps to a local optimum.

    Classic planar-IS local search: remove one chosen vertex whenever
    that frees two addable vertices.  Blocker sets are maintained
    incrementally, so each sweep is near-linear.  Used as the fallback
    when the exact search exceeds its node budget on an oversized
    cluster.
    """
    chosen = set(start)
    # blockers[v] = chosen neighbors of a non-chosen vertex v.
    blockers: Dict = {
        v: {u for u in graph.neighbors(v) if u in chosen}
        for v in graph.vertices()
        if v not in chosen
    }

    def add(v) -> None:
        chosen.add(v)
        blockers.pop(v, None)
        for w in graph.neighbors(v):
            if w in blockers:
                blockers[w].add(v)

    def remove(u) -> None:
        chosen.discard(u)
        blockers[u] = {w for w in graph.neighbors(u) if w in chosen}
        for w in graph.neighbors(u):
            if w in blockers:
                blockers[w].discard(u)

    improved = True
    while improved:
        improved = False
        # Free additions.
        for v in [v for v, b in blockers.items() if not b]:
            if v in blockers and not blockers[v]:
                add(v)
                improved = True
        # 1-out / 2-in swaps.
        for u in list(chosen):
            if u not in chosen:
                continue
            candidates = [
                v
                for v in graph.neighbors(u)
                if v in blockers and blockers[v] == {u}
            ]
            done = False
            for i, a in enumerate(candidates):
                for b in candidates[i + 1:]:
                    if not graph.has_edge(a, b):
                        remove(u)
                        add(a)
                        add(b)
                        improved = True
                        done = True
                        break
                if done:
                    break
    return chosen


def solve_maxis(graph: Graph, node_budget: int = 100_000) -> Set:
    """Exact MAXIS when affordable, strong local search otherwise.

    The framework's leaders use this solver: a bounded run of the exact
    branch and bound, falling back to min-degree greedy plus
    2-improvement local search when the cluster is beyond the exact
    envelope.  The fallback is only approximate, which experiment E4
    accounts for by reporting measured ratios.
    """
    from .greedy import greedy_min_degree_is

    try:
        return exact_maxis(graph, node_budget=node_budget)
    except SolverError:
        return two_improvement_is(graph, greedy_min_degree_is(graph))


def exact_maxis(graph: Graph, node_budget: int = DEFAULT_NODE_BUDGET) -> Set:
    """Compute a maximum independent set of ``graph``.

    Exact; exponential in the worst case but fast on the sparse
    clusters the framework produces (degree-2 folding makes planar
    instances near-linear in practice).  Raises :class:`SolverError` if
    the branch-node budget is exhausted.
    """
    search = _MaxisSearch(graph, node_budget)
    result = search.solve(set(graph.vertices()))
    # Safety net: the result must be independent.
    for v in result:
        if any(u in result for u in graph.neighbors(v)):
            raise SolverError("internal error: produced a dependent set")
    return result
