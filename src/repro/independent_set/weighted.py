"""Weighted maximum independent set (extension).

The paper's Section 1.1 surveys *weighted* MAXIS baselines
(Bar-Yehuda et al. [10]: (1/Delta)-approx in MIS(n, Delta) * log W
rounds); the framework upgrades them on minor-free networks the same
way as the unweighted problem: exact per-cluster solves plus conflict
resolution on cut edges (dropping the lighter endpoint).

Approximation note: the unweighted Section 3.1 charging uses
alpha(G) = Theta(n).  The weighted analogue alpha_w(G) >=
W_total / (degeneracy + 1) holds via greedy coloring, but a cut edge
can now cost up to W = max weight, so the guaranteed ratio carries a
W_max/W_avg factor; experiment measurements (test suite) show ratios
track 1 - epsilon on the integer-weight workloads the paper assumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set

from ..core.framework import FrameworkResult, density_bound, run_framework
from ..errors import SolverError
from ..graph import Graph
from ..rng import SeedLike, ensure_rng

#: Default search budget (branch nodes) before giving up.
DEFAULT_NODE_BUDGET = 300_000

Weights = Dict[Any, float]


def greedy_weighted_is(graph: Graph, weights: Weights) -> Set:
    """Greedy by weight-to-coverage ratio w(v) / (deg(v) + 1)."""
    remaining = set(graph.vertices())
    chosen: Set = set()
    while remaining:
        best = max(
            remaining,
            key=lambda v: (
                weights.get(v, 0.0)
                / (1 + sum(1 for u in graph.neighbors(v) if u in remaining)),
                repr(v),
            ),
        )
        chosen.add(best)
        remaining.discard(best)
        remaining -= set(graph.neighbors(best))
    return chosen


class _WeightedSearch:
    def __init__(self, graph: Graph, weights: Weights, budget: int) -> None:
        self.adj: Dict = {
            v: set(graph.neighbors(v)) for v in graph.vertices()
        }
        self.weights = weights
        self.budget = budget
        self.nodes = 0

    def solve(self, remaining: Set) -> Set:
        self.nodes += 1
        if self.nodes > self.budget:
            raise SolverError("exact weighted MAXIS exceeded its node budget")

        chosen: Set = set()
        live = set(remaining)
        # Reduction: an isolated vertex with positive weight is free.
        for v in list(live):
            if not (self.adj[v] & live):
                if self.weights.get(v, 0.0) > 0:
                    chosen.add(v)
                live.discard(v)
        if not live:
            return chosen

        components = self._components(live)
        if len(components) > 1:
            for comp in components:
                chosen |= self.solve(comp)
            return chosen

        v = max(
            live,
            key=lambda u: (len(self.adj[u] & live), self.weights.get(u, 0.0)),
        )
        closed = (self.adj[v] & live) | {v}
        with_v = self.solve(live - closed)
        if self.weights.get(v, 0.0) > 0:
            with_v = with_v | {v}
        rest = live - {v}
        if self._upper_bound(rest) > self._weight(with_v):
            without = self.solve(rest)
            if self._weight(without) > self._weight(with_v):
                return chosen | without
        return chosen | with_v

    def _weight(self, vertices: Set) -> float:
        return sum(self.weights.get(v, 0.0) for v in vertices)

    def _upper_bound(self, remaining: Set) -> float:
        """Total positive weight minus the lighter endpoint of a greedy
        matching (at most one endpoint of each edge can be chosen)."""
        total = sum(
            max(0.0, self.weights.get(v, 0.0)) for v in remaining
        )
        used: Set = set()
        discount = 0.0
        for u in remaining:
            if u in used:
                continue
            for w in self.adj[u]:
                if w in remaining and w not in used:
                    used.add(u)
                    used.add(w)
                    discount += max(
                        0.0,
                        min(
                            self.weights.get(u, 0.0),
                            self.weights.get(w, 0.0),
                        ),
                    )
                    break
        return total - discount

    def _components(self, remaining: Set) -> List[Set]:
        comps: List[Set] = []
        seen: Set = set()
        for start in remaining:
            if start in seen:
                continue
            comp = {start}
            stack = [start]
            while stack:
                u = stack.pop()
                for w in self.adj[u]:
                    if w in remaining and w not in comp:
                        comp.add(w)
                        stack.append(w)
            seen |= comp
            comps.append(comp)
        return comps


def exact_weighted_maxis(
    graph: Graph,
    weights: Weights,
    node_budget: int = DEFAULT_NODE_BUDGET,
) -> Set:
    """Maximum-weight independent set by branch and bound."""
    result = _WeightedSearch(graph, weights, node_budget).solve(
        set(graph.vertices())
    )
    for v in result:
        if any(u in result for u in graph.neighbors(v)):
            raise SolverError("internal error: produced a dependent set")
    return result


def solve_weighted_maxis(
    graph: Graph, weights: Weights, node_budget: int = 100_000
) -> Set:
    """Exact when affordable, ratio-greedy otherwise."""
    try:
        return exact_weighted_maxis(graph, weights, node_budget=node_budget)
    except SolverError:
        return greedy_weighted_is(graph, weights)


@dataclass
class DistributedWeightedISResult:
    independent_set: Set
    weight: float
    epsilon: float
    framework: FrameworkResult


def distributed_weighted_maxis(
    graph: Graph,
    weights: Weights,
    epsilon: float,
    phi: Optional[float] = None,
    seed: SeedLike = None,
) -> DistributedWeightedISResult:
    """Framework-based weighted MAXIS on minor-free networks.

    Vertex weights must be non-negative integers (the paper's
    convention); each vertex annotates its HELLO token with its weight,
    so leaders solve the genuine weighted subproblem.  Conflicts on cut
    edges drop the lighter endpoint.
    """
    if not 0.0 < epsilon < 1.0:
        raise SolverError("epsilon must lie in (0, 1)")
    for v in graph.vertices():
        w = weights.get(v, 0)
        if w < 0 or not float(w).is_integer():
            raise SolverError(
                "weights must be non-negative integers"
            )
    rng = ensure_rng(seed)
    d = density_bound(graph)
    epsilon_prime = epsilon / (2.0 * d + 1.0)

    def annotate(v: Any) -> int:
        return int(weights.get(v, 0))

    def solver(sub: Graph, leader: Any, notes: Dict) -> Dict[Any, Any]:
        local_weights = {v: float(notes.get(v, 0) or 0) for v in sub.vertices()}
        chosen = solve_weighted_maxis(sub, local_weights)
        return {v: (1 if v in chosen else 0) for v in sub.vertices()}

    framework = run_framework(
        graph,
        epsilon_prime,
        solver=solver,
        phi=phi,
        seed=rng.getrandbits(64),
        annotate=annotate,
    )
    candidate = {v for v, take in framework.answers.items() if take == 1}
    dropped: Set = set()
    for u, v in framework.decomposition.cut_edges:
        if u in candidate and v in candidate and u not in dropped and v not in dropped:
            lighter = min(
                (u, v), key=lambda x: (weights.get(x, 0), repr(x))
            )
            dropped.add(lighter)
    independent = candidate - dropped
    for v in independent:
        if any(u in independent for u in graph.neighbors(v)):
            raise SolverError("distributed weighted MAXIS produced a dependent set")
    return DistributedWeightedISResult(
        independent_set=independent,
        weight=sum(weights.get(v, 0) for v in independent),
        epsilon=epsilon,
        framework=framework,
    )
