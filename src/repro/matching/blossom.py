"""Maximum cardinality matching via Edmonds' blossom algorithm.

A from-scratch O(V^3) implementation of Edmonds 1965: repeatedly grow
alternating BFS forests from free vertices, contracting odd cycles
(blossoms) on the fly via a ``base`` array, and augmenting along the
discovered path.  This is the exact solver cluster leaders run in the
Section 3.2 planar MCM pipeline, and the oracle the MCM experiments
compare against.  The test suite cross-validates it against brute force
and networkx on thousands of random instances.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from ..graph import Graph, edge_key
from .util import Matching


class _Blossom:
    """State of one run of the blossom algorithm over an indexed graph."""

    def __init__(self, n: int, adjacency: List[List[int]]) -> None:
        self.n = n
        self.adj = adjacency
        self.match: List[int] = [-1] * n
        # BFS state, reset per augmentation phase.
        self.parent: List[int] = [-1] * n
        self.base: List[int] = list(range(n))
        self.in_queue: List[bool] = [False] * n
        self.in_blossom: List[bool] = [False] * n

    # ------------------------------------------------------------------
    def solve(self) -> List[int]:
        for v in range(self.n):
            if self.match[v] == -1:
                self._find_augmenting_path(v)
        return self.match

    # ------------------------------------------------------------------
    def _lca(self, a: int, b: int) -> int:
        """Lowest common ancestor of a and b in the alternating forest."""
        visited = [False] * self.n
        x = a
        while True:
            x = self.base[x]
            visited[x] = True
            if self.match[x] == -1:
                break
            x = self.parent[self.match[x]]
        y = b
        while True:
            y = self.base[y]
            if visited[y]:
                return y
            y = self.parent[self.match[y]]

    def _mark_path(self, v: int, b: int, child: int) -> None:
        """Mark blossom vertices on the path from v down to base b."""
        while self.base[v] != b:
            self.in_blossom[self.base[v]] = True
            self.in_blossom[self.base[self.match[v]]] = True
            self.parent[v] = child
            child = self.match[v]
            v = self.parent[self.match[v]]

    def _find_augmenting_path(self, root: int) -> bool:
        self.parent = [-1] * self.n
        self.base = list(range(self.n))
        self.in_queue = [False] * self.n
        queue = deque([root])
        self.in_queue[root] = True

        while queue:
            v = queue.popleft()
            for to in self.adj[v]:
                if self.base[v] == self.base[to] or self.match[v] == to:
                    continue
                if to == root or (
                    self.match[to] != -1 and self.parent[self.match[to]] != -1
                ):
                    # An odd cycle: contract the blossom.
                    cur_base = self._lca(v, to)
                    self.in_blossom = [False] * self.n
                    self._mark_path(v, cur_base, to)
                    self._mark_path(to, cur_base, v)
                    for i in range(self.n):
                        if self.in_blossom[self.base[i]]:
                            self.base[i] = cur_base
                            if not self.in_queue[i]:
                                self.in_queue[i] = True
                                queue.append(i)
                elif self.parent[to] == -1:
                    self.parent[to] = v
                    if self.match[to] == -1:
                        self._augment(to)
                        return True
                    if not self.in_queue[self.match[to]]:
                        self.in_queue[self.match[to]] = True
                        queue.append(self.match[to])
        return False

    def _augment(self, v: int) -> None:
        """Flip matched/unmatched along the alternating path ending at v."""
        while v != -1:
            pv = self.parent[v]
            next_v = self.match[pv]
            self.match[v] = pv
            self.match[pv] = v
            v = next_v


def max_cardinality_matching(graph: Graph) -> Matching:
    """Compute a maximum cardinality matching of ``graph``.

    Returns the matching as a set of canonical edge tuples.  Runs in
    O(V^3); intended for cluster-sized graphs (hundreds of vertices),
    which is the regime the framework produces.
    """
    indexed, mapping = graph.relabeled()
    inverse = {i: v for v, i in mapping.items()}
    adjacency: List[List[int]] = [[] for _ in range(indexed.n)]
    for u, v in indexed.edges():
        adjacency[u].append(v)
        adjacency[v].append(u)

    match = _Blossom(indexed.n, adjacency).solve()
    result: Matching = set()
    for v, partner in enumerate(match):
        if partner != -1 and v < partner:
            result.add(edge_key(inverse[v], inverse[partner]))
    return result
