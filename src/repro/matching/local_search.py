"""Sequential (1 - epsilon) MWM by bounded augmentations.

The folklore local-search theorem behind short-augmentation matching
algorithms (and behind the structure of Duan-Pettie's scaling
algorithm, which the paper embeds its framework into): if a matching M
admits no improving *augmentation of size at most k* — a connected
subgraph of M xor M* with at most k M*-edges — then
w(M) >= (1 - 1/(k+1)) w(M*), because the symmetric difference with an
optimum decomposes into alternating paths/cycles, and chopping each
into pieces with at most k OPT-edges loses at most a 1/(k+1) fraction.

The implementation searches alternating paths of bounded length by
depth-first enumeration from each vertex; with k = ceil(1/epsilon) it
yields a sequential (1 - epsilon)-approximation whose runtime is
exponential only in 1/epsilon, mirroring the round/locality structure
of the distributed algorithms it anchors.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

from ..errors import SolverError
from ..graph import Graph, edge_key
from .util import Matching, matching_weight


def _best_alternating_gain(
    graph: Graph,
    mate: Dict,
    start,
    max_unmatched: int,
) -> Tuple[float, List[Tuple]]:
    """Best augmentation starting at ``start`` with <= max_unmatched new edges.

    Explores alternating walks start -(new)-> u -(matched)-> ... where
    the first and every odd edge is a candidate new edge and every even
    edge is the forced matched edge of its endpoint.  Returns the gain
    and the list of (add, remove) toggles of the best augmentation
    found (empty when none improves).
    """
    best_gain = 1e-12
    best_toggle: List[Tuple] = []

    def dfs(v, used: Set, gain: float, toggles: List[Tuple], budget: int):
        nonlocal best_gain, best_toggle
        for u in graph.neighbors(v):
            if u in used:
                continue
            e = edge_key(v, u)
            if mate.get(v) == u:
                continue
            add_gain = gain + graph.weight(v, u)
            new_toggles = toggles + [("add", e)]
            partner = mate.get(u)
            if partner is None:
                # Augmentation ends at a free vertex.
                if add_gain > best_gain:
                    best_gain = add_gain
                    best_toggle = list(new_toggles)
                continue
            # u is matched: the walk must continue through its mate.
            drop_gain = add_gain - graph.weight(u, partner)
            dropped = new_toggles + [("remove", edge_key(u, partner))]
            if drop_gain > best_gain:
                # Rotation/substitution improvement (path ends here,
                # leaving `partner` temporarily free).
                best_gain = drop_gain
                best_toggle = list(dropped)
            if budget > 1:
                dfs(
                    partner,
                    used | {u, partner},
                    drop_gain,
                    dropped,
                    budget - 1,
                )

    # The walk may also *start* by dropping start's matched edge.
    if start in mate:
        partner = mate[start]
        base_gain = -graph.weight(start, partner)
        dfs(
            partner,
            {start, partner},
            base_gain,
            [("remove", edge_key(start, partner))],
            max_unmatched,
        )
    else:
        dfs(start, {start}, 0.0, [], max_unmatched)
    return best_gain, best_toggle


def local_search_mwm(
    graph: Graph,
    epsilon: float = 0.2,
    max_passes: Optional[int] = None,
) -> Matching:
    """(1 - epsilon)-approximate MWM by bounded local search.

    ``k = ceil(1/epsilon)`` bounds the number of non-matching edges per
    augmentation.  Passes repeat until no vertex admits an improving
    augmentation (or ``max_passes`` is hit — the weight is monotone, so
    early stopping only costs quality, never validity).
    """
    if not 0.0 < epsilon < 1.0:
        raise SolverError("epsilon must lie in (0, 1)")
    k = max(1, math.ceil(1.0 / epsilon))
    mate: Dict = {}

    def apply(toggles: List[Tuple]) -> None:
        for action, (u, v) in toggles:
            if action == "remove":
                mate.pop(u, None)
                mate.pop(v, None)
        for action, (u, v) in toggles:
            if action == "add":
                mate[u] = v
                mate[v] = u

    passes = 0
    improved = True
    while improved:
        passes += 1
        if max_passes is not None and passes > max_passes:
            break
        improved = False
        for v in graph.vertices():
            gain, toggles = _best_alternating_gain(graph, mate, v, k)
            if toggles and gain > 1e-9:
                apply(toggles)
                improved = True
    return {edge_key(u, mate[u]) for u in mate}
