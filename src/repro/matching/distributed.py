"""Distributed matching via the framework (Theorems 3.2 and 1.1).

``distributed_mcm_planar`` is Section 3.2 verbatim: eliminate 2-stars
and 3-double-stars (so the optimum is Omega(n) by Lemma 3.1), run the
Theorem 2.6 framework with parameter c * epsilon, solve each cluster
exactly with the blossom algorithm at its leader, and take the union —
losing only the <= epsilon' * n inter-cluster optimum edges.

``distributed_mwm`` operationalizes Theorem 1.1.  The paper's full
algorithm embeds the framework into Duan-Pettie's scaling algorithm;
per the DESIGN.md substitution policy we implement the same
architecture — repeated framework rounds whose leaders re-optimize the
current matching exactly inside their clusters — with randomized
cluster boundaries standing in for the scaling machinery: every
iteration is weight-monotone (the old intra-cluster matching is a
feasible solution of each cluster's subproblem), and boundary
randomization lets edges stuck across clusters be re-optimized in later
rounds.  Experiment E6 measures the resulting approximation ratio
against the exact weighted blossom across weight scales W.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from ..congest import (
    CongestMetrics,
    CongestSimulator,
    SimulationResult,
    VertexAlgorithm,
    VertexContext,
)
from ..congest.algorithm import register_kernel
from ..congest.kernels import KernelBase, seg_count, seg_max
from ..core.framework import FrameworkResult, run_framework
from ..errors import SolverError
from ..graph import Graph, edge_key
from ..rng import SeedLike, ensure_rng
from .blossom import max_cardinality_matching
from .preprocess import eliminate_stars
from .util import Matching, is_matching, matching_weight
from .weighted import max_weight_matching


@dataclass
class DistributedMatchingResult:
    """A matching plus the complete execution record that produced it."""

    matching: Matching
    weight: float
    epsilon: float
    rounds: List[FrameworkResult] = field(default_factory=list)
    removed_vertices: Set = field(default_factory=set)

    @property
    def size(self) -> int:
        return len(self.matching)

    def metrics(self) -> CongestMetrics:
        """Sequential composition of all framework rounds."""
        total = CongestMetrics()
        for result in self.rounds:
            total = total.merge(result.metrics)
        return total


def _matching_from_answers(graph: Graph, answers: Dict[Any, Any]) -> Matching:
    """Reconstruct a matching from per-vertex partner answers.

    Only mutual (reciprocated) claims become edges, so even a corrupted
    answer set can never produce an invalid matching.
    """
    matching: Matching = set()
    for v, partner in answers.items():
        if partner is None:
            continue
        if isinstance(partner, int) and partner < 0:
            continue
        if answers.get(partner) == v and graph.has_edge(v, partner):
            matching.add(edge_key(v, partner))
    return matching


class ProposalMatching(VertexAlgorithm):
    """One vertex of a randomized proposal-based maximal matching.

    Three-round phases.  Propose round (``r % 3 == 1``): retire
    neighbors that announced a match, halt if the budget is exhausted
    or no active neighbor remains, otherwise flip a coin and propose to
    a uniformly random active neighbor.  Accept round: an unmatched
    non-proposer accepts its highest-ID proposer.  Resolve round:
    proposers learn their fate; every newly matched vertex announces
    ``MATCHED`` to all neighbors and halts with its mate.

    Maximality: a vertex only halts unmatched when every neighbor has
    announced, so an edge with both endpoints unmatched can never
    survive.  Each phase matches a constant fraction of the remaining
    matchable vertices in expectation, so O(log n) phases suffice with
    high probability.
    """

    PROPOSE, ACCEPT, MATCHED = 1, 2, 3

    def __init__(self, max_phases: int) -> None:
        self.max_phases = max_phases
        self.matched = False
        self.mate: Optional[Any] = None
        self.announced = False
        self.proposed_to: Optional[Any] = None
        self.active: Optional[Set[Any]] = None

    def initialize(self, ctx: VertexContext) -> None:
        self.active = set(ctx.neighbors)

    def step(self, ctx: VertexContext, inbox: Dict[Any, List[Any]]) -> None:
        r = ctx.round_number
        phase = r % 3
        if phase == 1:
            # Propose round: inbox holds last resolve's announcements.
            for sender, payloads in inbox.items():
                if any(p == self.MATCHED for p in payloads):
                    self.active.discard(sender)
            if r > 3 * self.max_phases:
                ctx.halt(None)
                return
            if not self.active:
                ctx.halt(None)
                return
            if ctx.rng.random() < 0.5:
                target = ctx.rng.choice(sorted(self.active))
                self.proposed_to = target
                ctx.send(target, self.PROPOSE)
        elif phase == 2:
            # Accept round: proposers sit out; others take the best.
            if self.matched or self.proposed_to is not None:
                return
            proposers = [
                sender
                for sender, payloads in inbox.items()
                if any(p == self.PROPOSE for p in payloads)
            ]
            if proposers:
                self.matched = True
                self.mate = max(proposers)
                ctx.send(self.mate, self.ACCEPT)
        else:
            # Resolve round: proposers learn their fate; the newly
            # matched announce and halt.
            if self.proposed_to is not None:
                if any(
                    p == self.ACCEPT
                    for p in inbox.get(self.proposed_to, ())
                ):
                    self.matched = True
                    self.mate = self.proposed_to
                self.proposed_to = None
            if self.matched and not self.announced:
                self.announced = True
                ctx.broadcast(self.MATCHED)
                ctx.halt(self.mate)


@register_kernel(ProposalMatching)
class ProposalMatchingKernel(KernelBase):
    """Columnar twin of :class:`ProposalMatching` (``docs/kernels.md``).

    The active sets live as one boolean mask over the CSR edge array,
    so "propose to the k-th active neighbor" is a cumulative-sum lookup
    and retiring announced neighbors is a masked store.  Proposals and
    acceptances reconstruct from the senders' columns stamped with the
    round they were made in, which keeps them valid under crash faults
    (a stale stamp never matches the current phase).
    """

    emits_send_plans = True

    @classmethod
    def _supports_population(cls, engine) -> bool:
        first = engine._algorithms[0].max_phases
        return all(a.max_phases == first for a in engine._algorithms)

    def _load_columns(self) -> None:
        np = self.np
        n = self.n
        index = self.engine._index
        indptr = self.indptr
        nbr = self.nbr
        self.max_phases = self.algorithms[0].max_phases
        self.started = np.zeros(n, bool)
        self.matched = np.zeros(n, bool)
        self.announced = np.zeros(n, bool)
        self.mate = np.full(n, -1, np.int64)
        self.proposed = np.full(n, -1, np.int64)
        self.prop_round = np.full(n, -1, np.int64)
        self.acc_round = np.full(n, -1, np.int64)
        self.sent_ann = np.zeros(n, bool)  # announced in the last round
        self.act_e = np.zeros(nbr.shape[0], bool)
        for i, a in enumerate(self.algorithms):
            if a.active is None:
                continue
            self.started[i] = True
            self.matched[i] = a.matched
            self.announced[i] = a.announced
            if a.mate is not None:
                self.mate[i] = index[a.mate]
            if a.proposed_to is not None:
                self.proposed[i] = index[a.proposed_to]
                # The proposal is from the most recent propose round at
                # or before the vertex's last step.
                r = self.contexts[i].round_number
                self.prop_round[i] = r - ((r - 1) % 3)
            if a.active:
                act = {index[u] for u in a.active}
                lo, hi = int(indptr[i]), int(indptr[i + 1])
                self.act_e[lo:hi] = [
                    j in act for j in nbr[lo:hi].tolist()
                ]

    def _write_columns(self) -> None:
        verts = self.verts
        indptr = self.indptr
        nbr = self.nbr
        act_e = self.act_e
        started = self.started.tolist()
        matched = self.matched.tolist()
        announced = self.announced.tolist()
        mate = self.mate.tolist()
        proposed = self.proposed.tolist()
        for i, a in enumerate(self.algorithms):
            if not started[i]:
                continue
            a.matched = matched[i]
            a.announced = announced[i]
            a.mate = verts[mate[i]] if mate[i] >= 0 else None
            a.proposed_to = (
                verts[proposed[i]] if proposed[i] >= 0 else None
            )
            lo, hi = int(indptr[i]), int(indptr[i + 1])
            a.active = {
                verts[j]
                for j, flag in zip(
                    nbr[lo:hi].tolist(), act_e[lo:hi].tolist()
                )
                if flag
            }

    def _initialize_rows(self, rows) -> None:
        np = self.np
        self.started[rows] = True
        sel = np.zeros(self.n, bool)
        sel[rows] = True
        self.act_e[sel[self.edge_dst]] = True

    def _step_rows(self, rows, round_number: int, boxes) -> None:
        phase = round_number % 3
        if phase == 1:
            self._propose(rows, round_number, boxes)
        elif phase == 2:
            self._accept(rows, round_number, boxes)
        else:
            self._resolve(rows, round_number, boxes)

    def _propose(self, rows, r: int, boxes) -> None:
        np = self.np
        indptr = self.indptr
        nbr = self.nbr
        # Retire neighbors that announced a match last resolve.
        if boxes is not None:
            index = self.engine._index
            for i, box in zip(rows.tolist(), boxes):
                lo, hi = int(indptr[i]), int(indptr[i + 1])
                seg = nbr[lo:hi]
                for sender, payloads in box.items():
                    if any(
                        p == ProposalMatching.MATCHED for p in payloads
                    ):
                        pos = lo + int(
                            np.searchsorted(seg, index[sender])
                        )
                        self.act_e[pos] = False
        else:
            due_mask = np.zeros(self.n, bool)
            due_mask[rows] = True
            self.act_e[due_mask[self.edge_dst] & self.sent_ann[nbr]] = (
                False
            )
        self.sent_ann[:] = False
        if r > 3 * self.max_phases:
            # Budget exhausted (failure path); stay unmatched.
            for i in rows.tolist():
                self._halt(i, None)
            return
        cnt = seg_count(self.act_e, indptr)
        for i in rows[cnt[rows] == 0].tolist():
            self._halt(i, None)
        alive = rows[cnt[rows] > 0]
        if alive.size == 0:
            return
        # Scalar draws (coin, then the proposers' pick) exactly as the
        # scalar twin orders them: ``rng.random() < 0.5`` then
        # ``rng.choice(sorted(active))``, whose index draw is
        # ``_randbelow(len(active))``.  See "RNG discipline" in
        # docs/kernels.md for why these stay on the scalar generators.
        contexts = self.contexts
        coins = np.array(
            [contexts[i].rng.random() for i in alive.tolist()]
        )
        proposers = alive[coins < 0.5]
        if proposers.size == 0:
            return
        picks = np.array(
            [
                contexts[i].rng._randbelow(c)
                for i, c in zip(
                    proposers.tolist(), cnt[proposers].tolist()
                )
            ],
            dtype=np.int64,
        )
        # The k-th active neighbor, via a cumulative count of act_e.
        pref = np.concatenate(
            (np.zeros(1, np.int64), np.cumsum(self.act_e, dtype=np.int64))
        )
        edge = (
            np.searchsorted(
                pref, pref[indptr[proposers]] + picks + 1, side="left"
            )
            - 1
        )
        targets = nbr[edge]
        self.proposed[proposers] = targets
        self.prop_round[proposers] = r
        self._emit_send(proposers, targets, ProposalMatching.PROPOSE)

    def _accept(self, rows, r: int, boxes) -> None:
        np = self.np
        eligible = rows[~self.matched[rows] & (self.proposed[rows] < 0)]
        if boxes is not None:
            index = self.engine._index
            box_by_row = dict(zip(rows.tolist(), boxes))
            rows_w: List[int] = []
            winners: List[int] = []
            for i in eligible.tolist():
                best = -1
                for sender, payloads in box_by_row[i].items():
                    if any(
                        p == ProposalMatching.PROPOSE for p in payloads
                    ):
                        best = max(best, index[sender])
                if best >= 0:
                    rows_w.append(i)
                    winners.append(best)
            acc_rows = np.array(rows_w, dtype=np.intp)
            acc_mate = np.array(winners, dtype=np.int64)
        else:
            nbr = self.nbr
            dst = self.edge_dst
            prop_e = (self.proposed[nbr] == dst) & (
                self.prop_round[nbr] == r - 1
            )
            mx = seg_max(np.where(prop_e, nbr, -1), self.indptr, -1)
            acc_rows = eligible[mx[eligible] >= 0]
            acc_mate = mx[acc_rows]
        if acc_rows.size == 0:
            return
        self.matched[acc_rows] = True
        self.mate[acc_rows] = acc_mate
        self.acc_round[acc_rows] = r
        self._emit_send(acc_rows, acc_mate, ProposalMatching.ACCEPT)

    def _resolve(self, rows, r: int, boxes) -> None:
        np = self.np
        prop_rows = rows[self.proposed[rows] >= 0]
        if prop_rows.size:
            targets = self.proposed[prop_rows]
            if boxes is not None:
                box_by_row = dict(zip(rows.tolist(), boxes))
                verts = self.verts
                ok = np.array(
                    [
                        any(
                            p == ProposalMatching.ACCEPT
                            for p in box_by_row[i].get(verts[t], ())
                        )
                        for i, t in zip(
                            prop_rows.tolist(), targets.tolist()
                        )
                    ],
                    dtype=bool,
                )
            else:
                ok = (self.mate[targets] == prop_rows) & (
                    self.acc_round[targets] == r - 1
                )
            won = prop_rows[ok]
            self.matched[won] = True
            self.mate[won] = self.proposed[won]
            self.proposed[prop_rows] = -1
        self.sent_ann[:] = False
        ann = rows[self.matched[rows] & ~self.announced[rows]]
        if ann.size == 0:
            return
        self.announced[ann] = True
        self.sent_ann[ann] = True
        self._emit_broadcast(ann, shared=ProposalMatching.MATCHED)
        verts = self.verts
        for i, m in zip(ann.tolist(), self.mate[ann].tolist()):
            self._halt(i, verts[m])


def matching_max_phases(n: int) -> int:
    """The pinned phase budget for an ``n``-vertex proposal matching run."""
    return 8 * max(1, math.ceil(math.log2(n + 2)))


def distributed_maximal_matching(
    graph: Graph,
    seed: SeedLike = None,
    max_phases: Optional[int] = None,
    checkpoint_every: Optional[int] = None,
    on_checkpoint=None,
) -> Tuple[Matching, SimulationResult]:
    """Run the proposal protocol on the CONGEST simulator.

    Returns the matching (mutual mate claims only, so even a faulted
    run can never yield an invalid matching) and the simulation record.
    ``checkpoint_every``/``on_checkpoint`` pass straight through to
    :meth:`~repro.congest.network.CongestSimulator.run` for durable
    mid-run snapshots (``repro faults --save-checkpoint``).
    """
    if max_phases is None:
        max_phases = matching_max_phases(graph.n)
    simulator = CongestSimulator(
        graph, lambda v: ProposalMatching(max_phases), seed=seed
    )
    result = simulator.run(
        max_rounds=3 * max_phases + 6,
        checkpoint_every=checkpoint_every,
        on_checkpoint=on_checkpoint,
    )
    return matching_from_outputs(result.outputs), result


def matching_from_outputs(outputs) -> Matching:
    """Mutual mate claims -> matching (shared with the resume path)."""
    matching: Matching = set()
    for v, mate in outputs.items():
        if mate is not None and outputs.get(mate) == v:
            matching.add(edge_key(v, mate))
    return matching


def distributed_mcm_planar(
    graph: Graph,
    epsilon: float,
    linearity_constant: float = 0.25,
    phi: Optional[float] = None,
    seed: SeedLike = None,
) -> Tuple[DistributedMatchingResult, FrameworkResult]:
    """Theorem 3.2: (1 - epsilon)-approximate MCM on a planar network.

    ``linearity_constant`` is the Lemma 3.1 constant c with
    M* >= c * |V| after star elimination; the framework runs with
    epsilon' = c * epsilon so that the lost inter-cluster edges are at
    most epsilon * M*.
    """
    if not 0.0 < epsilon < 1.0:
        raise SolverError("epsilon must lie in (0, 1)")
    rng = ensure_rng(seed)
    reduced, removed = eliminate_stars(graph)
    if reduced.n == 0:
        return (
            DistributedMatchingResult(
                matching=set(), weight=0.0, epsilon=epsilon,
                removed_vertices=removed,
            ),
            None,
        )

    def solver(sub: Graph, leader: Any, notes: Dict) -> Dict[Any, Any]:
        local = max_cardinality_matching(sub)
        partner: Dict[Any, Any] = {v: None for v in sub.vertices()}
        for u, v in local:
            partner[u] = v
            partner[v] = u
        return partner

    framework = run_framework(
        reduced,
        linearity_constant * epsilon,
        solver=solver,
        phi=phi,
        seed=rng.getrandbits(64),
    )
    matching = _matching_from_answers(reduced, framework.answers)
    result = DistributedMatchingResult(
        matching=matching,
        weight=matching_weight(graph, matching),
        epsilon=epsilon,
        rounds=[framework],
        removed_vertices=removed,
    )
    return result, framework


def distributed_mwm(
    graph: Graph,
    epsilon: float,
    iterations: Optional[int] = None,
    phi: Optional[float] = None,
    seed: SeedLike = None,
    cut_slack: float = 1.5,
    enforce_budget: bool = True,
) -> DistributedMatchingResult:
    """Theorem 1.1: (1 - epsilon)-approximate MWM on H-minor-free networks.

    Iterated framework rounds: each round re-partitions the network
    with randomized cluster boundaries, ships the current matching
    state to cluster leaders (each vertex annotates its HELLO with its
    current mate), and each leader replaces its cluster's intra-cluster
    matching with an *exact* maximum weight matching of the cluster
    minus the vertices matched across the boundary.  The weight is
    non-decreasing in every round.
    """
    if not 0.0 < epsilon < 1.0:
        raise SolverError("epsilon must lie in (0, 1)")
    rng = ensure_rng(seed)
    if iterations is None:
        iterations = max(3, math.ceil(2.0 / epsilon))

    # Vertex IDs must be message-encodable; the annotation is the
    # current mate (or -1).  Integer vertex labels are required here.
    for v in graph.vertices():
        if not isinstance(v, int):
            raise SolverError(
                "distributed_mwm requires integer vertex labels"
            )

    mate: Dict[int, int] = {}
    rounds: List[FrameworkResult] = []
    for _iteration in range(iterations):
        cluster_epsilon = epsilon / 2.0

        def annotate(v: int) -> int:
            return mate.get(v, -1)

        def solver(sub: Graph, leader: Any, notes: Dict) -> Dict[Any, Any]:
            members = set(sub.vertices())
            blocked = {
                v
                for v in members
                if notes.get(v, -1) is not None
                and notes.get(v, -1) != -1
                and notes[v] not in members
            }
            free_sub = sub.subgraph(members - blocked)
            local = max_weight_matching(free_sub)
            partner: Dict[Any, Any] = {v: -1 for v in members}
            for v in blocked:
                partner[v] = -2  # keep the existing cross-cluster edge
            for u, v in local:
                partner[u] = v
                partner[v] = u
            return partner

        framework = run_framework(
            graph,
            cluster_epsilon,
            solver=solver,
            phi=phi,
            seed=rng.getrandbits(64),
            annotate=annotate,
            cut_slack=cut_slack,
            enforce_budget=enforce_budget,
        )
        rounds.append(framework)

        # Fold the answers into the global matching.
        new_mate: Dict[int, int] = {}
        for v, answer in framework.answers.items():
            if answer == -2:
                # Keep the cross-cluster edge (both endpoints say so).
                partner = mate.get(v)
                if partner is not None:
                    new_mate[v] = partner
            elif isinstance(answer, int) and answer >= 0:
                new_mate[v] = answer
        # Keep only mutual claims.
        mate = {
            v: u
            for v, u in new_mate.items()
            if new_mate.get(u) == v and graph.has_edge(v, u)
        }

    matching = {edge_key(v, u) for v, u in mate.items()}
    if not is_matching(graph, matching):
        raise SolverError("distributed MWM produced an invalid matching")
    return DistributedMatchingResult(
        matching=matching,
        weight=matching_weight(graph, matching),
        epsilon=epsilon,
        rounds=rounds,
    )


def distributed_mcm_minor_free(
    graph: Graph,
    epsilon: float,
    iterations: Optional[int] = None,
    phi: Optional[float] = None,
    seed: SeedLike = None,
) -> DistributedMatchingResult:
    """(1 - epsilon)-approximate MCM on arbitrary H-minor-free networks.

    Section 3.2 proves the planar case; the paper generalizes via the
    weighted machinery (the planar preprocessing of [27] does not apply
    beyond planar graphs).  We follow the same route: run the
    Theorem 1.1 algorithm with unit weights — cardinality is weight.
    """
    unit = Graph()
    for v in graph.vertices():
        unit.add_vertex(v)
    for u, v in graph.edges():
        unit.add_edge(u, v, 1.0)
    return distributed_mwm(
        unit, epsilon, iterations=iterations, phi=phi, seed=seed
    )
