"""Distributed matching via the framework (Theorems 3.2 and 1.1).

``distributed_mcm_planar`` is Section 3.2 verbatim: eliminate 2-stars
and 3-double-stars (so the optimum is Omega(n) by Lemma 3.1), run the
Theorem 2.6 framework with parameter c * epsilon, solve each cluster
exactly with the blossom algorithm at its leader, and take the union —
losing only the <= epsilon' * n inter-cluster optimum edges.

``distributed_mwm`` operationalizes Theorem 1.1.  The paper's full
algorithm embeds the framework into Duan-Pettie's scaling algorithm;
per the DESIGN.md substitution policy we implement the same
architecture — repeated framework rounds whose leaders re-optimize the
current matching exactly inside their clusters — with randomized
cluster boundaries standing in for the scaling machinery: every
iteration is weight-monotone (the old intra-cluster matching is a
feasible solution of each cluster's subproblem), and boundary
randomization lets edges stuck across clusters be re-optimized in later
rounds.  Experiment E6 measures the resulting approximation ratio
against the exact weighted blossom across weight scales W.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from ..congest import CongestMetrics
from ..core.framework import FrameworkResult, run_framework
from ..errors import SolverError
from ..graph import Graph, edge_key
from ..rng import SeedLike, ensure_rng
from .blossom import max_cardinality_matching
from .preprocess import eliminate_stars
from .util import Matching, is_matching, matching_weight
from .weighted import max_weight_matching


@dataclass
class DistributedMatchingResult:
    """A matching plus the complete execution record that produced it."""

    matching: Matching
    weight: float
    epsilon: float
    rounds: List[FrameworkResult] = field(default_factory=list)
    removed_vertices: Set = field(default_factory=set)

    @property
    def size(self) -> int:
        return len(self.matching)

    def metrics(self) -> CongestMetrics:
        """Sequential composition of all framework rounds."""
        total = CongestMetrics()
        for result in self.rounds:
            total = total.merge(result.metrics)
        return total


def _matching_from_answers(graph: Graph, answers: Dict[Any, Any]) -> Matching:
    """Reconstruct a matching from per-vertex partner answers.

    Only mutual (reciprocated) claims become edges, so even a corrupted
    answer set can never produce an invalid matching.
    """
    matching: Matching = set()
    for v, partner in answers.items():
        if partner is None:
            continue
        if isinstance(partner, int) and partner < 0:
            continue
        if answers.get(partner) == v and graph.has_edge(v, partner):
            matching.add(edge_key(v, partner))
    return matching


def distributed_mcm_planar(
    graph: Graph,
    epsilon: float,
    linearity_constant: float = 0.25,
    phi: Optional[float] = None,
    seed: SeedLike = None,
) -> Tuple[DistributedMatchingResult, FrameworkResult]:
    """Theorem 3.2: (1 - epsilon)-approximate MCM on a planar network.

    ``linearity_constant`` is the Lemma 3.1 constant c with
    M* >= c * |V| after star elimination; the framework runs with
    epsilon' = c * epsilon so that the lost inter-cluster edges are at
    most epsilon * M*.
    """
    if not 0.0 < epsilon < 1.0:
        raise SolverError("epsilon must lie in (0, 1)")
    rng = ensure_rng(seed)
    reduced, removed = eliminate_stars(graph)
    if reduced.n == 0:
        return (
            DistributedMatchingResult(
                matching=set(), weight=0.0, epsilon=epsilon,
                removed_vertices=removed,
            ),
            None,
        )

    def solver(sub: Graph, leader: Any, notes: Dict) -> Dict[Any, Any]:
        local = max_cardinality_matching(sub)
        partner: Dict[Any, Any] = {v: None for v in sub.vertices()}
        for u, v in local:
            partner[u] = v
            partner[v] = u
        return partner

    framework = run_framework(
        reduced,
        linearity_constant * epsilon,
        solver=solver,
        phi=phi,
        seed=rng.getrandbits(64),
    )
    matching = _matching_from_answers(reduced, framework.answers)
    result = DistributedMatchingResult(
        matching=matching,
        weight=matching_weight(graph, matching),
        epsilon=epsilon,
        rounds=[framework],
        removed_vertices=removed,
    )
    return result, framework


def distributed_mwm(
    graph: Graph,
    epsilon: float,
    iterations: Optional[int] = None,
    phi: Optional[float] = None,
    seed: SeedLike = None,
    cut_slack: float = 1.5,
    enforce_budget: bool = True,
) -> DistributedMatchingResult:
    """Theorem 1.1: (1 - epsilon)-approximate MWM on H-minor-free networks.

    Iterated framework rounds: each round re-partitions the network
    with randomized cluster boundaries, ships the current matching
    state to cluster leaders (each vertex annotates its HELLO with its
    current mate), and each leader replaces its cluster's intra-cluster
    matching with an *exact* maximum weight matching of the cluster
    minus the vertices matched across the boundary.  The weight is
    non-decreasing in every round.
    """
    if not 0.0 < epsilon < 1.0:
        raise SolverError("epsilon must lie in (0, 1)")
    rng = ensure_rng(seed)
    if iterations is None:
        iterations = max(3, math.ceil(2.0 / epsilon))

    # Vertex IDs must be message-encodable; the annotation is the
    # current mate (or -1).  Integer vertex labels are required here.
    for v in graph.vertices():
        if not isinstance(v, int):
            raise SolverError(
                "distributed_mwm requires integer vertex labels"
            )

    mate: Dict[int, int] = {}
    rounds: List[FrameworkResult] = []
    for _iteration in range(iterations):
        cluster_epsilon = epsilon / 2.0

        def annotate(v: int) -> int:
            return mate.get(v, -1)

        def solver(sub: Graph, leader: Any, notes: Dict) -> Dict[Any, Any]:
            members = set(sub.vertices())
            blocked = {
                v
                for v in members
                if notes.get(v, -1) is not None
                and notes.get(v, -1) != -1
                and notes[v] not in members
            }
            free_sub = sub.subgraph(members - blocked)
            local = max_weight_matching(free_sub)
            partner: Dict[Any, Any] = {v: -1 for v in members}
            for v in blocked:
                partner[v] = -2  # keep the existing cross-cluster edge
            for u, v in local:
                partner[u] = v
                partner[v] = u
            return partner

        framework = run_framework(
            graph,
            cluster_epsilon,
            solver=solver,
            phi=phi,
            seed=rng.getrandbits(64),
            annotate=annotate,
            cut_slack=cut_slack,
            enforce_budget=enforce_budget,
        )
        rounds.append(framework)

        # Fold the answers into the global matching.
        new_mate: Dict[int, int] = {}
        for v, answer in framework.answers.items():
            if answer == -2:
                # Keep the cross-cluster edge (both endpoints say so).
                partner = mate.get(v)
                if partner is not None:
                    new_mate[v] = partner
            elif isinstance(answer, int) and answer >= 0:
                new_mate[v] = answer
        # Keep only mutual claims.
        mate = {
            v: u
            for v, u in new_mate.items()
            if new_mate.get(u) == v and graph.has_edge(v, u)
        }

    matching = {edge_key(v, u) for v, u in mate.items()}
    if not is_matching(graph, matching):
        raise SolverError("distributed MWM produced an invalid matching")
    return DistributedMatchingResult(
        matching=matching,
        weight=matching_weight(graph, matching),
        epsilon=epsilon,
        rounds=rounds,
    )


def distributed_mcm_minor_free(
    graph: Graph,
    epsilon: float,
    iterations: Optional[int] = None,
    phi: Optional[float] = None,
    seed: SeedLike = None,
) -> DistributedMatchingResult:
    """(1 - epsilon)-approximate MCM on arbitrary H-minor-free networks.

    Section 3.2 proves the planar case; the paper generalizes via the
    weighted machinery (the planar preprocessing of [27] does not apply
    beyond planar graphs).  We follow the same route: run the
    Theorem 1.1 algorithm with unit weights — cardinality is weight.
    """
    unit = Graph()
    for v in graph.vertices():
        unit.add_vertex(v)
    for u, v in graph.edges():
        unit.add_edge(u, v, 1.0)
    return distributed_mwm(
        unit, epsilon, iterations=iterations, phi=phi, seed=seed
    )
