"""Star elimination preprocessing for planar MCM (Section 3.2).

Lemma 3.1 ([27, Lemma 6]): a planar graph without isolated vertices,
2-stars, or 3-double-stars has a maximum matching of size Omega(n).
The framework needs that linearity so that the epsilon' * n inter-
cluster edges it ignores are chargeable against the optimum.

This module implements the paper's token-bouncing elimination exactly:

* *2-stars*: every degree-1 vertex sends a token to its neighbor; a
  vertex keeps one token and bounces the rest; bounced senders are
  removed.  (At most one pendant vertex survives per center.)
* *3-double-stars*: every degree-2 vertex sends a token tagged with its
  neighbor pair; for each pair, two tokens survive and the rest bounce;
  bounced senders are removed.

Eliminations never change the maximum matching size: a matching never
uses two pendants of the same center, nor three common-pair degree-2
vertices.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..graph import Graph, edge_key


def eliminate_stars(graph: Graph) -> Tuple[Graph, Set]:
    """Remove 2-star and 3-double-star satellites (and isolated vertices).

    Returns ``(reduced_graph, removed_vertices)``.  The reduced graph
    has the same maximum matching size as ``graph`` (restricted to
    non-isolated vertices) and, if planar, a maximum matching of size
    Omega(n) by Lemma 3.1.  The procedure is repeated to a fixed point
    because one elimination can expose new stars.
    """
    g = graph.copy()
    removed: Set = set()

    changed = True
    while changed:
        changed = False

        # Drop isolated vertices (they cannot be matched).
        for v in [v for v in g.vertices() if g.degree(v) == 0]:
            g.remove_vertex(v)
            removed.add(v)
            changed = True

        # 2-star elimination: keep one pendant per center.
        pendants_by_center: Dict = {}
        for v in g.vertices():
            if g.degree(v) == 1:
                center = g.neighbors(v)[0]
                pendants_by_center.setdefault(center, []).append(v)
        for center, pendants in pendants_by_center.items():
            if len(pendants) <= 1:
                continue
            for v in sorted(pendants, key=repr)[1:]:
                if g.has_vertex(v) and g.degree(v) == 1:
                    g.remove_vertex(v)
                    removed.add(v)
                    changed = True

        # 3-double-star elimination: keep two satellites per pair.
        satellites_by_pair: Dict = {}
        for v in g.vertices():
            if g.degree(v) == 2:
                a, b = sorted(g.neighbors(v), key=repr)
                satellites_by_pair.setdefault((a, b), []).append(v)
        for _pair, satellites in satellites_by_pair.items():
            if len(satellites) <= 2:
                continue
            for v in sorted(satellites, key=repr)[2:]:
                if g.has_vertex(v) and g.degree(v) == 2:
                    g.remove_vertex(v)
                    removed.add(v)
                    changed = True

    return g, removed
