"""Matching algorithms (Theorems 1.1 and 3.2).

Exact solvers (run at cluster leaders and used as experiment oracles):
a from-scratch blossom algorithm for maximum cardinality matching and a
from-scratch primal-dual weighted blossom for maximum weight matching.
Approximate/distributed: the Section 3.2 planar MCM pipeline (star
elimination + framework), the Theorem 1.1 H-minor-free MWM algorithm,
and greedy / local-search baselines.
"""

from .blossom import max_cardinality_matching
from .weighted import brute_force_mwm, max_weight_matching
from .greedy import greedy_weight_matching, maximal_matching
from .local_search import local_search_mwm
from .preprocess import eliminate_stars
from .util import is_matching, matching_weight
from .distributed import (
    DistributedMatchingResult,
    ProposalMatching,
    distributed_maximal_matching,
    distributed_mcm_minor_free,
    distributed_mcm_planar,
    distributed_mwm,
)

__all__ = [
    "max_cardinality_matching",
    "max_weight_matching",
    "brute_force_mwm",
    "greedy_weight_matching",
    "maximal_matching",
    "local_search_mwm",
    "eliminate_stars",
    "is_matching",
    "matching_weight",
    "DistributedMatchingResult",
    "ProposalMatching",
    "distributed_maximal_matching",
    "distributed_mcm_minor_free",
    "distributed_mcm_planar",
    "distributed_mwm",
]
