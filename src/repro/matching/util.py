"""Shared matching helpers and validators."""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

from ..errors import GraphError
from ..graph import Graph, edge_key

Matching = Set[Tuple]


def normalize_matching(edges: Iterable[Tuple]) -> Matching:
    """Canonicalize a collection of edges into a matching set."""
    return {edge_key(u, v) for u, v in edges}


def is_matching(graph: Graph, edges: Iterable[Tuple]) -> bool:
    """Are ``edges`` a valid matching of ``graph``?

    Every edge must exist in the graph and no two edges may share an
    endpoint.
    """
    seen: Set = set()
    for u, v in edges:
        if not graph.has_edge(u, v):
            return False
        if u in seen or v in seen:
            return False
        seen.add(u)
        seen.add(v)
    return True


def matching_weight(graph: Graph, edges: Iterable[Tuple]) -> float:
    """Total weight of a matching; raises if an edge is missing."""
    total = 0.0
    for u, v in edges:
        total += graph.weight(u, v)
    return total


def assert_matching(graph: Graph, edges: Iterable[Tuple]) -> None:
    """Raise :class:`GraphError` unless ``edges`` is a valid matching."""
    if not is_matching(graph, list(edges)):
        raise GraphError("edge set is not a matching of the graph")
