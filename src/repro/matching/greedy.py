"""Greedy matching baselines.

These are the comparison points the MWM experiment plots against the
framework algorithm: the classic weight-greedy 1/2-approximation and a
randomized maximal matching (a 1/2-approximation for cardinality).
"""

from __future__ import annotations

from typing import Set

from ..graph import Graph, edge_key
from ..rng import SeedLike, ensure_rng
from .util import Matching


def greedy_weight_matching(graph: Graph) -> Matching:
    """Scan edges by non-increasing weight; take whatever fits.

    Guarantees weight >= OPT/2 (each taken edge blocks at most two OPT
    edges of no larger weight).
    """
    taken: Matching = set()
    used: Set = set()
    ranked = sorted(
        graph.weighted_edges(), key=lambda e: (-e[2], repr(e[:2]))
    )
    for u, v, _w in ranked:
        if u in used or v in used:
            continue
        taken.add(edge_key(u, v))
        used.add(u)
        used.add(v)
    return taken


def maximal_matching(graph: Graph, seed: SeedLike = None) -> Matching:
    """Random-order maximal matching: cardinality >= MCM/2."""
    rng = ensure_rng(seed)
    edges = graph.edges()
    rng.shuffle(edges)
    taken: Matching = set()
    used: Set = set()
    for u, v in edges:
        if u in used or v in used:
            continue
        taken.add(edge_key(u, v))
        used.add(u)
        used.add(v)
    return taken
