"""Maximum weight matching via the primal-dual blossom algorithm.

A from-scratch O(V^3) implementation of Galil's formulation of
Edmonds' weighted matching algorithm (the same formulation popularized
by Van Rantwijk's reference code).  The algorithm maintains dual
variables for vertices and (nested) blossoms and repeatedly grows
alternating trees from free vertices, contracting tight odd cycles and
adjusting duals until an augmenting path of tight edges appears.

The paper assumes positive integer weights (Section 1.1); with integer
weights all dual arithmetic here stays in exact rationals-of-halves, so
results are exact.  This is the solver cluster leaders run for
Theorem 1.1 and the oracle for every MWM experiment; the test suite
pins it against brute force and networkx on thousands of instances.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Optional, Tuple

from ..errors import SolverError
from ..graph import Graph, edge_key
from .util import Matching

#: Largest vertex count for which the exponential brute force will run.
BRUTE_FORCE_LIMIT = 16


def _mwm_indexed(
    edges: List[Tuple[int, int, float]], maxcardinality: bool = False
) -> List[int]:
    """Core algorithm on an integer-indexed edge list; returns mate[].

    ``mate[v]`` is the *endpoint index* (2k or 2k+1) of the matched
    edge at v, or -1.  Blossoms are numbered nvertex..2*nvertex-1.
    """
    if not edges:
        return []
    nedge = len(edges)
    nvertex = 1 + max(max(i, j) for i, j, _w in edges)
    maxweight = max(max(0, w) for _i, _j, w in edges)

    # endpoint[p] is the vertex at endpoint p; edge k has endpoints
    # 2k (= edges[k][0]) and 2k+1 (= edges[k][1]).
    endpoint = [edges[p // 2][p % 2] for p in range(2 * nedge)]
    # neighbend[v] lists the remote endpoints of v's incident edges.
    neighbend: List[List[int]] = [[] for _ in range(nvertex)]
    for k, (i, j, _w) in enumerate(edges):
        neighbend[i].append(2 * k + 1)
        neighbend[j].append(2 * k)

    mate = [-1] * nvertex
    # label: 0 = free, 1 = S, 2 = T (5 marks scanBlossom's breadcrumbs).
    label = [0] * (2 * nvertex)
    labelend = [-1] * (2 * nvertex)
    inblossom = list(range(nvertex))
    blossomparent = [-1] * (2 * nvertex)
    blossomchilds: List[Optional[List[int]]] = [None] * (2 * nvertex)
    blossombase = list(range(nvertex)) + [-1] * nvertex
    blossomendps: List[Optional[List[int]]] = [None] * (2 * nvertex)
    bestedge = [-1] * (2 * nvertex)
    blossombestedges: List[Optional[List[int]]] = [None] * (2 * nvertex)
    unusedblossoms = list(range(nvertex, 2 * nvertex))
    dualvar: List[float] = [maxweight] * nvertex + [0] * nvertex
    allowedge = [False] * nedge
    queue: List[int] = []

    def slack(k: int) -> float:
        i, j, wt = edges[k]
        return dualvar[i] + dualvar[j] - 2 * wt

    def blossom_leaves(b: int):
        if b < nvertex:
            yield b
        else:
            for t in blossomchilds[b]:
                if t < nvertex:
                    yield t
                else:
                    yield from blossom_leaves(t)

    def assign_label(w: int, t: int, p: int) -> None:
        b = inblossom[w]
        label[w] = label[b] = t
        labelend[w] = labelend[b] = p
        bestedge[w] = bestedge[b] = -1
        if t == 1:
            queue.extend(blossom_leaves(b))
        elif t == 2:
            base = blossombase[b]
            assign_label(endpoint[mate[base]], 1, mate[base] ^ 1)

    def scan_blossom(v: int, w: int) -> int:
        """Trace back from v and w to find a common S-ancestor or -1."""
        path = []
        base = -1
        while v != -1 or w != -1:
            b = inblossom[v]
            if label[b] & 4:
                base = blossombase[b]
                break
            path.append(b)
            label[b] = 5
            if labelend[b] == -1:
                v = -1
            else:
                v = endpoint[labelend[b]]
                b = inblossom[v]
                v = endpoint[labelend[b]]
            if w != -1:
                v, w = w, v
        for b in path:
            label[b] = 1
        return base

    def add_blossom(base: int, k: int) -> None:
        """Contract the odd cycle through edge k with given base."""
        v, w, _wt = edges[k]
        bb = inblossom[base]
        bv = inblossom[v]
        bw = inblossom[w]
        b = unusedblossoms.pop()
        blossombase[b] = base
        blossomparent[b] = -1
        blossomparent[bb] = b
        blossomchilds[b] = path = []
        blossomendps[b] = endps = []
        while bv != bb:
            blossomparent[bv] = b
            path.append(bv)
            endps.append(labelend[bv])
            v = endpoint[labelend[bv]]
            bv = inblossom[v]
        path.append(bb)
        path.reverse()
        endps.reverse()
        endps.append(2 * k)
        while bw != bb:
            blossomparent[bw] = b
            path.append(bw)
            endps.append(labelend[bw] ^ 1)
            w = endpoint[labelend[bw]]
            bw = inblossom[w]
        label[b] = 1
        labelend[b] = labelend[bb]
        dualvar[b] = 0
        for leaf in blossom_leaves(b):
            if label[inblossom[leaf]] == 2:
                queue.append(leaf)
            inblossom[leaf] = b
        # Recompute the blossom's best-edge lists.
        bestedgeto = [-1] * (2 * nvertex)
        for bv in path:
            if blossombestedges[bv] is None:
                nblists = [
                    [p // 2 for p in neighbend[leaf]]
                    for leaf in blossom_leaves(bv)
                ]
            else:
                nblists = [blossombestedges[bv]]
            for nblist in nblists:
                for kk in nblist:
                    i, j, _ = edges[kk]
                    if inblossom[j] == b:
                        i, j = j, i
                    bj = inblossom[j]
                    if (
                        bj != b
                        and label[bj] == 1
                        and (
                            bestedgeto[bj] == -1
                            or slack(kk) < slack(bestedgeto[bj])
                        )
                    ):
                        bestedgeto[bj] = kk
            blossombestedges[bv] = None
            bestedge[bv] = -1
        blossombestedges[b] = [kk for kk in bestedgeto if kk != -1]
        bestedge[b] = -1
        for kk in blossombestedges[b]:
            if bestedge[b] == -1 or slack(kk) < slack(bestedge[b]):
                bestedge[b] = kk

    def expand_blossom(b: int, endstage: bool) -> None:
        for s in blossomchilds[b]:
            blossomparent[s] = -1
            if s < nvertex:
                inblossom[s] = s
            elif endstage and dualvar[s] == 0:
                expand_blossom(s, endstage)
            else:
                for leaf in blossom_leaves(s):
                    inblossom[leaf] = s
        if (not endstage) and label[b] == 2:
            # The expanding blossom was a T-blossom mid-stage: relabel
            # the even-path children T/S and leave the rest free.
            entrychild = inblossom[endpoint[labelend[b] ^ 1]]
            j = blossomchilds[b].index(entrychild)
            if j & 1:
                j -= len(blossomchilds[b])
                jstep = 1
                endptrick = 0
            else:
                jstep = -1
                endptrick = 1
            p = labelend[b]
            while j != 0:
                label[endpoint[p ^ 1]] = 0
                label[
                    endpoint[blossomendps[b][j - endptrick] ^ endptrick ^ 1]
                ] = 0
                assign_label(endpoint[p ^ 1], 2, p)
                allowedge[blossomendps[b][j - endptrick] // 2] = True
                j += jstep
                p = blossomendps[b][j - endptrick] ^ endptrick
                allowedge[p // 2] = True
                j += jstep
            bv = blossomchilds[b][j]
            label[endpoint[p ^ 1]] = label[bv] = 2
            labelend[endpoint[p ^ 1]] = labelend[bv] = p
            bestedge[bv] = -1
            j += jstep
            while blossomchilds[b][j] != entrychild:
                bv = blossomchilds[b][j]
                if label[bv] == 1:
                    j += jstep
                    continue
                leaf = None
                for leaf in blossom_leaves(bv):
                    if label[leaf] != 0:
                        break
                if leaf is not None and label[leaf] != 0:
                    label[leaf] = 0
                    label[endpoint[mate[blossombase[bv]]]] = 0
                    assign_label(leaf, 2, labelend[leaf])
                j += jstep
        label[b] = labelend[b] = -1
        blossomchilds[b] = blossomendps[b] = None
        blossombase[b] = -1
        blossombestedges[b] = None
        bestedge[b] = -1
        unusedblossoms.append(b)

    def augment_blossom(b: int, v: int) -> None:
        """Swap matched/unmatched edges along the path from v to base."""
        t = v
        while blossomparent[t] != b:
            t = blossomparent[t]
        if t >= nvertex:
            augment_blossom(t, v)
        i = j = blossomchilds[b].index(t)
        if i & 1:
            j -= len(blossomchilds[b])
            jstep = 1
            endptrick = 0
        else:
            jstep = -1
            endptrick = 1
        while j != 0:
            j += jstep
            t = blossomchilds[b][j]
            p = blossomendps[b][j - endptrick] ^ endptrick
            if t >= nvertex:
                augment_blossom(t, endpoint[p])
            j += jstep
            t = blossomchilds[b][j]
            if t >= nvertex:
                augment_blossom(t, endpoint[p ^ 1])
            mate[endpoint[p]] = p ^ 1
            mate[endpoint[p ^ 1]] = p
        blossomchilds[b] = blossomchilds[b][i:] + blossomchilds[b][:i]
        blossomendps[b] = blossomendps[b][i:] + blossomendps[b][:i]
        blossombase[b] = blossombase[blossomchilds[b][0]]

    def augment_matching(k: int) -> None:
        v, w, _wt = edges[k]
        for s, p in ((v, 2 * k + 1), (w, 2 * k)):
            while True:
                bs = inblossom[s]
                if bs >= nvertex:
                    augment_blossom(bs, s)
                mate[s] = p
                if labelend[bs] == -1:
                    break
                t = endpoint[labelend[bs]]
                bt = inblossom[t]
                s = endpoint[labelend[bt]]
                j = endpoint[labelend[bt] ^ 1]
                if bt >= nvertex:
                    augment_blossom(bt, j)
                mate[j] = labelend[bt]
                p = labelend[bt] ^ 1

    # ------------------------------------------------------------------
    # Main loop: one stage per augmentation.
    # ------------------------------------------------------------------
    for _stage in range(nvertex):
        label[:] = [0] * (2 * nvertex)
        bestedge[:] = [-1] * (2 * nvertex)
        blossombestedges[nvertex:] = [None] * nvertex
        allowedge[:] = [False] * nedge
        queue[:] = []
        for v in range(nvertex):
            if mate[v] == -1 and label[inblossom[v]] == 0:
                assign_label(v, 1, -1)
        augmented = False
        while True:
            while queue and not augmented:
                v = queue.pop()
                for p in neighbend[v]:
                    k = p // 2
                    w = endpoint[p]
                    if inblossom[v] == inblossom[w]:
                        continue
                    kslack = 0.0
                    if not allowedge[k]:
                        kslack = slack(k)
                        if kslack <= 0:
                            allowedge[k] = True
                    if allowedge[k]:
                        if label[inblossom[w]] == 0:
                            assign_label(w, 2, p ^ 1)
                        elif label[inblossom[w]] == 1:
                            base = scan_blossom(v, w)
                            if base >= 0:
                                add_blossom(base, k)
                            else:
                                augment_matching(k)
                                augmented = True
                                break
                        elif label[w] == 0:
                            label[w] = 2
                            labelend[w] = p ^ 1
                    elif label[inblossom[w]] == 1:
                        b = inblossom[v]
                        if bestedge[b] == -1 or kslack < slack(bestedge[b]):
                            bestedge[b] = k
                    elif label[w] == 0:
                        if bestedge[w] == -1 or kslack < slack(bestedge[w]):
                            bestedge[w] = k
            if augmented:
                break

            # Compute the dual adjustment delta.
            deltatype = -1
            delta: float = 0.0
            deltaedge = -1
            deltablossom = -1
            if not maxcardinality:
                deltatype = 1
                delta = min(dualvar[:nvertex])
            for v in range(nvertex):
                if label[inblossom[v]] == 0 and bestedge[v] != -1:
                    d = slack(bestedge[v])
                    if deltatype == -1 or d < delta:
                        delta = d
                        deltatype = 2
                        deltaedge = bestedge[v]
            for b in range(2 * nvertex):
                if (
                    blossomparent[b] == -1
                    and label[b] == 1
                    and bestedge[b] != -1
                ):
                    kslack = slack(bestedge[b])
                    d = kslack / 2
                    if deltatype == -1 or d < delta:
                        delta = d
                        deltatype = 3
                        deltaedge = bestedge[b]
            for b in range(nvertex, 2 * nvertex):
                if (
                    blossombase[b] >= 0
                    and blossomparent[b] == -1
                    and label[b] == 2
                    and (deltatype == -1 or dualvar[b] < delta)
                ):
                    delta = dualvar[b]
                    deltatype = 4
                    deltablossom = b
            if deltatype == -1:
                # Max-cardinality variant: no more improvement possible.
                deltatype = 1
                delta = max(0, min(dualvar[:nvertex]))

            # Apply delta to the duals.
            for v in range(nvertex):
                lbl = label[inblossom[v]]
                if lbl == 1:
                    dualvar[v] -= delta
                elif lbl == 2:
                    dualvar[v] += delta
            for b in range(nvertex, 2 * nvertex):
                if blossombase[b] >= 0 and blossomparent[b] == -1:
                    if label[b] == 1:
                        dualvar[b] += delta
                    elif label[b] == 2:
                        dualvar[b] -= delta

            if deltatype == 1:
                break
            if deltatype == 2:
                allowedge[deltaedge] = True
                i, j, _ = edges[deltaedge]
                if label[inblossom[i]] == 0:
                    i, j = j, i
                queue.append(i)
            elif deltatype == 3:
                allowedge[deltaedge] = True
                i, j, _ = edges[deltaedge]
                queue.append(i)
            else:
                expand_blossom(deltablossom, False)

        if not augmented:
            break
        # End of a successful stage: expand spent S-blossoms.
        for b in range(nvertex, 2 * nvertex):
            if (
                blossomparent[b] == -1
                and blossombase[b] >= 0
                and label[b] == 1
                and dualvar[b] == 0
            ):
                expand_blossom(b, True)

    return mate


def max_weight_matching(
    graph: Graph, maxcardinality: bool = False
) -> Matching:
    """Compute a maximum weight matching of ``graph``.

    With ``maxcardinality=True``, restrict to maximum-cardinality
    matchings and maximize weight among them.  Edges of non-positive
    weight are never forced into the matching (standard MWM
    convention); the paper's instances have positive integer weights.
    """
    indexed, mapping = graph.relabeled()
    inverse = {i: v for v, i in mapping.items()}
    edges = [(u, v, w) for u, v, w in indexed.weighted_edges()]
    mate = _mwm_indexed(edges, maxcardinality=maxcardinality)

    endpoint_vertex = {}
    for k, (i, j, _w) in enumerate(edges):
        endpoint_vertex[2 * k] = i
        endpoint_vertex[2 * k + 1] = j

    result: Matching = set()
    for v, p in enumerate(mate):
        if p == -1:
            continue
        partner = endpoint_vertex[p]
        if v < partner:
            result.add(edge_key(inverse[v], inverse[partner]))
    return result


def brute_force_mwm(graph: Graph) -> Tuple[float, Matching]:
    """Exponential exact MWM used as a test oracle (n <= 16 only)."""
    if graph.n > BRUTE_FORCE_LIMIT:
        raise SolverError(
            f"brute force MWM is limited to n <= {BRUTE_FORCE_LIMIT}"
        )
    edges = graph.weighted_edges()

    best_weight = 0.0
    best: Matching = set()

    def recurse(index: int, used: set, weight: float, chosen: Matching) -> None:
        nonlocal best_weight, best
        if weight > best_weight:
            best_weight = weight
            best = set(chosen)
        if index == len(edges):
            return
        # Prune: remaining positive weight cannot beat best.
        remaining = sum(
            max(0.0, w) for _u, _v, w in edges[index:]
        )
        if weight + remaining <= best_weight:
            return
        u, v, w = edges[index]
        if u not in used and v not in used:
            chosen.add(edge_key(u, v))
            recurse(index + 1, used | {u, v}, weight + w, chosen)
            chosen.discard(edge_key(u, v))
        recurse(index + 1, used, weight, chosen)

    recurse(0, set(), 0.0, set())
    return best_weight, best
