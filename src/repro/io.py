"""JSON serialization for graphs and experiment artifacts.

Reproducibility plumbing: experiments can persist their inputs
(generated networks), decompositions, and result summaries, and reload
them bit-for-bit in a later session.  The format is deliberately plain
JSON — no pickling — so artifacts are diffable and portable.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from .decomposition.expander import ExpanderDecomposition
from .errors import GraphError
from .graph import Graph

FORMAT_VERSION = 1


def graph_to_dict(graph: Graph) -> Dict[str, Any]:
    """Plain-JSON representation of a graph (weights preserved)."""
    return {
        "format": FORMAT_VERSION,
        "kind": "graph",
        "vertices": list(graph.vertices()),
        "edges": [[u, v, w] for u, v, w in graph.weighted_edges()],
    }


def graph_from_dict(data: Dict[str, Any]) -> Graph:
    """Inverse of :func:`graph_to_dict`."""
    if data.get("kind") != "graph":
        raise GraphError("payload is not a serialized graph")
    if data.get("format") != FORMAT_VERSION:
        raise GraphError(
            f"unsupported graph format {data.get('format')!r}"
        )
    g = Graph()
    for v in data["vertices"]:
        g.add_vertex(v)
    for u, v, w in data["edges"]:
        g.add_edge(u, v, float(w))
    return g


def save_graph(graph: Graph, path: str) -> None:
    """Write a graph to a JSON file."""
    with open(path, "w") as handle:
        json.dump(graph_to_dict(graph), handle)


def load_graph(path: str) -> Graph:
    """Read a graph from a JSON file."""
    with open(path) as handle:
        return graph_from_dict(json.load(handle))


def decomposition_to_dict(dec: ExpanderDecomposition) -> Dict[str, Any]:
    """Serialize a decomposition's *result* (not its input graph)."""
    return {
        "format": FORMAT_VERSION,
        "kind": "expander-decomposition",
        "epsilon": dec.epsilon,
        "phi": dec.phi,
        "clusters": [sorted(c, key=repr) for c in dec.clusters],
        "certificates": list(dec.certificates),
        "cut_edges": [[u, v] for u, v in dec.cut_edges],
    }


def decomposition_from_dict(
    data: Dict[str, Any], graph: Graph
) -> ExpanderDecomposition:
    """Rehydrate a decomposition against its (separately stored) graph."""
    if data.get("kind") != "expander-decomposition":
        raise GraphError("payload is not a serialized decomposition")
    dec = ExpanderDecomposition(
        graph=graph, epsilon=data["epsilon"], phi=data["phi"]
    )
    dec.clusters = [set(c) for c in data["clusters"]]
    dec.certificates = list(data["certificates"])
    dec.cut_edges = [tuple(e) for e in data["cut_edges"]]
    return dec


def save_decomposition(dec: ExpanderDecomposition, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(decomposition_to_dict(dec), handle)


def load_decomposition(path: str, graph: Graph) -> ExpanderDecomposition:
    with open(path) as handle:
        return decomposition_from_dict(json.load(handle), graph)
