"""Content-addressed artifact cache for expensive experiment intermediates.

The benchmark grid (family x n x seed x epsilon/phi) recomputes the
same generator outputs and expander decompositions over and over: every
E-suite cell regenerates its graph from scratch, and several cells of
one experiment share a single decomposition.  This module memoizes
those intermediates behind a two-tier cache:

* an in-memory LRU of serialized artifact bytes (fast, per process);
* a content-addressed store under ``benchmarks/.cache/`` shared by all
  processes of a parallel run (see :mod:`repro.runner`).

Keys are SHA-256 hashes of a canonical JSON encoding of
``(kind, name, params, seed, code-version salt)``.  The salt hashes the
source files whose behavior the cached artifacts depend on, so editing
the generators or the decomposition automatically invalidates every
stale entry — no manual cache busting.

The determinism contract (see ``docs/runner.md``): a cache hit must be
*bit-transparent* — every downstream number must come out identical
whether the artifact was recomputed or rehydrated.  Two design points
enforce that: artifacts serialize through canonical payloads (sorted
cluster lists, pickled graphs whose adjacency-dict insertion order is
preserved exactly), and :meth:`repro.graph.Graph.subgraph` canonicalizes
vertex insertion order so set-iteration-order differences between fresh
and rehydrated cluster sets cannot leak into any simulation.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import pickle
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from . import storage
from .errors import GraphError, StorageError
from .graph import Graph
from .obs import registry as _telemetry

#: Pickle protocol pinned so identical artifacts produce identical bytes
#: across interpreter minor versions.
PICKLE_PROTOCOL = 4

#: Bump to invalidate every cache entry independently of source hashing
#: (e.g. when the payload schema itself changes).
CACHE_SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# Canonical keys
# ----------------------------------------------------------------------

def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-stable form (sorted dicts, repr floats)."""
    if isinstance(obj, dict):
        return {str(k): _canonical(obj[k]) for k in sorted(obj, key=str)}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, float):
        # repr() round-trips exactly; JSON float formatting may not.
        return f"float:{obj!r}"
    if obj is None or isinstance(obj, (str, int, bool)):
        return obj
    raise TypeError(f"unhashable cache parameter of type {type(obj).__name__}")


def cache_key(
    kind: str,
    name: str,
    params: Dict[str, Any],
    seed: Optional[int] = None,
    salt: Optional[str] = None,
) -> str:
    """SHA-256 content address for one artifact."""
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "kind": kind,
        "name": name,
        "params": _canonical(params),
        "seed": seed,
        "salt": code_salt() if salt is None else salt,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


#: Source files whose behavior cached artifacts depend on.  Anything in
#: these locations changing flips :func:`code_salt` and therefore every
#: key, making stale reuse impossible after a code edit.
_SALT_SOURCES = (
    "graph.py",
    "rng.py",
    "cache.py",
    "generators",
    "decomposition",
    "spectral",
)

_code_salt: Optional[str] = None


def code_salt() -> str:
    """Hash of the artifact-relevant source tree (memoized per process)."""
    global _code_salt
    if _code_salt is None:
        digest = hashlib.sha256()
        package_root = os.path.dirname(os.path.abspath(__file__))
        for entry in _SALT_SOURCES:
            path = os.path.join(package_root, entry)
            for file_path in sorted(_iter_source_files(path)):
                digest.update(os.path.relpath(file_path, package_root).encode())
                with open(file_path, "rb") as handle:
                    digest.update(handle.read())
        _code_salt = digest.hexdigest()
    return _code_salt


_simulation_salt: Optional[str] = None


def simulation_salt() -> str:
    """Hash of the *entire* ``repro`` source tree (memoized per process).

    Cell-level artifacts (:mod:`repro.runner`) memoize the output of
    whole simulations, so any code change anywhere in the library must
    invalidate them — unlike generator/decomposition artifacts, whose
    narrower :func:`code_salt` survives edits to unrelated modules.
    """
    global _simulation_salt
    if _simulation_salt is None:
        digest = hashlib.sha256()
        package_root = os.path.dirname(os.path.abspath(__file__))
        for file_path in sorted(_iter_source_files(package_root)):
            digest.update(os.path.relpath(file_path, package_root).encode())
            with open(file_path, "rb") as handle:
                digest.update(handle.read())
        _simulation_salt = digest.hexdigest()
    return _simulation_salt


def _iter_source_files(path: str) -> Iterator[str]:
    if os.path.isfile(path):
        yield path
        return
    for dirpath, _dirnames, filenames in os.walk(path):
        for filename in filenames:
            if filename.endswith(".py"):
                yield os.path.join(dirpath, filename)


def graph_fingerprint(graph: Graph) -> str:
    """Content hash of a graph (canonical vertex and edge order)."""
    digest = hashlib.sha256()
    from .graph import canonical_vertex_order, edge_key

    for v in canonical_vertex_order(graph.vertices()):
        digest.update(repr(v).encode())
    for u, v, w in sorted(
        (( *edge_key(u, v), w) for u, v, w in graph.weighted_edges()),
        key=lambda e: (repr(e[0]), repr(e[1])),
    ):
        digest.update(repr((u, v, w)).encode())
    return digest.hexdigest()


# ----------------------------------------------------------------------
# The cache proper
# ----------------------------------------------------------------------

@dataclass
class CacheStats:
    """Hit/miss accounting, reported by ``repro bench``."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0
    evictions: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def as_dict(self) -> Dict[str, int]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
            "evictions": self.evictions,
        }

    def add(self, other: "CacheStats | Dict[str, int]") -> "CacheStats":
        data = other.as_dict() if isinstance(other, CacheStats) else other
        self.memory_hits += data.get("memory_hits", 0)
        self.disk_hits += data.get("disk_hits", 0)
        self.misses += data.get("misses", 0)
        self.stores += data.get("stores", 0)
        self.corrupt += data.get("corrupt", 0)
        self.evictions += data.get("evictions", 0)
        return self

    def snapshot(self) -> Dict[str, int]:
        return self.as_dict()

    def delta_since(self, snapshot: Dict[str, int]) -> Dict[str, int]:
        return {k: v - snapshot.get(k, 0) for k, v in self.as_dict().items()}


def default_cache_root() -> str:
    """``$REPRO_CACHE_DIR`` or ``benchmarks/.cache`` next to the repo."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    package_root = os.path.dirname(os.path.abspath(__file__))
    repo_root = os.path.dirname(os.path.dirname(package_root))
    if os.path.isdir(os.path.join(repo_root, "benchmarks")):
        return os.path.join(repo_root, "benchmarks", ".cache")
    return os.path.join(os.getcwd(), "benchmarks", ".cache")


class ArtifactCache:
    """Two-tier (memory LRU over disk) content-addressed artifact store.

    The memory tier holds serialized bytes, not live objects, so hits
    always rehydrate a fresh object — a caller mutating its copy cannot
    poison later hits.  Disk I/O goes through :mod:`repro.storage`:
    writes are atomic (`os.replace` of a fsynced temporary file) so a
    crashed or concurrent writer can never leave a half-written entry
    visible, and entries are checksum-framed so a corrupted entry is
    detected on load, deleted, recomputed, and rewritten (see
    docs/durability.md).
    """

    def __init__(
        self,
        root: Optional[str] = None,
        memory_items: int = 256,
        persist: bool = True,
    ) -> None:
        self.root = root or default_cache_root()
        self.persist = persist
        self.memory_items = max(0, memory_items)
        self._memory: "OrderedDict[str, bytes]" = OrderedDict()
        self.stats = CacheStats()

    # -- key helpers ---------------------------------------------------
    def key(
        self,
        kind: str,
        name: str,
        params: Dict[str, Any],
        seed: Optional[int] = None,
        salt: Optional[str] = None,
    ) -> str:
        return cache_key(kind, name, params, seed=seed, salt=salt)

    def _path(self, kind: str, key: str) -> str:
        return os.path.join(self.root, kind, key[:2], key + ".bin")

    # -- tiers ---------------------------------------------------------
    def _memory_get(self, slot: str) -> Optional[bytes]:
        blob = self._memory.get(slot)
        if blob is not None:
            self._memory.move_to_end(slot)
        return blob

    def _memory_put(self, slot: str, blob: bytes) -> None:
        if self.memory_items == 0:
            return
        self._memory[slot] = blob
        self._memory.move_to_end(slot)
        while len(self._memory) > self.memory_items:
            self._memory.popitem(last=False)

    def _disk_get(self, kind: str, key: str) -> Optional[bytes]:
        """Raw on-disk bytes for an entry: framed, or legacy unframed."""
        if not self.persist:
            return None
        path = self._path(kind, key)
        try:
            return storage.read_bytes(path)
        except FileNotFoundError:
            return None
        except OSError:
            return None

    def _disk_put(self, kind: str, key: str, blob: bytes) -> None:
        if not self.persist:
            return
        path = self._path(kind, key)
        directory = os.path.dirname(path)
        try:
            os.makedirs(directory, exist_ok=True)
            # Entries are framed with a blake2b checksum so a torn
            # write or bit-flip is detected on load instead of being
            # unpickled (docs/durability.md); pre-framing entries are
            # still accepted by the reader.
            storage.atomic_write_bytes(path, storage.frame_bytes(blob))
        except (OSError, StorageError):
            # A read-only or full disk degrades to memory-only caching.
            pass

    def _evict(self, kind: str, key: str, slot: str) -> None:
        self._memory.pop(slot, None)
        with contextlib.suppress(OSError):
            os.unlink(self._path(kind, key))

    # -- the one entry point -------------------------------------------
    def get_or_compute(
        self,
        kind: str,
        key: str,
        compute: Callable[[], Any],
        serialize: Callable[[Any], bytes] = None,  # type: ignore[assignment]
        deserialize: Callable[[bytes], Any] = None,  # type: ignore[assignment]
    ) -> Any:
        """Return the artifact for ``key``, computing and storing on miss.

        A corrupted entry (any exception while deserializing) is
        counted, evicted, and transparently recomputed.
        """
        if serialize is None:
            serialize = _pickle_dumps
        if deserialize is None:
            deserialize = pickle.loads
        slot = f"{kind}/{key}"
        blob = self._memory_get(slot)
        from_disk = False
        if blob is None:
            blob = self._disk_get(kind, key)
            from_disk = blob is not None
        if blob is not None:
            try:
                # Disk entries carry the storage frame (legacy entries
                # pass through); the memory tier holds bare payloads.
                if from_disk:
                    blob = storage.unframe_bytes(blob)
                value = deserialize(blob)
            except Exception as exc:
                self.stats.corrupt += 1
                self.stats.evictions += 1
                _telemetry.count("cache.corrupt")
                _telemetry.count("cache.evictions")
                # Loud but non-fatal: one corrupt entry is routine
                # (killed worker, disk hiccup); a stream of them with
                # the same key prefix points at real trouble.
                warnings.warn(
                    f"evicting corrupt cache entry {kind}/{key}: "
                    f"{type(exc).__name__}: {exc}",
                    RuntimeWarning,
                    stacklevel=3,
                )
                self._evict(kind, key, slot)
            else:
                if from_disk:
                    self.stats.disk_hits += 1
                    _telemetry.count("cache.disk_hits")
                    self._memory_put(slot, blob)
                else:
                    self.stats.memory_hits += 1
                    _telemetry.count("cache.memory_hits")
                return value
        self.stats.misses += 1
        _telemetry.count("cache.misses")
        value = compute()
        blob = serialize(value)
        self._memory_put(slot, blob)
        self._disk_put(kind, key, blob)
        self.stats.stores += 1
        _telemetry.count("cache.stores")
        return value


def _pickle_dumps(value: Any) -> bytes:
    return pickle.dumps(value, protocol=PICKLE_PROTOCOL)


# ----------------------------------------------------------------------
# Active-cache context (how the framework finds the cache, if any)
# ----------------------------------------------------------------------

_active_cache: Optional[ArtifactCache] = None


def active_cache() -> Optional[ArtifactCache]:
    """The cache installed by :func:`activate`, or None."""
    return _active_cache


@contextlib.contextmanager
def activate(cache: Optional[ArtifactCache]) -> Iterator[Optional[ArtifactCache]]:
    """Install ``cache`` as the process-wide active cache.

    ``partition_minor_free`` and the generator helpers consult the
    active cache; with none installed they compute directly, so library
    behavior is unchanged unless a runner opts in.
    """
    global _active_cache
    previous = _active_cache
    _active_cache = cache
    try:
        yield cache
    finally:
        _active_cache = previous


# ----------------------------------------------------------------------
# Cached artifact kinds
# ----------------------------------------------------------------------

def generator_registry() -> Dict[str, Callable[..., Graph]]:
    """Named graph generators addressable by cache keys and cell specs."""
    from . import generators

    return {
        "delaunay": generators.delaunay_planar_graph,
        "grid": generators.grid_graph,
        "trigrid": generators.triangulated_grid_graph,
        "ktree": generators.k_tree,
        "torus": generators.toroidal_grid_graph,
        "cycle": generators.cycle_graph,
    }


def cached_graph(
    name: str,
    params: Dict[str, Any],
    cache: Optional[ArtifactCache] = None,
) -> Graph:
    """Build (or rehydrate) the generator output for ``name(**params)``.

    Graphs are pickled whole: pickle preserves adjacency-dict insertion
    order exactly, so a rehydrated graph is indistinguishable from a
    freshly generated one to every deterministic consumer.
    """
    registry = generator_registry()
    if name not in registry:
        raise GraphError(f"unknown generator {name!r} "
                         f"(known: {sorted(registry)})")
    build = registry[name]
    cache = cache if cache is not None else active_cache()
    if cache is None:
        return build(**params)
    key = cache.key("graph", name, params)
    return cache.get_or_compute("graph", key, lambda: build(**params))


def _decomposition_payload(dec) -> bytes:
    """Canonical bytes for a decomposition (graph stripped, lists sorted)."""
    from .graph import canonical_vertex_order

    payload = {
        "epsilon": dec.epsilon,
        "phi": dec.phi,
        "clusters": [canonical_vertex_order(c) for c in dec.clusters],
        "cut_edges": list(dec.cut_edges),
        "certificates": list(dec.certificates),
    }
    return pickle.dumps(payload, protocol=PICKLE_PROTOCOL)


def cached_expander_decomposition(
    graph: Graph,
    epsilon: float,
    phi: float,
    seed: int,
    enforce_budget: bool = True,
    cut_slack: float = 1.0,
    max_cluster_size: Optional[int] = None,
    cache: Optional[ArtifactCache] = None,
):
    """Memoized :func:`repro.decomposition.expander_decomposition`.

    The key covers the graph's content fingerprint plus every parameter
    that can change the output, and the artifact stores only the
    decomposition data (clusters / cut edges / certificates) — the
    caller's graph object is re-attached on rehydration.
    """
    from .decomposition.expander import (
        ExpanderDecomposition,
        expander_decomposition,
    )

    cache = cache if cache is not None else active_cache()
    if cache is None:
        return expander_decomposition(
            graph, epsilon, phi=phi, seed=seed,
            enforce_budget=enforce_budget, cut_slack=cut_slack,
            max_cluster_size=max_cluster_size,
        )

    params = {
        "graph": graph_fingerprint(graph),
        "epsilon": epsilon,
        "phi": phi,
        "enforce_budget": enforce_budget,
        "cut_slack": cut_slack,
        "max_cluster_size": max_cluster_size,
    }
    key = cache.key("decomposition", "expander_decomposition", params,
                    seed=seed)

    def compute():
        return expander_decomposition(
            graph, epsilon, phi=phi, seed=seed,
            enforce_budget=enforce_budget, cut_slack=cut_slack,
            max_cluster_size=max_cluster_size,
        )

    def deserialize(blob: bytes) -> ExpanderDecomposition:
        payload = pickle.loads(blob)
        return ExpanderDecomposition(
            graph=graph,
            epsilon=payload["epsilon"],
            phi=payload["phi"],
            clusters=[set(c) for c in payload["clusters"]],
            cut_edges=[tuple(e) for e in payload["cut_edges"]],
            certificates=list(payload["certificates"]),
        )

    return cache.get_or_compute(
        "decomposition", key, compute,
        serialize=_decomposition_payload, deserialize=deserialize,
    )
