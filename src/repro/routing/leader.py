"""Max-degree leader election within a cluster (Theorem 2.6 proof).

Each vertex floods the best (degree, ID) pair it has seen; after a
number of rounds at least the cluster diameter, all vertices agree on
the maximum-degree vertex (ties broken toward the larger ID, as in the
paper's description of comparing ID(u)).  The round budget is the
caller's responsibility: the framework passes the O(phi^-1 log n)
diameter bound of a phi-expander, and the Section 2.3 failure semantics
cover the case where the budget was insufficient.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..congest import (
    CongestMetrics,
    CongestSimulator,
    SimulationResult,
    VertexAlgorithm,
    VertexContext,
)
from ..errors import GraphError
from ..graph import Graph
from ..rng import SeedLike


class MaxDegreeLeaderElection(VertexAlgorithm):
    """Flood (degree, ID); after ``budget`` rounds output the winner."""

    def __init__(self, budget: int) -> None:
        if budget < 1:
            raise GraphError("leader election budget must be >= 1")
        self.budget = budget
        self.best: Optional[Tuple[int, Any]] = None

    def initialize(self, ctx: VertexContext) -> None:
        self.best = (ctx.degree(), ctx.vertex)
        ctx.broadcast((self.best[0], self.best[1]))

    def step(self, ctx: VertexContext, inbox: Dict[Any, List[Any]]) -> None:
        improved = False
        for payloads in inbox.values():
            for degree, vertex in payloads:
                candidate = (degree, vertex)
                if self.best is None or candidate > self.best:
                    self.best = candidate
                    improved = True
        if ctx.round_number >= self.budget:
            ctx.halt(self.best[1])
            return
        if improved:
            ctx.broadcast((self.best[0], self.best[1]))


def elect_leader(
    cluster: Graph,
    budget: Optional[int] = None,
    seed: SeedLike = None,
) -> Tuple[Any, SimulationResult]:
    """Run leader election on a connected cluster; returns (leader, result).

    ``budget`` defaults to the cluster's exact diameter plus one — the
    framework substitutes the O(phi^-1 log n) analytic bound when it
    wants to model a failure-prone run.
    """
    if cluster.n == 0:
        raise GraphError("cannot elect a leader of an empty cluster")
    if cluster.n == 1:
        only = cluster.vertices()[0]
        return only, SimulationResult(
            outputs={only: only}, metrics=CongestMetrics(), halted=True
        )
    if budget is None:
        budget = cluster.diameter() + 1
    simulator = CongestSimulator(
        cluster, lambda v: MaxDegreeLeaderElection(budget), seed=seed
    )
    result = simulator.run(max_rounds=budget + 2)
    outputs = set(result.outputs.values())
    leader = max(
        ((cluster.degree(v), v) for v in cluster.vertices()),
    )[1]
    # All vertices must agree with the true maximum (they do whenever
    # the budget covers the diameter); disagreement is surfaced to the
    # caller through the outputs, mirroring Section 2.3.
    agreed = outputs == {leader}
    if not agreed:
        # Return the plurality answer so failure handling can proceed.
        leader = max(outputs, key=lambda v: (cluster.degree(v), repr(v)))
    return leader, result
