"""Distributed low-out-degree orientation (Barenboim-Elkin, [11]).

Given an upper bound ``d`` on the edge density of the cluster, peel in
O(log n) rounds: every vertex whose count of *unpeeled* neighbors drops
to at most ``ceil((2 + eta) * d)`` peels itself and announces the round
in which it did so.  Each edge is then oriented from the earlier-peeled
endpoint to the later-peeled one (ties broken by ID), giving every
vertex out-degree at most the peeling threshold.

The paper uses this so that gathering the topology of G[V_i] only needs
O(1) messages per vertex: each vertex announces just its *outgoing*
edges (Section 2.2, "Information Gathering").
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

from ..congest import (
    CongestSimulator,
    SimulationResult,
    VertexAlgorithm,
    VertexContext,
)
from ..errors import GraphError
from ..graph import Graph
from ..rng import SeedLike


def peeling_threshold(density_bound: float, eta: float = 0.5) -> int:
    """The BE threshold: ceil((2 + eta) * d), at least 1."""
    if density_bound <= 0:
        raise GraphError("density bound must be positive")
    return max(1, math.ceil((2.0 + eta) * density_bound))


class PeelingOrientation(VertexAlgorithm):
    """One vertex of the peeling protocol.

    Protocol: in each round a vertex that is not yet peeled and whose
    live-neighbor count is at most the threshold announces ``PEEL`` to
    all neighbors and records its peel round.  After ``max_rounds``,
    stragglers force-peel (this only happens when the density bound was
    wrong — i.e. the graph was not from the promised class — and is
    part of the Section 2.3 failure behavior).  Output per vertex:
    ``(peel_round, out_neighbors)``.
    """

    def __init__(self, threshold: int, max_rounds: int) -> None:
        self.threshold = threshold
        self.max_rounds = max_rounds
        self.peel_round: Optional[int] = None
        self.neighbor_rounds: Dict[Any, int] = {}
        self.live: int = 0

    def initialize(self, ctx: VertexContext) -> None:
        self.live = ctx.degree()
        if self.live <= self.threshold:
            self.peel_round = 0
            ctx.broadcast(("PEEL", 0))

    def step(self, ctx: VertexContext, inbox: Dict[Any, List[Any]]) -> None:
        for neighbor, payloads in inbox.items():
            for tag, rnd in payloads:
                if tag == "PEEL":
                    self.neighbor_rounds[neighbor] = rnd
                    self.live -= 1
        if self.peel_round is None and (
            self.live <= self.threshold or ctx.round_number >= self.max_rounds
        ):
            self.peel_round = ctx.round_number
            ctx.broadcast(("PEEL", self.peel_round))
            return
        if ctx.round_number >= self.max_rounds + 1:
            # Everyone has peeled; orientation is now locally computable.
            out = []
            mine = self.peel_round if self.peel_round is not None else self.max_rounds
            for neighbor in ctx.neighbors:
                theirs = self.neighbor_rounds.get(neighbor, self.max_rounds)
                if (mine, repr(ctx.vertex)) < (theirs, repr(neighbor)):
                    out.append(neighbor)
            ctx.halt((mine, tuple(out)))


def orient_low_out_degree(
    cluster: Graph,
    density_bound: float,
    eta: float = 0.5,
    seed: SeedLike = None,
) -> Tuple[Dict[Any, List[Any]], SimulationResult]:
    """Run the peeling orientation; returns (out-neighbor map, result).

    The returned map sends each vertex to its outgoing neighbors; each
    list has length at most ``peeling_threshold(density_bound, eta)``
    whenever the density promise holds.
    """
    threshold = peeling_threshold(density_bound, eta)
    max_rounds = max(2, 2 * math.ceil(math.log2(cluster.n + 2)))
    simulator = CongestSimulator(
        cluster,
        lambda v: PeelingOrientation(threshold, max_rounds),
        seed=seed,
    )
    result = simulator.run(max_rounds=max_rounds + 3)
    orientation = {
        v: list(result.outputs[v][1]) if result.outputs[v] else []
        for v in cluster.vertices()
    }
    # Consistency repair: ensure each edge is oriented exactly once
    # (guaranteed by the protocol; assert cheaply).
    for u, v in cluster.edges():
        forward = v in orientation[u]
        backward = u in orientation[v]
        if forward == backward:
            raise GraphError(
                f"orientation protocol produced an inconsistent edge "
                f"({u!r}, {v!r})"
            )
    return orientation, result
