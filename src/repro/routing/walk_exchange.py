"""Random-walk message exchange with a cluster leader (Lemma 2.4 + §2.3).

The primitive implemented here is exactly the "Routing Time" guarantee
of Theorem 2.6: the leader v* exchanges a distinct O(log n)-bit message
with each vertex of its cluster.

Forward phase (Lemma 2.4): every request token performs a lazy random
walk; the proof shows that on a phi-expander each walk of length
O(phi^-4 log^2 n) visits the high-degree leader with high probability,
and that per-round per-edge congestion stays O(log n).  Tokens are
absorbed on arrival at the leader.

Response phase (Section 2.3, "reverse the execution"): every vertex
logs, in local memory, the hop by which each token arrived in each
round.  After the leader computes its responses (the "any sequential
algorithm" step of the framework), tokens retrace their forward
trajectories backwards in lock step — reverse round r undoes forward
round T - r + 1.  A request whose token never reached the leader gets
no response, so its origin *detects* the failure, which is precisely
the failure-detection mechanism the paper's property tester relies on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..congest import (
    CongestMetrics,
    CongestSimulator,
    SimulationResult,
    VertexAlgorithm,
    VertexContext,
)
from ..errors import GraphError, RoutingError
from ..graph import Graph
from ..rng import SeedLike
from ..rng import HAVE_NUMPY, MTStream

#: Hard cap on forward walk length, protecting experiments from
#: pathologically low-conductance clusters (a failed execution is then
#: reported, per Section 2.3, rather than simulated forever).
MAX_WALK_STEPS = 50_000

#: Holding-set size at which a vertex adopts the vectorized
#: Mersenne-Twister stream for its forward-phase randomness.  Both
#: paths consume the identical word stream in the identical order, so
#: this threshold tunes speed only, never outcomes —
#: ``tests/test_mt_stream.py`` runs whole exchanges at threshold 1 and
#: threshold infinity and asserts byte-equal results.
VECTOR_THRESHOLD = 16

TokenKey = Tuple[Any, int]  # (origin vertex, sequence number)
Responder = Callable[[Dict[TokenKey, Any]], Dict[TokenKey, Any]]


def default_walk_steps(n: int, phi: float, constant: float = 8.0) -> int:
    """Forward walk length T = O(phi^-2 log^2 n), capped.

    Lemma 2.4 uses O(phi^-2 log n) segments of length tau_mix =
    O(phi^-2 log n) in the worst case; in practice the spectral mixing
    bound of the actual cluster is far smaller, so the framework
    usually passes an explicit measured bound instead of this formula.
    """
    if phi <= 0:
        raise GraphError("phi must be positive")
    steps = math.ceil(constant * (math.log2(n + 2) ** 2) / (phi * phi))
    return min(MAX_WALK_STEPS, max(4, steps))


@dataclass
class ExchangeResult:
    """Outcome of one walk exchange on one cluster."""

    leader: Any
    requests_delivered: Dict[TokenKey, Any]
    responses: Dict[TokenKey, Any]
    undelivered: List[TokenKey]
    unanswered: List[TokenKey]
    metrics: CongestMetrics
    forward_steps: int

    @property
    def success(self) -> bool:
        """All requests reached the leader and all responses returned."""
        return not self.undelivered and not self.unanswered


class WalkExchange(VertexAlgorithm):
    """One vertex of the walk-exchange protocol.

    Global schedule (every vertex knows T = ``forward_steps``):

    * rounds 1..T — forward: each held token flips a lazy coin and
      either stays or moves to a uniformly random neighbor;
    * round T+1 — the leader runs the responder on the requests it
      absorbed and loads the response tokens;
    * rounds T+2..2T+2 — reverse round r = round - (T+1) undoes forward
      round t = T - r + 1: whoever received a token in forward round t
      sends its response token back along the same edge.
    """

    def __init__(
        self,
        leader: Any,
        forward_steps: int,
        requests: List[Tuple[TokenKey, Any]],
        responder: Optional[Responder],
    ) -> None:
        self.leader = leader
        self.forward_steps = forward_steps
        self.initial_requests = requests
        self.responder = responder
        # Forward state: tokens currently held, as {key: payload}.
        self.holding: Dict[TokenKey, Any] = {}
        # Arrival log: key -> {forward_round: from_vertex}.
        self.arrival_log: Dict[TokenKey, Dict[int, Any]] = {}
        # Leader state.
        self.absorbed: Dict[TokenKey, Any] = {}
        self.leader_arrivals: Dict[TokenKey, int] = {}
        # Reverse state: response tokens currently held.
        self.responding: Dict[TokenKey, Any] = {}
        # Origin state: responses received, requests issued.
        self.received_responses: Dict[TokenKey, Any] = {}
        self.issued: List[TokenKey] = []
        # Bound RNG primitives, captured on first forwarding step.
        self._random = None
        self._randbelow = None
        # Batched MT19937 view of the vertex RNG, adopted lazily once
        # the holding set is large enough to amortize it.
        self._stream: Optional[MTStream] = None
        # Schedule landmarks, precomputed for the wakeup hot path.
        self._total_rounds = 2 * forward_steps + 2
        self._halt_round = self._total_rounds + 1

    # ------------------------------------------------------------------
    def initialize(self, ctx: VertexContext) -> None:
        for key, payload in self.initial_requests:
            self.issued.append(key)
            if ctx.vertex == self.leader:
                self.absorbed[key] = payload
                self.leader_arrivals[key] = 0
            else:
                self.holding[key] = payload

    def step(self, ctx: VertexContext, inbox: Dict[Any, List[Any]]) -> None:
        t = ctx.round_number
        if t <= self.forward_steps:
            self._forward_round(ctx, inbox, t)
        elif t == self.forward_steps + 1:
            self._release_stream()
            self._forward_receive(ctx, inbox, t)
            if ctx.vertex == self.leader:
                self._prepare_responses()
        elif t <= 2 * self.forward_steps + 2:
            self._reverse_round(ctx, inbox, t)
        else:
            self._release_stream()
            ctx.halt(
                {
                    "responses": dict(self.received_responses),
                    "undelivered": [
                        key
                        for key in self.issued
                        if key not in self.received_responses
                    ],
                    "absorbed": dict(self.absorbed)
                    if ctx.vertex == self.leader
                    else {},
                }
            )

    # ------------------------------------------------------------------
    def _forward_receive(
        self, ctx: VertexContext, inbox: Dict[Any, List[Any]], t: int
    ) -> None:
        """Take delivery of tokens that moved in forward round t-1."""
        arrival_round = t - 1
        for sender, payloads in inbox.items():
            for tag, origin, seq, payload in payloads:
                if tag != "F":
                    continue
                key = (origin, seq)
                if ctx.vertex == self.leader:
                    self.absorbed[key] = payload
                    self.leader_arrivals[key] = arrival_round
                    self.arrival_log.setdefault(key, {})[arrival_round] = sender
                else:
                    self.holding[key] = payload
                    self.arrival_log.setdefault(key, {})[arrival_round] = sender

    def _release_stream(self) -> None:
        """Hand the vertex RNG back when forward-phase randomness ends."""
        if self._stream is not None:
            self._stream.commit()
            self._stream = None

    def _forward_round(
        self, ctx: VertexContext, inbox: Dict[Any, List[Any]], t: int
    ) -> None:
        """One lazy-walk step for every held token.

        Randomness is drawn coins-first-then-targets: one ``random()``
        lazy coin per held token (in holding order), then one
        ``_randbelow(fanout)`` per mover (in the same order).  Both the
        scalar and the batched NumPy path consume that schedule
        word-for-word identically, so the ``VECTOR_THRESHOLD`` cutover
        is invisible to every simulation outcome.
        """
        if inbox:
            self._forward_receive(ctx, inbox, t)
        holding = self.holding
        if ctx.vertex == self.leader or not holding:
            return
        neighbors = ctx.neighbors
        fanout = len(neighbors)
        send = ctx.send
        stream = self._stream
        if stream is None and HAVE_NUMPY and len(holding) >= VECTOR_THRESHOLD:
            # Adopt the batched stream; it owns this vertex's RNG until
            # the forward phase ends (commit in _release_stream), so
            # scalar and batched draws never interleave mid-stream.
            stream = self._stream = MTStream(ctx.rng)
        still_holding: Dict[TokenKey, Any] = {}
        movers: List[Tuple[TokenKey, Any]] = []
        if stream is not None:
            coins = stream.random_batch(len(holding))
            for (key, payload), coin in zip(holding.items(), coins):
                if coin < 0.5:
                    still_holding[key] = payload
                else:
                    movers.append((key, payload))
            targets = stream.randbelow_batch(fanout, len(movers))
            for (key, payload), idx in zip(movers, targets):
                send(neighbors[idx], ("F", key[0], key[1], payload))
        else:
            lazy_stay = self._random
            if lazy_stay is None:
                rng = ctx.rng
                lazy_stay = self._random = rng.random
                # choice(seq) is seq[rng._randbelow(len(seq))]; calling
                # the primitive directly keeps the RNG stream identical
                # while skipping a call layer on the hottest randomness
                # in the repo.
                self._randbelow = rng._randbelow
            randbelow = self._randbelow
            for key, payload in holding.items():
                if lazy_stay() < 0.5:
                    still_holding[key] = payload
                else:
                    movers.append((key, payload))
            for key, payload in movers:
                send(
                    neighbors[randbelow(fanout)],
                    ("F", key[0], key[1], payload),
                )
        self.holding = still_holding

    # ------------------------------------------------------------------
    def _prepare_responses(self) -> None:
        if self.responder is None:
            responses = {key: None for key in self.absorbed}
        else:
            responses = self.responder(dict(self.absorbed))
        for key, payload in responses.items():
            if key not in self.absorbed:
                raise RoutingError(
                    f"responder produced a response for unknown token {key!r}"
                )
            if self.leader_arrivals.get(key) == 0 and key[0] == self.leader:
                # The leader's own request: answer locally.
                self.received_responses[key] = payload
            else:
                self.responding[key] = payload

    def _reverse_round(
        self, ctx: VertexContext, inbox: Dict[Any, List[Any]], t: int
    ) -> None:
        # Take delivery of response tokens.
        responding = self.responding
        vertex = ctx.vertex
        for sender, payloads in inbox.items():
            for tag, origin, seq, payload in payloads:
                if tag != "R":
                    continue
                key = (origin, seq)
                if vertex == origin:
                    self.received_responses[key] = payload
                else:
                    responding[key] = payload
        # Reverse round r undoes forward round T - r + 1.
        r = t - (self.forward_steps + 1)
        forward_round = self.forward_steps - r + 1
        if forward_round < 0 or not responding:
            return
        arrival_log = self.arrival_log
        to_send = []
        for key in responding:
            log = arrival_log.get(key)
            if log is not None and forward_round in log:
                to_send.append((key, log[forward_round]))
        for key, back in to_send:
            payload = responding.pop(key)
            ctx.send(back, ("R", key[0], key[1], payload))

    # ------------------------------------------------------------------
    # Scheduling hints: the walk phases are long but sparse, so idle
    # vertices tell the simulator exactly when they next matter.
    # ------------------------------------------------------------------
    def is_idle(self, ctx: VertexContext) -> bool:
        t = ctx.round_number
        if t <= self.forward_steps and ctx.vertex != self.leader and self.holding:
            # Forward tokens move (or lazily stay) every round.
            return False
        return True

    def next_wakeup(self, ctx: VertexContext) -> Optional[int]:
        t = ctx.round_number
        halt_round = self._halt_round
        if t <= self.forward_steps:
            if ctx.vertex == self.leader:
                # Wake to run the responder right after the forward phase.
                return self.forward_steps + 1
            return halt_round
        if t <= self._total_rounds and self.responding:
            # Wake at the earliest reverse round matching a logged hop.
            candidates = []
            for key in self.responding:
                for forward_round in self.arrival_log.get(key, ()):
                    wake = (self.forward_steps + 1) + (
                        self.forward_steps - forward_round + 1
                    )
                    if wake > t:
                        candidates.append(wake)
            if candidates:
                return min(min(candidates), halt_round)
        return halt_round


def walk_exchange(
    cluster: Graph,
    leader: Any,
    requests: Dict[Any, List[Any]],
    responder: Optional[Responder] = None,
    phi: float = 0.1,
    forward_steps: Optional[int] = None,
    seed: SeedLike = None,
    budget_n: Optional[int] = None,
) -> ExchangeResult:
    """Exchange one batch of request/response messages with ``leader``.

    ``requests`` maps each vertex to the list of payloads it wants
    delivered to the leader; each payload must fit the CONGEST budget.
    ``responder`` runs *at the leader* on everything that arrived and
    returns per-token response payloads (defaults to blank acks).
    Returns an :class:`ExchangeResult` whose ``success`` flag reflects
    the paper's failure semantics.
    """
    if leader not in cluster:
        raise GraphError(f"leader {leader!r} not in cluster")
    if forward_steps is None:
        forward_steps = default_walk_steps(cluster.n, phi)

    def factory(v):
        token_list = [
            ((v, i), payload) for i, payload in enumerate(requests.get(v, []))
        ]
        return WalkExchange(leader, forward_steps, token_list, responder)

    from ..congest.message import MessageBudget

    # The O(log n) budget is set by the size of the whole network, not
    # the cluster (vertex IDs are network-wide).
    budget = MessageBudget(max(cluster.n, budget_n or 0))
    simulator = CongestSimulator(cluster, factory, budget=budget, seed=seed)
    result = simulator.run(max_rounds=2 * forward_steps + 4)

    all_keys = [
        (v, i)
        for v, payloads in requests.items()
        for i in range(len(payloads))
    ]
    leader_output = result.outputs.get(leader) or {}
    delivered = leader_output.get("absorbed", {})
    responses: Dict[TokenKey, Any] = {}
    unanswered: List[TokenKey] = []
    for v in cluster.vertices():
        out = result.outputs.get(v) or {}
        responses.update(out.get("responses", {}))
    undelivered = [key for key in all_keys if key not in delivered]
    unanswered = [
        key
        for key in all_keys
        if key in delivered and key not in responses
    ]
    return ExchangeResult(
        leader=leader,
        requests_delivered=delivered,
        responses=responses,
        undelivered=undelivered,
        unanswered=unanswered,
        metrics=result.metrics,
        forward_steps=forward_steps,
    )
