"""Distributed routing inside expander clusters (Section 2.2).

Everything here runs genuinely message-by-message on the CONGEST
simulator: max-degree leader election, Barenboim-Elkin peeling
orientation, the Lemma 2.4 random-walk information gathering (with the
Section 2.3 reverse-routing failure detection), and a BFS-tree
gather/broadcast baseline used for comparison in experiment E3.
"""

from .leader import MaxDegreeLeaderElection, elect_leader
from .orientation import PeelingOrientation, orient_low_out_degree
from .walk_exchange import (
    ExchangeResult,
    WalkExchange,
    default_walk_steps,
    walk_exchange,
)
from .gather import GatherResult, gather_topology
from .diameter_check import DiameterProbe, distributed_diameter_check
from .aggregate import TreeAggregate, cluster_statistics, tree_aggregate
from .tree import TreeExchange, tree_exchange

__all__ = [
    "MaxDegreeLeaderElection",
    "elect_leader",
    "PeelingOrientation",
    "orient_low_out_degree",
    "ExchangeResult",
    "WalkExchange",
    "default_walk_steps",
    "walk_exchange",
    "GatherResult",
    "DiameterProbe",
    "distributed_diameter_check",
    "TreeAggregate",
    "cluster_statistics",
    "tree_aggregate",
    "gather_topology",
    "TreeExchange",
    "tree_exchange",
]
