"""Exact vectorized view of a ``random.Random`` Mersenne-Twister stream.

:class:`MTStream` adopts a live ``random.Random`` instance (via
``getstate``) and reproduces its 32-bit output words with NumPy — the
same MT19937 twist, the same tempering, the same word-pair-to-float
``random()`` construction, and the same rejection loop as
``Random._randbelow``.  Because the emulation is word-for-word exact,
code can draw a *batch* of variates here and later ``commit`` the
advanced state back into the Python generator: any mixture of batched
and scalar draws observes one identical stream.

That property is what lets :mod:`repro.routing.walk_exchange` vectorize
its per-token coin flips without perturbing a single simulation
outcome: the NumPy path and the pure-Python path consume the very same
words in the very same order, so enabling or disabling vectorization is
observationally invisible (``tests/test_mt_stream.py`` locks this in).

Reference: CPython ``_randommodule.c`` (``genrand_uint32``,
``random_random``) and ``Lib/random.py``
(``_randbelow_with_getrandbits``).
"""

from __future__ import annotations

import random
from typing import List, Sequence

try:  # pragma: no cover - exercised implicitly by HAVE_NUMPY gating
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

HAVE_NUMPY = _np is not None

#: MT19937 parameters (Matsumoto & Nishimura 1998), as in CPython.
_N = 624
_M = 397
_MATRIX_A = 0x9908B0DF
_UPPER_MASK = 0x80000000
_LOWER_MASK = 0x7FFFFFFF

#: random.Random state tuple version this module understands.
_STATE_VERSION = 3


class MTStream:
    """A batched, commit-back-able clone of one ``random.Random``.

    The instance owns the generator's stream from adoption until
    :meth:`commit`; interleaving scalar draws on the original object in
    between would desynchronize the two (exactly as sharing one
    generator between two consumers always would).
    """

    __slots__ = ("_rng", "_key", "_pos", "_gauss")

    def __init__(self, rng: random.Random) -> None:
        if _np is None:  # pragma: no cover - callers gate on HAVE_NUMPY
            raise RuntimeError("MTStream requires numpy")
        version, internal, gauss = rng.getstate()
        if version != _STATE_VERSION or len(internal) != _N + 1:
            raise ValueError(
                f"unsupported random.Random state version {version!r}"
            )
        self._rng = rng
        self._key = _np.array(internal[:_N], dtype=_np.uint32)
        self._pos = int(internal[_N])
        self._gauss = gauss

    # -- core word generation ------------------------------------------
    def _twist(self) -> None:
        """One vectorized MT19937 state transition.

        The scalar reference updates ``mt[kk]`` in place for ascending
        ``kk``; every ``y`` is built from values the loop has not yet
        overwritten, so all 623 leading ``y`` words come straight from
        the old key.  The recurrence's only true dependency is
        ``new[kk] = f(new[kk - 227])`` for ``kk >= 227``, a chain of
        stride 227 — two chunked assignments resolve it exactly.
        """
        np = _np
        up = np.uint32(_UPPER_MASK)
        low = np.uint32(_LOWER_MASK)
        one = np.uint32(1)
        mat = np.uint32(_MATRIX_A)
        key = self._key
        new = np.empty(_N, np.uint32)
        y = (key[: _N - 1] & up) | (key[1:] & low)
        ysh = (y >> one) ^ ((y & one) * mat)
        new[: _N - _M] = key[_M:] ^ ysh[: _N - _M]
        new[227:454] = new[0:227] ^ ysh[227:454]
        new[454:623] = new[227:396] ^ ysh[454:623]
        y_last = (int(key[_N - 1]) & _UPPER_MASK) | (int(new[0]) & _LOWER_MASK)
        new[_N - 1] = (
            int(new[_M - 1])
            ^ (y_last >> 1)
            ^ ((y_last & 1) * _MATRIX_A)
        )
        self._key = new
        self._pos = 0

    @staticmethod
    def _temper(y):
        """MT19937 output tempering, elementwise on a uint32 array."""
        np = _np
        y = y ^ (y >> np.uint32(11))
        y = y ^ ((y << np.uint32(7)) & np.uint32(0x9D2C5680))
        y = y ^ ((y << np.uint32(15)) & np.uint32(0xEFC60000))
        y = y ^ (y >> np.uint32(18))
        return y

    def words(self, count: int):
        """The next ``count`` 32-bit output words, in stream order."""
        out = _np.empty(count, _np.uint32)
        filled = 0
        while filled < count:
            if self._pos >= _N:
                self._twist()
            take = min(_N - self._pos, count - filled)
            out[filled : filled + take] = self._temper(
                self._key[self._pos : self._pos + take]
            )
            self._pos += take
            filled += take
        return out

    # -- distribution-level batches ------------------------------------
    def random_batch(self, count: int):
        """``count`` floats, bit-identical to ``rng.random()`` calls.

        CPython builds each double from two consecutive words:
        ``((w0 >> 5) * 2**26 + (w1 >> 6)) / 2**53``.
        """
        w = self.words(2 * count)
        a = (w[0::2] >> _np.uint32(5)).astype(_np.float64)
        b = (w[1::2] >> _np.uint32(6)).astype(_np.float64)
        return (a * 67108864.0 + b) * (1.0 / 9007199254740992.0)

    def randbelow_batch(self, n: int, count: int) -> Sequence[int]:
        """``count`` ints below ``n``, identical to ``rng._randbelow``.

        The scalar rejection loop draws ``k = n.bit_length()`` top bits
        of one word per attempt until the value falls below ``n``.
        Batching draws exactly as many words as acceptances still
        needed, keeps the accepted values in word order, and repeats:
        the loop can only terminate on a chunk whose final word was
        itself an acceptance, so the total words consumed equal the
        scalar loop's consumption exactly — never one word more.
        """
        if count <= 0:
            return _np.empty(0, _np.uint32)
        if n <= 0:
            raise ValueError("n must be positive")
        shift = _np.uint32(32 - n.bit_length())
        chunks: List = []
        accepted = 0
        while accepted < count:
            r = self.words(count - accepted) >> shift
            good = r[r < n]
            accepted += len(good)
            chunks.append(good)
        return chunks[0] if len(chunks) == 1 else _np.concatenate(chunks)

    # -- handing the stream back ---------------------------------------
    def commit(self) -> None:
        """Write the advanced state back into the adopted generator.

        After this call the original ``random.Random`` continues the
        stream exactly where the batched draws left off.
        """
        state = tuple(int(x) for x in self._key) + (self._pos,)
        self._rng.setstate((_STATE_VERSION, state, self._gauss))
