"""Compatibility shim: the MT19937 stream clone now lives in
:mod:`repro.rng` (promoted so the congest kernel layer and the routing
vectorization share one implementation).  Import from there."""

from ..rng import (  # noqa: F401
    _LOWER_MASK,
    _M,
    _MATRIX_A,
    _N,
    _STATE_VERSION,
    _UPPER_MASK,
    HAVE_NUMPY,
    MTStream,
)
