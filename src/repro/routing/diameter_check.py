"""The Section 2.3 distributed diameter-check marking protocol.

The framework needs every cluster to *know* whether its diameter is
within the O(phi^-1 log n) bound ``b`` of a successful execution.  The
paper's protocol, implemented here verbatim on the CONGEST simulator:

1. for ``b`` rounds, every vertex floods the maximum ID it has seen, so
   each v ends with M_b(v) = max ID within distance b;
2. neighbors exchange their M_b values; a vertex marks itself ``*`` on
   any disagreement;
3. for ``2b + 1`` rounds, the ``*`` mark floods outward.

Outcome: if diam <= b, every vertex computed the same (global) maximum,
so nobody is marked; if diam >= 2b + 1, every vertex ends marked; in
between the outcome may be either, but it is *consistent* across the
cluster, which is all the failure handling needs — a marked vertex
resets its cluster to a singleton (Section 2.3).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..congest import (
    CongestMetrics,
    CongestSimulator,
    SimulationResult,
    VertexAlgorithm,
    VertexContext,
)
from ..errors import GraphError
from ..graph import Graph
from ..rng import SeedLike


class DiameterProbe(VertexAlgorithm):
    """One vertex of the marking protocol with distance budget ``b``."""

    def __init__(self, b: int) -> None:
        if b < 1:
            raise GraphError("diameter budget must be >= 1")
        self.b = b
        self.best: Any = None
        self.marked = False
        self.announced_star = False

    def initialize(self, ctx: VertexContext) -> None:
        # IDs flood as strings (repr), compared lexicographically — any
        # consistent total order works for the protocol.
        self.best = repr(ctx.vertex)
        ctx.broadcast(("M", self.best))

    def step(self, ctx: VertexContext, inbox: Dict[Any, List[Any]]) -> None:
        t = ctx.round_number
        if t <= self.b:
            # Phase 1: flood the maximum ID for b rounds.
            improved = False
            for payloads in inbox.values():
                for tag, value in payloads:
                    if tag == "M" and value > self.best:
                        self.best = value
                        improved = True
            if improved and t < self.b:
                ctx.broadcast(("M", self.best))
            if t == self.b:
                # Phase 2 send: publish the final M_b value.
                ctx.broadcast(("F", self.best))
            return
        if t == self.b + 1:
            # Phase 2 receive: disagreement => mark *.
            for payloads in inbox.values():
                for tag, value in payloads:
                    if tag == "F" and value != self.best:
                        self.marked = True
            if self.marked:
                self.announced_star = True
                ctx.broadcast(("S", ""))
            return
        # Phase 3: propagate * for 2b + 1 rounds.
        if any(
            tag == "S" for payloads in inbox.values() for tag, _ in payloads
        ):
            if not self.marked:
                self.marked = True
            if not self.announced_star:
                self.announced_star = True
                ctx.broadcast(("S", ""))
        if t >= 3 * self.b + 3:
            ctx.halt(self.marked)


def distributed_diameter_check(
    cluster: Graph, b: int, seed: SeedLike = None
) -> Tuple[bool, SimulationResult]:
    """Run the marking protocol; returns (within_bound, simulation).

    ``within_bound`` is the cluster-consistent verdict: True when no
    vertex marked itself (guaranteed when diam <= b), False when the
    cluster marked itself (guaranteed when diam >= 2b + 1).
    """
    if cluster.n == 0:
        raise GraphError("cannot probe an empty cluster")
    if cluster.n == 1:
        return True, SimulationResult(
            outputs={}, metrics=CongestMetrics(), halted=True
        )
    simulator = CongestSimulator(
        cluster, lambda v: DiameterProbe(b), seed=seed
    )
    result = simulator.run(max_rounds=3 * b + 6)
    marks = set(result.outputs.values())
    # Consistency: the protocol guarantees a uniform verdict in the
    # decisive regimes; in the gap regime we take "any mark" as failure
    # (conservative, per Section 2.3).
    return not any(marks), result
