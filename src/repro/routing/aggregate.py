"""BFS-tree aggregation primitives.

The O(diameter)-round toolkit every distributed algorithm leans on:
build a BFS tree from a root, *convergecast* an associative aggregate
(count, sum, max) up the tree, and *broadcast* the result back down.
The framework uses these for the Section 2.3 checks that the paper says
take O(phi^-1 log n) rounds — e.g. letting a cluster leader learn
|V_i| and |E_i| so the Lemma 2.3 degree condition
deg(v*) >= c * phi^2 * |E_i| can be verified in-network.

Everything here is capacity-1 CONGEST: one O(log n)-bit message per
edge per round, no batching (the simulator's strict mode would accept
these algorithms unchanged).
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..congest import (
    CongestMetrics,
    CongestSimulator,
    SimulationResult,
    VertexAlgorithm,
    VertexContext,
)
from ..errors import GraphError
from ..graph import Graph
from ..rng import SeedLike

#: Named aggregates: (neutral element, combiner).  All operate on ints
#: so messages stay within the budget.
AGGREGATES: Dict[str, Tuple[int, Callable[[int, int], int]]] = {
    "sum": (0, lambda a, b: a + b),
    "max": (0, lambda a, b: max(a, b)),
    "count": (0, lambda a, b: a + b),
}


class TreeAggregate(VertexAlgorithm):
    """Build a BFS tree, aggregate up, broadcast the total down.

    Schedule with depth budget B:

    * rounds 1..B — the root's beacon floods; first sender becomes the
      parent; vertices that adopt a parent announce ``CHILD`` to it;
    * rounds B+1..2B+2 — a vertex that has heard ``DONE`` (a partial
      aggregate) from all its children sends its combined value to its
      parent; leaves fire immediately;
    * rounds 2B+3..3B+4 — the root combines and floods ``TOTAL`` down
      the tree; everyone halts knowing the aggregate.
    """

    def __init__(
        self,
        root: Any,
        depth_budget: int,
        value: int,
        aggregate: str,
    ) -> None:
        if aggregate not in AGGREGATES:
            raise GraphError(f"unknown aggregate {aggregate!r}")
        self.root = root
        self.b = depth_budget
        self.value = value
        self.neutral, self.combine = AGGREGATES[aggregate]
        self.parent: Optional[Any] = None
        self.children: List[Any] = []
        self.pending_children: Optional[set] = None
        self.partial: int = value
        self.sent_up = False
        self.total: Optional[int] = None

    def initialize(self, ctx: VertexContext) -> None:
        if ctx.vertex == self.root:
            self.parent = ctx.vertex
            ctx.broadcast(("B",))

    def step(self, ctx: VertexContext, inbox: Dict[Any, List[Any]]) -> None:
        t = ctx.round_number
        beacons = []
        for sender, payloads in sorted(inbox.items(), key=lambda kv: repr(kv[0])):
            for payload in payloads:
                tag = payload[0]
                if tag == "B":
                    beacons.append(sender)
                elif tag == "C":
                    self.children.append(sender)
                elif tag == "D":
                    self.partial = self.combine(self.partial, payload[1])
                    if self.pending_children is not None:
                        self.pending_children.discard(sender)
                elif tag == "T":
                    if self.total is None:
                        self.total = payload[1]
                        for child in self.children:
                            ctx.send(child, ("T", self.total))

        if self.parent is None and beacons:
            self.parent = beacons[0]
            ctx.send(self.parent, ("C",))
            ctx.broadcast(("B",))

        # Tree building finishes at round B + 1 (CHILD messages arrive
        # one round after the beacon); then convergecast.
        if t == self.b + 1:
            self.pending_children = set(self.children)
        if (
            self.pending_children is not None
            and not self.pending_children
            and not self.sent_up
        ):
            self.sent_up = True
            if ctx.vertex == self.root:
                self.total = self.partial
                for child in self.children:
                    ctx.send(child, ("T", self.total))
            elif self.parent is not None:
                ctx.send(self.parent, ("D", self.partial))

        if t >= 3 * self.b + 4:
            ctx.halt(self.total)

    def is_idle(self, ctx: VertexContext) -> bool:
        # Only the phase boundaries need timed action; everything else
        # is message-driven.
        return self.sent_up or ctx.round_number < self.b + 1

    def next_wakeup(self, ctx: VertexContext) -> Optional[int]:
        if ctx.round_number < self.b + 1:
            return self.b + 1
        return 3 * self.b + 4


def tree_aggregate(
    graph: Graph,
    root: Any,
    values: Dict[Any, int],
    aggregate: str = "sum",
    depth_budget: Optional[int] = None,
    seed: SeedLike = None,
) -> Tuple[int, SimulationResult]:
    """Aggregate per-vertex ints over a BFS tree; all vertices learn it.

    Returns ``(total, simulation)``.  ``depth_budget`` defaults to the
    exact eccentricity bound (diameter + 1); the framework substitutes
    the analytic O(phi^-1 log n) bound when modeling failure-prone runs.
    """
    if root not in graph:
        raise GraphError(f"root {root!r} not in graph")
    if not graph.is_connected():
        raise GraphError("tree aggregation needs a connected graph")
    if graph.n == 1:
        neutral, combine = AGGREGATES[aggregate]
        return combine(neutral, values.get(root, 0)), SimulationResult(
            outputs={root: values.get(root, 0)},
            metrics=CongestMetrics(),
            halted=True,
        )
    if depth_budget is None:
        depth_budget = graph.diameter() + 1

    simulator = CongestSimulator(
        graph,
        lambda v: TreeAggregate(
            root, depth_budget, int(values.get(v, 0)), aggregate
        ),
        seed=seed,
    )
    result = simulator.run(max_rounds=3 * depth_budget + 8)
    total = result.outputs.get(root)
    return total, result


def cluster_statistics(
    cluster: Graph, leader: Any, seed: SeedLike = None
) -> Tuple[int, int, SimulationResult]:
    """Let ``leader`` (and everyone) learn |V_i| and |E_i| in-network.

    Two aggregations: a count of vertices and a sum of degrees (halved).
    This is the distributed realization of the Section 2.3 statement
    that the Lemma 2.3 condition is checkable in O(phi^-1 log n) rounds.
    """
    n, result_n = tree_aggregate(
        cluster, leader, {v: 1 for v in cluster.vertices()},
        aggregate="count", seed=seed,
    )
    degree_sum, result_m = tree_aggregate(
        cluster, leader, {v: cluster.degree(v) for v in cluster.vertices()},
        aggregate="sum", seed=seed,
    )
    combined = result_n.metrics.merge(result_m.metrics)
    result = SimulationResult(
        outputs=result_m.outputs, metrics=combined, halted=True
    )
    return n, degree_sum // 2, result
