"""BFS-tree exchange: the convergecast/broadcast baseline.

Experiment E3 compares the paper's random-walk routing (Lemma 2.4)
against this classic alternative: build a BFS tree rooted at the
leader, convergecast all requests up the tree, and route responses back
down along recorded pointers.  On a low-diameter cluster the tree
exchange uses fewer raw rounds but concentrates congestion on the
leader's tree edges (up to Theta(|V_i|) messages per edge), which is
exactly the overhead the ``effective_rounds`` metric exposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..congest import (
    CongestSimulator,
    VertexAlgorithm,
    VertexContext,
)
from ..congest.message import MessageBudget
from ..errors import GraphError, RoutingError
from ..graph import Graph
from ..rng import SeedLike
from .walk_exchange import ExchangeResult, Responder, TokenKey


class TreeExchange(VertexAlgorithm):
    """One vertex of the BFS-tree exchange.

    Schedule with depth budget B (all vertices know B):

    * rounds 1..B — the leader's ``TREE`` beacon floods outward; on
      first receipt a vertex adopts the earliest (then smallest-ID)
      sender as parent, re-broadcasts the beacon, and starts sending
      its requests to its parent;
    * rounds 1..2B — every ``UP`` message is forwarded parent-ward the
      round after it arrives; the forwarding vertex records which
      neighbor each token came from;
    * round 2B+1 — the leader runs the responder;
    * rounds 2B+2..3B+2 — ``DOWN`` responses retrace the recorded
      pointers to their origins.
    """

    def __init__(
        self,
        leader: Any,
        depth_budget: int,
        requests: List[Tuple[TokenKey, Any]],
        responder: Optional[Responder],
    ) -> None:
        self.leader = leader
        self.depth_budget = depth_budget
        self.initial_requests = requests
        self.responder = responder
        self.parent: Optional[Any] = None
        self.pending_up: List[Tuple[TokenKey, Any]] = []
        self.came_from: Dict[TokenKey, Any] = {}
        self.absorbed: Dict[TokenKey, Any] = {}
        self.responding: Dict[TokenKey, Any] = {}
        self.received_responses: Dict[TokenKey, Any] = {}
        self.issued: List[TokenKey] = []

    def initialize(self, ctx: VertexContext) -> None:
        for key, payload in self.initial_requests:
            self.issued.append(key)
            if ctx.vertex == self.leader:
                self.absorbed[key] = payload
            else:
                self.pending_up.append((key, payload))
        if ctx.vertex == self.leader:
            self.parent = ctx.vertex
            ctx.broadcast(("TREE",))

    def step(self, ctx: VertexContext, inbox: Dict[Any, List[Any]]) -> None:
        t = ctx.round_number
        # -- receive ----------------------------------------------------
        beacon_senders = []
        for sender, payloads in sorted(inbox.items(), key=lambda kv: repr(kv[0])):
            for payload in payloads:
                tag = payload[0]
                if tag == "TREE":
                    beacon_senders.append(sender)
                elif tag == "UP":
                    _tag, origin, seq, data = payload
                    key = (origin, seq)
                    if ctx.vertex == self.leader:
                        self.absorbed[key] = data
                    else:
                        self.pending_up.append((key, data))
                    self.came_from[key] = sender
                elif tag == "DOWN":
                    _tag, origin, seq, data = payload
                    key = (origin, seq)
                    if ctx.vertex == origin:
                        self.received_responses[key] = data
                    else:
                        self.responding[key] = data
        if self.parent is None and beacon_senders:
            self.parent = beacon_senders[0]
            ctx.broadcast(("TREE",))

        # -- send -------------------------------------------------------
        if ctx.vertex != self.leader and self.parent is not None:
            for key, data in self.pending_up:
                ctx.send(self.parent, ("UP", key[0], key[1], data))
            self.pending_up = []

        if ctx.vertex == self.leader and t == 2 * self.depth_budget + 1:
            if self.responder is None:
                responses = {key: None for key in self.absorbed}
            else:
                responses = self.responder(dict(self.absorbed))
            for key, data in responses.items():
                if key not in self.absorbed:
                    raise RoutingError(
                        f"responder produced response for unknown token {key!r}"
                    )
                self.responding[key] = data

        if t >= 2 * self.depth_budget + 1:
            for key in list(self.responding):
                data = self.responding.pop(key)
                if key[0] == ctx.vertex:
                    self.received_responses[key] = data
                    continue
                back = self.came_from.get(key)
                if back is None:
                    # Token never passed through here forward: drop
                    # (can only happen on a failed tree build).
                    continue
                ctx.send(back, ("DOWN", key[0], key[1], data))

        if t > 3 * self.depth_budget + 2:
            ctx.halt(
                {
                    "responses": dict(self.received_responses),
                    "undelivered": [
                        key
                        for key in self.issued
                        if key not in self.received_responses
                    ],
                    "absorbed": dict(self.absorbed)
                    if ctx.vertex == self.leader
                    else {},
                }
            )


def tree_exchange(
    cluster: Graph,
    leader: Any,
    requests: Dict[Any, List[Any]],
    responder: Optional[Responder] = None,
    phi: float = 0.1,  # accepted for interface parity with walk_exchange
    forward_steps: Optional[int] = None,
    seed: SeedLike = None,
    budget_n: Optional[int] = None,
) -> ExchangeResult:
    """BFS-tree counterpart of :func:`repro.routing.walk_exchange.walk_exchange`."""
    if leader not in cluster:
        raise GraphError(f"leader {leader!r} not in cluster")
    depth_budget = (
        forward_steps if forward_steps is not None else cluster.diameter() + 1
    )

    def factory(v):
        token_list = [
            ((v, i), payload) for i, payload in enumerate(requests.get(v, []))
        ]
        return TreeExchange(leader, depth_budget, token_list, responder)

    budget = MessageBudget(max(cluster.n, budget_n or 0))
    simulator = CongestSimulator(cluster, factory, budget=budget, seed=seed)
    result = simulator.run(max_rounds=3 * depth_budget + 5)

    all_keys = [
        (v, i)
        for v, payloads in requests.items()
        for i in range(len(payloads))
    ]
    leader_output = result.outputs.get(leader) or {}
    delivered = leader_output.get("absorbed", {})
    responses: Dict[TokenKey, Any] = {}
    for v in cluster.vertices():
        out = result.outputs.get(v) or {}
        responses.update(out.get("responses", {}))
    undelivered = [key for key in all_keys if key not in delivered]
    unanswered = [
        key for key in all_keys if key in delivered and key not in responses
    ]
    return ExchangeResult(
        leader=leader,
        requests_delivered=delivered,
        responses=responses,
        undelivered=undelivered,
        unanswered=unanswered,
        metrics=result.metrics,
        forward_steps=depth_budget,
    )
