"""Topology gathering: let the leader learn G[V_i] (Theorem 2.6).

Pipeline, exactly as in Section 2.2:

1. elect the maximum-degree vertex v* (:mod:`repro.routing.leader`);
2. orient the cluster's edges with O(1) out-degree
   (:mod:`repro.routing.orientation`), so each vertex only has to
   announce its outgoing edges;
3. route every vertex's announcements to v* with the random-walk
   exchange (:mod:`repro.routing.walk_exchange`), whose reverse phase
   simultaneously delivers v*'s per-vertex answers — the
   "exchange a distinct O(log n)-bit message with each vertex" claim.

The leader-side computation is a caller-supplied ``solver`` — "any
sequential algorithm", per the paper.  The result reports the gathered
topology, the per-vertex answers, and the Section 2.3 failure verdicts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..congest import CongestMetrics
from ..errors import GraphError
from ..graph import Graph
from ..rng import SeedLike, ensure_rng
from .leader import elect_leader
from .orientation import orient_low_out_degree
from .walk_exchange import ExchangeResult, walk_exchange
from .tree import tree_exchange

#: A solver consumes (gathered subgraph, leader vertex, per-vertex
#: notes) and returns a small payload per vertex — each must fit in one
#: CONGEST message.  The notes dict carries whatever each vertex
#: attached to its HELLO token (its local input: weight class, current
#: matching state, edge signs, ...).
ClusterSolver = Callable[[Graph, Any, Dict[Any, Any]], Dict[Any, Any]]

#: Per-vertex annotation callback: a small payload (one message worth)
#: of the vertex's local input, shipped to the leader with its HELLO.
Annotator = Callable[[Any], Any]


@dataclass
class GatherResult:
    """Outcome of gathering one cluster and solving at its leader."""

    leader: Any
    gathered: Optional[Graph]
    answers: Dict[Any, Any]
    success: bool
    failure_reason: Optional[str]
    metrics: CongestMetrics
    exchange: Optional[ExchangeResult] = None

    def topology_complete(self, cluster: Graph) -> bool:
        """Did the leader learn G[V_i] exactly?"""
        if self.gathered is None:
            return False
        return (
            set(self.gathered.vertices()) == set(cluster.vertices())
            and {frozenset(e) for e in self.gathered.edges()}
            == {frozenset(e) for e in cluster.edges()}
        )


def _calibrated_walk_steps(
    cluster: Graph, phi: float, leader: Optional[Any] = None, tokens: int = 0
) -> int:
    """Forward walk length from the cluster's *measured* mixing bound.

    Lemma 2.4's analytic O(phi^-4 log^2 n) length is sized for the
    worst phi-expander; the framework knows the actual cluster, so it
    sizes the walk as (mixing time) + (hitting time of the leader) x
    log(number of tokens): after mixing, each token sits at the leader
    with probability deg(v*)/2|E| per step, so the log factor drives
    the survival probability of the *last* token to 1/poly.  The
    spectral mixing bound instantiates Section 2's
    tau_mix <= O(log|V| / Phi^2).  Experiment E3 validates the
    delivery rate of this calibration.
    """
    from ..spectral.random_walk import mixing_time_bound
    from .walk_exchange import MAX_WALK_STEPS, default_walk_steps

    if cluster.n <= 2:
        return 8
    bound = mixing_time_bound(cluster)
    if not math.isfinite(bound):
        return default_walk_steps(cluster.n, phi)
    leader_degree = (
        cluster.degree(leader) if leader is not None else cluster.max_degree()
    )
    # Lazy-walk hitting rate of the leader from stationarity.
    hitting = 4.0 * cluster.m / max(1, leader_degree)
    tail = math.log(max(2, tokens) + 2)
    steps = math.ceil(2.0 * bound + 4.0 * hitting * tail) + 32
    return max(16, min(MAX_WALK_STEPS, steps))


def _encode_weight(weight: float) -> Any:
    """Integer-encode integral weights (the paper's MWM assumption)."""
    if float(weight).is_integer():
        return int(weight)
    return float(weight)


def gather_topology(
    cluster: Graph,
    phi: float,
    density_bound: float = 4.0,
    solver: Optional[ClusterSolver] = None,
    leader: Optional[Any] = None,
    seed: SeedLike = None,
    network_n: Optional[int] = None,
    transport: str = "walk",
    forward_steps: Optional[int] = None,
    annotate: Optional[Annotator] = None,
) -> GatherResult:
    """Gather G[V_i] to its leader and run ``solver`` there.

    ``phi`` is the cluster's (certified) conductance, which sizes the
    walk length.  ``network_n`` is the size of the *whole* network and
    sets the O(log n) message budget (defaults to the cluster size).
    ``transport`` selects "walk" (Lemma 2.4, the paper's mechanism) or
    "tree" (BFS-tree convergecast baseline for experiment E3).
    """
    if cluster.n == 0:
        raise GraphError("cannot gather an empty cluster")
    if transport not in ("walk", "tree"):
        raise GraphError(f"unknown transport {transport!r}")
    rng = ensure_rng(seed)
    metrics = CongestMetrics()

    if cluster.n == 1:
        only = cluster.vertices()[0]
        notes = {only: annotate(only)} if annotate else {}
        answers = solver(cluster, only, notes) if solver else {only: None}
        return GatherResult(
            leader=only,
            gathered=cluster.copy(),
            answers=answers,
            success=True,
            failure_reason=None,
            metrics=metrics,
        )

    # Step 1: leader election over the cluster.
    if leader is None:
        leader, election = elect_leader(cluster, seed=rng.getrandbits(64))
        metrics = metrics.merge(election.metrics)

    # Step 2: low-out-degree orientation.
    orientation, orient_result = orient_low_out_degree(
        cluster, density_bound, seed=rng.getrandbits(64)
    )
    metrics = metrics.merge(orient_result.metrics)

    # Step 3: each vertex announces itself plus its outgoing edges.
    requests: Dict[Any, List[Any]] = {}
    for v in cluster.vertices():
        payloads: List[Any] = [("H", annotate(v) if annotate else None)]
        for u in orientation[v]:
            payloads.append(("E", u, _encode_weight(cluster.weight(v, u))))
        requests[v] = payloads

    if forward_steps is None and transport == "walk":
        total_tokens = sum(len(p) for p in requests.values())
        forward_steps = _calibrated_walk_steps(
            cluster, phi, leader=leader, tokens=total_tokens
        )

    gathered_box: List[Optional[Graph]] = [None]
    answers_box: Dict[Any, Any] = {}

    def responder(absorbed):
        g = Graph()
        notes: Dict[Any, Any] = {}
        for (origin, _seq), payload in absorbed.items():
            if payload[0] == "H":
                g.add_vertex(origin)
                notes[origin] = payload[1]
            elif payload[0] == "E":
                _tag, other, weight = payload
                g.add_vertex(origin)
                g.add_vertex(other)
                g.add_edge(origin, other, float(weight))
        gathered_box[0] = g
        if solver is not None:
            answers_box.update(solver(g, leader, notes))
        responses = {}
        for key, payload in absorbed.items():
            origin = key[0]
            if payload[0] == "H":
                responses[key] = ("A", answers_box.get(origin))
            else:
                responses[key] = ("A", None)
        return responses

    exchange_fn = walk_exchange if transport == "walk" else tree_exchange
    exchange = exchange_fn(
        cluster,
        leader,
        requests,
        responder=responder,
        phi=phi,
        forward_steps=forward_steps,
        seed=rng.getrandbits(64),
        budget_n=network_n,
    )
    metrics = metrics.merge(exchange.metrics)

    # Per-vertex answers travel back on the HELLO tokens (seq 0).
    answers: Dict[Any, Any] = {}
    for (origin, seq), payload in exchange.responses.items():
        if seq == 0 and payload is not None:
            answers[origin] = payload[1]

    success = exchange.success and len(answers) == cluster.n
    reason = None
    if not exchange.success:
        reason = (
            f"{len(exchange.undelivered)} requests undelivered, "
            f"{len(exchange.unanswered)} responses lost"
        )
    elif len(answers) < cluster.n:
        reason = "some vertices received no answer"
    return GatherResult(
        leader=leader,
        gathered=gathered_box[0],
        answers=answers,
        success=success,
        failure_reason=reason,
        metrics=metrics,
        exchange=exchange,
    )
